//! ISA-backend differential experiment: analytic vs interpreted timing.
//!
//! Runs every model through the Hetero preset twice — once with the
//! default analytic programmable-PIM cost model and once with the
//! [`ProgrBackend::Isa`] backend, where every ARM placement's timing and
//! energy derive from lowering the kernel to a `pim_isa` program and
//! interpreting the instruction stream — and tabulates the relative
//! makespan/energy deltas. The two models share the hardware parameters
//! but nothing else: the analytic path integrates closed-form rates, the
//! ISA path counts issue cycles per retired instruction. Small deltas are
//! therefore evidence that the closed forms describe a machine that
//! could actually execute the extracted instruction streams. Every cell
//! is deterministic: `repro isa` prints byte-identical tables across
//! runs and thread counts.

use crate::cache;
use pim_common::Result;
use pim_models::ModelKind;
use pim_runtime::engine::{Engine, EngineConfig, ProgrBackend, SystemPreset, WorkloadSpec};
use serde::Serialize;
use std::fmt::Write as _;

/// Documented bound on the relative analytic-vs-interpreted makespan
/// delta per model. The residue comes from lowering quantization alone —
/// loop tiling rounds element counts to whole instructions and call
/// counts to whole kernels — so it shrinks as workloads grow; the engine
/// test `isa_backend_runs_and_stays_close_to_analytic` enforces it.
pub const MAKESPAN_DELTA_BOUND: f64 = 0.05;

/// The default models `repro isa` sweeps: all seven evaluated workloads.
pub const DEFAULT_MODELS: [ModelKind; 7] = ModelKind::ALL;

/// One row of the differential table: one model under the Hetero preset,
/// simulated with the analytic and the interpreted ISA backend.
#[derive(Debug, Clone, Serialize)]
pub struct IsaCell {
    /// The simulated model.
    pub model: ModelKind,
    /// Makespan under the analytic programmable-PIM model, seconds.
    pub analytic_s: f64,
    /// Makespan under the interpreted ISA backend, seconds.
    pub interpreted_s: f64,
    /// `|interpreted - analytic| / analytic` makespan delta.
    pub makespan_delta: f64,
    /// Dynamic energy under the analytic model, joules.
    pub analytic_j: f64,
    /// Dynamic energy under the interpreted ISA backend, joules.
    pub interpreted_j: f64,
    /// `|interpreted - analytic| / analytic` energy delta.
    pub energy_delta: f64,
}

fn rel_delta(interpreted: f64, analytic: f64) -> f64 {
    if analytic == 0.0 {
        return 0.0;
    }
    (interpreted - analytic).abs() / analytic
}

/// Gathers the differential sweep: each model run under the Hetero
/// preset with both programmable-PIM backends.
///
/// # Errors
///
/// Propagates model-construction and simulation failures.
pub fn isa_delta_data(kinds: &[ModelKind], steps: usize) -> Result<Vec<IsaCell>> {
    let mut cells = Vec::new();
    for &kind in kinds {
        let model = cache::model(kind)?;
        let spec = [WorkloadSpec {
            graph: model.graph(),
            steps,
            cpu_progr_only: false,
        }];
        let analytic = Engine::new(EngineConfig::preset(SystemPreset::Hetero)).run(&spec)?;
        let interpreted = Engine::new(
            EngineConfig::preset(SystemPreset::Hetero).with_progr_backend(ProgrBackend::Isa),
        )
        .run(&spec)?;
        cells.push(IsaCell {
            model: kind,
            analytic_s: analytic.makespan.seconds(),
            interpreted_s: interpreted.makespan.seconds(),
            makespan_delta: rel_delta(interpreted.makespan.seconds(), analytic.makespan.seconds()),
            analytic_j: analytic.dynamic_energy.joules(),
            interpreted_j: interpreted.dynamic_energy.joules(),
            energy_delta: rel_delta(
                interpreted.dynamic_energy.joules(),
                analytic.dynamic_energy.joules(),
            ),
        });
    }
    Ok(cells)
}

/// Renders the differential table (`repro isa`).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn isa_delta_table(kinds: &[ModelKind], steps: usize) -> Result<String> {
    let cells = isa_delta_data(kinds, steps)?;
    let mut out = String::new();
    writeln!(
        out,
        "ISA backend: analytic vs interpreted programmable PIM \
         (Hetero preset, {steps} steps, bound {MAKESPAN_DELTA_BOUND:.0e})"
    )
    .ok();
    writeln!(
        out,
        "  {:12} {:>13} {:>13} {:>8}   {:>13} {:>13} {:>8}",
        "model", "analytic_s", "interp_s", "dT", "analytic_J", "interp_J", "dE"
    )
    .ok();
    for c in &cells {
        writeln!(
            out,
            "  {:12} {:>13.6e} {:>13.6e} {:>7.3}%   {:>13.6e} {:>13.6e} {:>7.3}%{}",
            c.model.to_string(),
            c.analytic_s,
            c.interpreted_s,
            c.makespan_delta * 100.0,
            c.analytic_j,
            c.interpreted_j,
            c.energy_delta * 100.0,
            if c.makespan_delta > MAKESPAN_DELTA_BOUND {
                "  OUT OF BOUND"
            } else {
                ""
            },
        )
        .ok();
    }
    let worst = cells
        .iter()
        .map(|c| c.makespan_delta)
        .fold(0.0f64, f64::max);
    writeln!(
        out,
        "\nworst makespan delta: {:.3}% ({})",
        worst * 100.0,
        if worst <= MAKESPAN_DELTA_BOUND {
            "within bound"
        } else {
            "OUT OF BOUND"
        }
    )
    .ok();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_table_is_deterministic_and_within_bound() {
        let kinds = [ModelKind::AlexNet, ModelKind::Lstm];
        let a = isa_delta_table(&kinds, 2).unwrap();
        let b = isa_delta_table(&kinds, 2).unwrap();
        assert_eq!(a, b, "repeat runs must render byte-identically");
        assert!(!a.contains("OUT OF BOUND"), "{a}");
        for c in isa_delta_data(&kinds, 2).unwrap() {
            assert!(
                c.makespan_delta <= MAKESPAN_DELTA_BOUND,
                "{}: delta {} above bound",
                c.model,
                c.makespan_delta
            );
            assert!(c.interpreted_s > 0.0 && c.analytic_s > 0.0);
        }
    }
}
