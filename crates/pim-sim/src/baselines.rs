//! Additional comparison baselines: Neurocube (Fig. 10).

use pim_common::units::Seconds;
use pim_common::Result;
use pim_graph::cost::graph_costs;
use pim_hw::neurocube::Neurocube;
use pim_mem::stack::StackConfig;
use pim_models::Model;
use pim_runtime::stats::{ExecutionReport, BASE_SYSTEM_POWER};
use std::collections::BTreeMap;

/// Simulates Neurocube executing the training step on its 16 programmable
/// vault PEs, sequentially (no dynamic runtime scheduling — the §VI-C
/// difference the paper calls out).
///
/// # Errors
///
/// Propagates cost-model failures.
pub fn simulate_neurocube(model: &Model, steps: usize) -> Result<ExecutionReport> {
    let nc = Neurocube::isca16(&StackConfig::hmc2());
    let costs = graph_costs(model.graph())?;
    let mut busy = Seconds::ZERO;
    let mut compute = Seconds::ZERO;
    let mut energy = pim_common::units::Joules::ZERO;
    for cost in &costs {
        let est = nc.estimate_op(cost);
        busy += est.time;
        compute += est.compute_time;
        energy += est.energy;
    }
    let makespan = busy * steps as f64;
    let op_time = compute * steps as f64;
    let dm = (makespan - op_time).max(Seconds::ZERO);
    let mut device_busy = BTreeMap::new();
    device_busy.insert("Neurocube".to_string(), makespan);
    Ok(ExecutionReport {
        system: "Neurocube".to_string(),
        steps,
        makespan,
        op_time,
        data_movement_time: dm * 0.8,
        sync_time: dm * 0.2,
        dynamic_energy: energy * steps as f64
            + BASE_SYSTEM_POWER * makespan
            + pim_common::units::Watts::new(40.0) * makespan,
        ff_utilization: 0.0,
        device_busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{simulate, SystemConfig};
    use pim_models::ModelKind;

    #[test]
    fn hetero_beats_neurocube_by_at_least_3x() {
        // §VI-C: "even with less compute-intensive models, such as DCGAN,
        // our work can achieve at least 3x higher performance and energy
        // efficiency than Neurocube."
        for kind in [ModelKind::Dcgan, ModelKind::AlexNet] {
            let model = Model::build(kind).unwrap();
            let nc = simulate_neurocube(&model, 2).unwrap();
            let hetero = simulate(&model, &SystemConfig::hetero_pim(), 2).unwrap();
            let speedup = nc.makespan / hetero.makespan;
            assert!(speedup >= 3.0, "{kind}: speedup only {speedup}");
            let energy_ratio = nc.dynamic_energy / hetero.dynamic_energy;
            assert!(energy_ratio >= 3.0, "{kind}: energy ratio {energy_ratio}");
        }
    }

    #[test]
    fn neurocube_report_is_well_formed() {
        let model = Model::build_with_batch(ModelKind::Vgg19, 4).unwrap();
        let r = simulate_neurocube(&model, 1).unwrap();
        assert!(r.is_well_formed());
    }
}
