//! Additional comparison baselines: Neurocube (Fig. 10).

use pim_common::units::{Joules, Seconds};
use pim_common::Result;
use pim_graph::cost::graph_costs;
use pim_hw::neurocube::Neurocube;
use pim_mem::stack::StackConfig;
use pim_models::Model;
use pim_runtime::engine::{run_device_serial, DeviceRun, NullSink};
use pim_runtime::stats::ExecutionReport;

/// Simulates Neurocube executing the training step on its 16 programmable
/// vault PEs, sequentially (no dynamic runtime scheduling — the §VI-C
/// difference the paper calls out).
///
/// The op stream runs through the shared event core via Neurocube's
/// `Device` implementation, so the op/data-movement/sync breakdown is
/// derived from its own timing estimates — per op, compute time is
/// operation time, the memory-bound excess over compute is data movement,
/// and PE dispatch is synchronization — rather than an assumed fixed
/// split.
///
/// # Errors
///
/// Propagates cost-model failures.
pub fn simulate_neurocube(model: &Model, steps: usize) -> Result<ExecutionReport> {
    let nc = Neurocube::isca16(&StackConfig::hmc2());
    let costs = graph_costs(model.graph())?;
    Ok(run_device_serial(
        &DeviceRun {
            system: "Neurocube",
            device: &nc,
            costs: &costs,
            steps,
            step_epilogue_dm: Seconds::ZERO,
            step_epilogue_energy: Joules::ZERO,
        },
        &mut NullSink,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{simulate, SystemConfig};
    use pim_models::ModelKind;

    #[test]
    fn hetero_beats_neurocube_by_at_least_3x() {
        // §VI-C: "even with less compute-intensive models, such as DCGAN,
        // our work can achieve at least 3x higher performance and energy
        // efficiency than Neurocube."
        for kind in [ModelKind::Dcgan, ModelKind::AlexNet] {
            let model = Model::build(kind).unwrap();
            let nc = simulate_neurocube(&model, 2).unwrap();
            let hetero = simulate(&model, &SystemConfig::hetero_pim(), 2).unwrap();
            let speedup = nc.makespan / hetero.makespan;
            assert!(speedup >= 3.0, "{kind}: speedup only {speedup}");
            let energy_ratio = nc.dynamic_energy / hetero.dynamic_energy;
            assert!(energy_ratio >= 3.0, "{kind}: energy ratio {energy_ratio}");
        }
    }

    #[test]
    fn neurocube_report_is_well_formed() {
        let model = Model::build_with_batch(ModelKind::Vgg19, 4).unwrap();
        let r = simulate_neurocube(&model, 1).unwrap();
        assert!(r.is_well_formed());
    }

    #[test]
    fn neurocube_breakdown_comes_from_its_device_estimates() {
        let model = Model::build_with_batch(ModelKind::Vgg19, 4).unwrap();
        let r = simulate_neurocube(&model, 1).unwrap();
        let (op, dm, sync) = r.breakdown_fractions();
        // All three components are present and derived, not a fixed
        // 80/20 split of the non-compute remainder.
        assert!(op > 0.0 && dm > 0.0 && sync > 0.0);
        let non_op = dm + sync;
        assert!(
            (dm / non_op - 0.8).abs() > 1e-6,
            "dm fraction suspiciously equals the old hardcoded split"
        );
        assert_eq!(r.device_busy["Neurocube"], r.makespan);
    }
}
