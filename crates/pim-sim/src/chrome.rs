//! Chrome-trace export of one engine run (`repro --trace <path>`).
//!
//! Runs a model under a system preset with span recording on and renders
//! the [`pim_runtime`] observability layer's recording as Chrome
//! trace-event JSON (loadable in `chrome://tracing` and Perfetto). All
//! timestamps are simulated time, so the export is byte-identical across
//! runs.

use pim_common::{PimError, Result};
use pim_models::{Model, ModelKind};
use pim_runtime::engine::{Engine, EngineConfig, RunOptions, SystemPreset, WorkloadSpec};

/// Simulates `steps` training steps of `kind` at `batch` under `preset`
/// and returns the run's Chrome trace-event JSON.
///
/// # Examples
///
/// ```
/// use pim_models::ModelKind;
/// use pim_runtime::engine::SystemPreset;
///
/// # fn main() -> pim_common::Result<()> {
/// let json = pim_sim::chrome::chrome_trace(ModelKind::AlexNet, 2, 1, SystemPreset::Hetero)?;
/// assert!(pim_common::trace::validate_chrome_trace(&json).is_clean());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates model-build and engine failures, or an unsupported error
/// when the `trace` feature is compiled out.
pub fn chrome_trace(
    kind: ModelKind,
    batch: usize,
    steps: usize,
    preset: SystemPreset,
) -> Result<String> {
    let model = Model::build_with_batch(kind, batch)?;
    let engine = Engine::new(EngineConfig::preset(preset));
    let opts = RunOptions {
        trace: true,
        ..RunOptions::default()
    };
    let out = engine.run_with(
        &[WorkloadSpec {
            graph: model.graph(),
            steps,
            cpu_progr_only: false,
        }],
        &opts,
    )?;
    let recording = out.trace.ok_or_else(|| {
        PimError::invalid(
            "chrome_trace",
            "span tracing requires the `trace` cargo feature of pim-sim",
        )
    })?;
    Ok(recording.to_chrome_json())
}
