//! Order-invariance fuzzing and schedule-search experiments.
//!
//! The `repro fuzz` subcommand sweeps models × engine presets × seeded
//! tie-break permutations through the pass-5 differential driver
//! ([`pim_runtime::fuzz`]) and tabulates the result — every cell must
//! come back clean (report identical to the stable order, timeline
//! legal, counters matching). The `repro search` subcommand runs the
//! [`pim_runtime::search`] beam over the legal-but-free
//! [`pim_runtime::fuzz::TieBreak::Priority`] order
//! space and prints the "oracle gap": how much makespan the best-found
//! schedule saves over the paper heuristic, with the best timeline
//! replayed through the legality checker.

use crate::cache;
use pim_common::diag::Diagnostics;
use pim_common::Result;
use pim_models::ModelKind;
use pim_runtime::engine::{Engine, EngineConfig, SystemPreset, WorkloadSpec};
use pim_runtime::fuzz::{fuzz_orders, TieBreak};
use pim_runtime::search::{beam_search, SearchConfig};
use serde::Serialize;
use std::fmt::Write as _;

/// The default models `repro fuzz` sweeps when `--models` is absent
/// (one CNN, one RNN — matching the fault sweep).
pub const DEFAULT_FUZZ_MODELS: [ModelKind; 2] = [ModelKind::AlexNet, ModelKind::Lstm];

/// The default models `repro search` sweeps (a third family beyond the
/// fuzz pair: GAN training is the most pipeline-sensitive workload).
pub const DEFAULT_SEARCH_MODELS: [ModelKind; 3] =
    [ModelKind::AlexNet, ModelKind::Dcgan, ModelKind::Lstm];

/// Parses a `repro fuzz --presets` key into a [`SystemPreset`].
///
/// Keys are short and space-free (the display names are not): `cpu`,
/// `progr`, `fixed`, `hetero`, `bare`, `rc`.
///
/// # Errors
///
/// Returns an invalid-argument error naming the accepted keys.
pub fn parse_preset(key: &str) -> Result<SystemPreset> {
    match key {
        "cpu" => Ok(SystemPreset::CpuOnly),
        "progr" => Ok(SystemPreset::ProgrOnly),
        "fixed" => Ok(SystemPreset::FixedHost),
        "hetero" => Ok(SystemPreset::Hetero),
        "bare" => Ok(SystemPreset::HeteroBare),
        "rc" => Ok(SystemPreset::HeteroRc),
        other => Err(pim_common::PimError::invalid(
            "repro_fuzz",
            format!("unknown preset `{other}` (expected cpu, progr, fixed, hetero, bare, or rc)"),
        )),
    }
}

/// One cell of the fuzz sweep: a (model, preset) pair fuzzed across N
/// permuted orders.
#[derive(Debug, Clone, Serialize)]
pub struct FuzzCell {
    /// The simulated model.
    pub model: ModelKind,
    /// The engine-backed system preset.
    pub preset: SystemPreset,
    /// Permuted orders compared against the stable baseline.
    pub orders: usize,
    /// Orders that diverged (must be 0).
    pub divergent: usize,
}

/// Runs the order-invariance fuzz over every (model, preset) cell and
/// returns the per-cell tallies plus all divergence diagnostics.
///
/// # Errors
///
/// Propagates model-construction and simulation failures; divergences
/// become diagnostics, not errors.
pub fn fuzz_data(
    kinds: &[ModelKind],
    presets: &[SystemPreset],
    seeds: usize,
    base_seed: u64,
    steps: usize,
) -> Result<(Vec<FuzzCell>, Diagnostics)> {
    let mut cells = Vec::new();
    let mut diags = Diagnostics::new();
    for &kind in kinds {
        let model = cache::model(kind)?;
        let spec = [WorkloadSpec {
            graph: model.graph(),
            steps,
            cpu_progr_only: false,
        }];
        for &preset in presets {
            let engine = Engine::new(EngineConfig::preset(preset));
            let subject = format!("{kind}@{}", preset.name());
            let outcome = fuzz_orders(&engine, &spec, seeds, base_seed, &subject)?;
            cells.push(FuzzCell {
                model: kind,
                preset,
                orders: outcome.orders,
                divergent: outcome.divergent,
            });
            diags.extend(outcome.diags);
        }
    }
    Ok((cells, diags))
}

/// Renders the fuzz sweep (`repro fuzz`). The last line is a verdict:
/// `order invariance: PASS` when every cell came back clean.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fuzz_table(
    kinds: &[ModelKind],
    presets: &[SystemPreset],
    seeds: usize,
    base_seed: u64,
    steps: usize,
) -> Result<String> {
    let (cells, diags) = fuzz_data(kinds, presets, seeds, base_seed, steps)?;
    let mut out = String::new();
    writeln!(
        out,
        "Order-invariance fuzz: {seeds} permuted orders per (model, preset) \
         (base seed {base_seed}, {steps} steps)"
    )
    .ok();
    let mut current = None;
    for c in &cells {
        if current != Some(c.model) {
            current = Some(c.model);
            writeln!(out, "\n== {} ==", c.model).ok();
        }
        writeln!(
            out,
            "  {:<12} orders={:>3}  divergent={:>2}  {}",
            c.preset.name(),
            c.orders,
            c.divergent,
            if c.divergent == 0 { "ok" } else { "DIVERGED" },
        )
        .ok();
    }
    if !diags.is_clean() {
        writeln!(out, "\n{}", diags.render_text()).ok();
    }
    let total: usize = cells.iter().map(|c| c.divergent).sum();
    writeln!(
        out,
        "\norder invariance: {}",
        if total == 0 && diags.is_clean() {
            "PASS"
        } else {
            "FAIL"
        }
    )
    .ok();
    Ok(out)
}

/// One row of the oracle-gap table: beam search vs the paper heuristic
/// on one model.
#[derive(Debug, Clone, Serialize)]
pub struct GapCell {
    /// The simulated model.
    pub model: ModelKind,
    /// The engine-backed system preset searched over.
    pub preset: SystemPreset,
    /// Makespan of the stable (paper-heuristic) schedule, seconds.
    pub stable_s: f64,
    /// Best makespan the beam found, seconds.
    pub best_s: f64,
    /// Fraction of the stable makespan saved (0 when never beaten).
    pub gap: f64,
    /// Distinct orders the beam evaluated.
    pub evaluated: usize,
    /// Display form of the winning order.
    pub best_order: String,
    /// Whether the best-found timeline replayed clean through the
    /// schedule-legality checker (must be true).
    pub legal: bool,
}

/// Runs the beam search per model on `preset` and legality-replays each
/// winner.
///
/// # Errors
///
/// Propagates model-construction and simulation failures.
pub fn oracle_gap_data(
    kinds: &[ModelKind],
    preset: SystemPreset,
    cfg: &SearchConfig,
    steps: usize,
) -> Result<Vec<GapCell>> {
    let mut cells = Vec::new();
    for &kind in kinds {
        let model = cache::model(kind)?;
        let spec = [WorkloadSpec {
            graph: model.graph(),
            steps,
            cpu_progr_only: false,
        }];
        let engine = Engine::new(EngineConfig::preset(preset));
        let outcome = beam_search(&engine, &spec, cfg)?;
        let replay = engine.verify_timeline(&spec, &outcome.best_timeline)?;
        cells.push(GapCell {
            model: kind,
            preset,
            stable_s: outcome.stable_makespan.seconds(),
            best_s: outcome.best_makespan.seconds(),
            gap: outcome.gap(),
            evaluated: outcome.evaluated,
            best_order: outcome.best_order.describe(),
            legal: replay.is_clean(),
        });
    }
    Ok(cells)
}

/// Renders the oracle-gap table (`repro search`).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn oracle_gap_table(
    kinds: &[ModelKind],
    preset: SystemPreset,
    cfg: &SearchConfig,
    steps: usize,
) -> Result<String> {
    let cells = oracle_gap_data(kinds, preset, cfg, steps)?;
    let mut out = String::new();
    writeln!(
        out,
        "Oracle gap: beam search over the priority order space vs the paper heuristic\n\
         (preset {}, beam width {}, {} rounds, branching {}, seed {}, {steps} steps)",
        preset.name(),
        cfg.beam_width,
        cfg.rounds,
        cfg.branching,
        cfg.seed,
    )
    .ok();
    writeln!(
        out,
        "\n  {:<10} {:>14} {:>14} {:>8} {:>6}  {:<18} legal",
        "model", "heuristic (s)", "best found (s)", "gap", "evals", "best order"
    )
    .ok();
    for c in &cells {
        writeln!(
            out,
            "  {:<10} {:>14.6e} {:>14.6e} {:>7.3}% {:>6}  {:<18} {}",
            c.model.to_string(),
            c.stable_s,
            c.best_s,
            c.gap * 100.0,
            c.evaluated,
            c.best_order,
            if c.legal { "ok" } else { "ILLEGAL" },
        )
        .ok();
    }
    Ok(out)
}

/// The negative control for pass 5: a [`TieBreak::Priority`] order is
/// legal but schedule-changing, so feeding it through the comparison
/// machinery must produce a divergence diagnostic naming the first
/// divergent timeline entry. Returns the diagnostics for inspection.
///
/// # Errors
///
/// Propagates model-construction and simulation failures.
pub fn negative_control(kind: ModelKind, seed: u64, steps: usize) -> Result<Diagnostics> {
    let model = cache::model(kind)?;
    let spec = [WorkloadSpec {
        graph: model.graph(),
        steps,
        cpu_progr_only: false,
    }];
    let engine = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
    let outcome = pim_runtime::fuzz::check_order_invariance(
        &engine,
        &spec,
        &[TieBreak::Priority(seed)],
        &format!("{kind}@Hetero"),
    )?;
    Ok(outcome.diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_sweep_is_clean_and_deterministic_on_alexnet() {
        let kinds = [ModelKind::AlexNet];
        let a = fuzz_table(&kinds, &SystemPreset::ALL, 4, 1, 2).unwrap();
        let b = fuzz_table(&kinds, &SystemPreset::ALL, 4, 1, 2).unwrap();
        assert_eq!(a, b, "same seed must render byte-identically");
        assert!(a.contains("order invariance: PASS"), "{a}");
    }

    #[test]
    fn preset_keys_round_trip_and_reject_unknown() {
        for (key, preset) in [
            ("cpu", SystemPreset::CpuOnly),
            ("progr", SystemPreset::ProgrOnly),
            ("fixed", SystemPreset::FixedHost),
            ("hetero", SystemPreset::Hetero),
            ("bare", SystemPreset::HeteroBare),
            ("rc", SystemPreset::HeteroRc),
        ] {
            assert_eq!(parse_preset(key).unwrap(), preset);
        }
        let err = parse_preset("gpu").unwrap_err().to_string();
        assert!(err.contains("unknown preset `gpu`"), "{err}");
    }

    #[test]
    fn fuzz_preset_filter_restricts_the_sweep() {
        let kinds = [ModelKind::AlexNet];
        let (cells, diags) = fuzz_data(
            &kinds,
            &[SystemPreset::Hetero, SystemPreset::ProgrOnly],
            2,
            1,
            1,
        )
        .unwrap();
        assert_eq!(cells.len(), 2);
        assert!(diags.is_clean(), "{}", diags.render_text());
        assert!(cells.iter().all(|c| c.divergent == 0));
    }

    #[test]
    fn negative_control_is_caught_with_divergent_entry() {
        // A Priority order legally reorders the schedule; the pass-5
        // comparison must flag it and name the first divergent entry —
        // exactly how a reintroduced HashMap-tie bug would surface.
        let diags = negative_control(ModelKind::AlexNet, 7, 2).unwrap();
        assert!(!diags.is_clean(), "priority order must diverge");
        let text = diags.render_text();
        assert!(
            text.contains("first divergent timeline entry"),
            "diagnostic must pinpoint the divergence: {text}"
        );
        assert!(
            text.contains("order="),
            "diagnostic names the order: {text}"
        );
    }

    #[test]
    fn oracle_gap_rows_are_legal() {
        let cells = oracle_gap_data(
            &[ModelKind::AlexNet],
            SystemPreset::Hetero,
            &SearchConfig {
                beam_width: 2,
                rounds: 1,
                branching: 3,
                seed: 1,
            },
            2,
        )
        .unwrap();
        assert_eq!(cells.len(), 1);
        assert!(cells[0].legal, "beam winner must replay legally");
        assert!(cells[0].best_s <= cells[0].stable_s + 1e-12);
    }
}
