//! End-to-end tests of the observability layer: Chrome-trace export
//! (golden file, determinism, structural validity) and the counters
//! registry's agreement with the execution report across the evaluation
//! grid.

use pim_models::{Model, ModelKind};
use pim_runtime::engine::{Engine, EngineConfig, RunOptions, SystemPreset, WorkloadSpec};
use pim_runtime::stats::cross_check_counters;

#[cfg(feature = "trace")]
mod chrome_export {
    use pim_models::ModelKind;
    use pim_runtime::engine::SystemPreset;
    use pim_sim::chrome::chrome_trace;

    const GOLDEN: &str = include_str!("golden/alexnet_trace.json");

    fn alexnet_trace() -> String {
        chrome_trace(ModelKind::AlexNet, 2, 2, SystemPreset::Hetero).unwrap()
    }

    // The export is a stable artifact: simulated-time stamps only, sorted
    // deterministically. Regenerate the golden file with
    // `cargo run --release -p pim-sim --bin repro -- --trace \
    //  crates/pim-sim/tests/golden/alexnet_trace.json` after an
    // intentional scheduler or trace-format change.
    #[test]
    fn matches_golden_file() {
        let json = alexnet_trace();
        assert!(
            json == GOLDEN,
            "AlexNet Chrome trace diverged from tests/golden/alexnet_trace.json \
             ({} bytes vs {} golden); regenerate via `repro --trace` if intended",
            json.len(),
            GOLDEN.len()
        );
    }

    #[test]
    fn is_deterministic_across_runs() {
        assert_eq!(alexnet_trace(), alexnet_trace());
    }

    #[test]
    fn golden_file_is_structurally_valid() {
        let diags = pim_common::trace::validate_chrome_trace(GOLDEN);
        assert!(diags.is_clean(), "{}", diags.render_text());
    }

    #[test]
    fn every_preset_exports_a_valid_trace() {
        for preset in SystemPreset::ALL {
            let json = chrome_trace(ModelKind::Dcgan, 4, 1, preset).unwrap();
            let diags = pim_common::trace::validate_chrome_trace(&json);
            assert!(diags.is_clean(), "{preset:?}: {}", diags.render_text());
        }
    }
}

// The 1e-6 relative-tolerance cross-check of the independently-accumulated
// counter registry against the report, over every model x engine preset.
#[test]
fn counters_agree_with_report_across_the_grid() {
    for kind in [
        ModelKind::AlexNet,
        ModelKind::Vgg19,
        ModelKind::ResNet50,
        ModelKind::InceptionV3,
        ModelKind::Dcgan,
    ] {
        let model = Model::build_with_batch(kind, 2).unwrap();
        let workload = WorkloadSpec {
            graph: model.graph(),
            steps: 2,
            cpu_progr_only: false,
        };
        for preset in SystemPreset::ALL {
            let engine = Engine::new(EngineConfig::preset(preset));
            let out = engine
                .run_with(&[workload], &RunOptions::default())
                .unwrap();
            let diags = cross_check_counters(out.report(), &out.counters);
            assert!(
                diags.is_clean(),
                "{kind} on {preset:?}:\n{}",
                diags.render_text()
            );
            let dispatched = out.counters.get("events/dispatched");
            assert_eq!(
                dispatched,
                (model.graph().op_count() * workload.steps) as f64,
                "{kind} on {preset:?} dispatched wrong op count"
            );
        }
    }
}
