//! Differential suite guarding the engine hot-path optimizations.
//!
//! Every optimization in this area (single-pass scheduler scan, deferred
//! counter flush, profile memoization, sweep-cell cache) claims to be
//! behavior-invisible. These tests make the claim falsifiable: seeded
//! random graphs and the paper models run through both the optimized
//! sweep paths and the plain single-run reference, and the resulting
//! [`ExecutionReport`]s must agree exactly — `PartialEq`, no tolerance.
//! Schedules must replay cleanly through the legality checker and the
//! counter registry must match the report.
//!
//! The suite is feature-agnostic: CI runs it with the `parallel` feature
//! on and off and expects identical verdicts.

use pim_graph::gen::{random_dag, GenSpec};
use pim_hw::faults::FaultPlan;
use pim_models::{Model, ModelKind};
use pim_runtime::engine::{Engine, EngineConfig, RunOptions, SystemPreset, WorkloadSpec};
use pim_runtime::stats::cross_check_counters;
use pim_sim::cache;
use pim_sim::configs::{simulate, SystemConfig};

const SEEDS: u64 = 50;
const STEPS: usize = 2;

/// 50 seeded random DAGs x all 6 presets: the plain report path and the
/// timeline-collecting path (different sinks, different allocation
/// behavior) must produce identical reports; the timeline must replay
/// cleanly through the schedule checker; counters must agree with the
/// report.
#[test]
fn random_graphs_run_identically_on_every_preset() {
    for seed in 0..SEEDS {
        let graph = random_dag(&GenSpec::from_seed(seed));
        graph
            .validate()
            .unwrap_or_else(|e| panic!("seed {seed}: generator produced invalid graph: {e}"));
        let diags = pim_verify::graph::verify_graph(&format!("random-{seed}"), &graph);
        assert!(diags.is_clean(), "seed {seed}:\n{}", diags.render_text());

        let wl = [WorkloadSpec {
            graph: &graph,
            steps: STEPS,
            cpu_progr_only: false,
        }];
        for preset in SystemPreset::ALL {
            let engine = Engine::new(EngineConfig::preset(preset));
            let reference = engine.run(&wl).unwrap();
            let detailed = engine
                .run_with(
                    &wl,
                    &RunOptions {
                        timeline: true,
                        ..RunOptions::default()
                    },
                )
                .unwrap();
            assert_eq!(
                reference,
                *detailed.report(),
                "seed {seed} {preset:?}: report paths diverge"
            );

            let timeline = detailed.timeline.as_deref().expect("timeline requested");
            let diags = engine.verify_timeline(&wl, timeline).unwrap();
            assert!(
                diags.is_clean(),
                "seed {seed} {preset:?}: illegal schedule\n{}",
                diags.render_text()
            );

            let diags = cross_check_counters(detailed.report(), &detailed.counters);
            assert!(
                diags.is_clean(),
                "seed {seed} {preset:?}: counters disagree with report\n{}",
                diags.render_text()
            );
        }
    }
}

/// Fault-path differential on a seed subset: under a seeded [`FaultPlan`]
/// the report path and the timeline-collecting path must still agree
/// exactly, the faulted timeline must replay cleanly through the faulted
/// legality checker, counters must cross-check, and a rerun of the same
/// plan must be deterministic. Guards the faulted event core the same way
/// the zero-fault suite guards the plain one.
#[test]
fn faulted_runs_are_deterministic_and_legal() {
    const FAULT_SEEDS: [u64; 5] = [2, 11, 23, 31, 47];
    const RATE: f64 = 0.1;
    for seed in FAULT_SEEDS {
        let graph = random_dag(&GenSpec::from_seed(seed));
        let wl = [WorkloadSpec {
            graph: &graph,
            steps: STEPS,
            cpu_progr_only: false,
        }];
        for preset in SystemPreset::ALL {
            let engine = Engine::new(EngineConfig::preset(preset));
            let baseline = engine.run(&wl).unwrap();
            let plan = FaultPlan::seeded(seed, RATE, baseline.makespan, engine.config().ff_units);

            let reference = engine
                .run_with_faults(&wl, &RunOptions::default(), &plan)
                .unwrap();
            let detailed = engine
                .run_with_faults(
                    &wl,
                    &RunOptions {
                        timeline: true,
                        ..RunOptions::default()
                    },
                    &plan,
                )
                .unwrap();
            assert_eq!(
                reference.report(),
                detailed.report(),
                "seed {seed} {preset:?}: faulted report paths diverge"
            );
            assert_eq!(
                reference.degraded, detailed.degraded,
                "seed {seed} {preset:?}: collapse verdicts diverge"
            );

            let rerun = engine
                .run_with_faults(&wl, &RunOptions::default(), &plan)
                .unwrap();
            assert_eq!(
                reference.report(),
                rerun.report(),
                "seed {seed} {preset:?}: faulted rerun diverged"
            );

            let timeline = detailed.timeline.as_deref().expect("timeline requested");
            let diags = engine
                .verify_timeline_faulted(&wl, timeline, &plan)
                .unwrap();
            assert!(
                diags.is_clean(),
                "seed {seed} {preset:?}: illegal faulted schedule\n{}",
                diags.render_text()
            );

            let diags = cross_check_counters(detailed.report(), &detailed.counters);
            assert!(
                diags.is_clean(),
                "seed {seed} {preset:?}: faulted counters disagree with report\n{}",
                diags.render_text()
            );
        }
    }
}

/// A second engine run of the same graph (profile memo warm) returns the
/// same report as the first (memo cold): memoization must not leak into
/// results.
#[test]
fn warm_profile_memo_changes_nothing() {
    for seed in [3, 17, 41] {
        let graph = random_dag(&GenSpec::from_seed(seed));
        let engine = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
        let wl = [WorkloadSpec {
            graph: &graph,
            steps: STEPS,
            cpu_progr_only: false,
        }];
        let cold = engine.run(&wl).unwrap();
        let warm = engine.run(&wl).unwrap();
        assert_eq!(cold, warm, "seed {seed}: memo-warm rerun diverged");
    }
}

/// The sweep-cell cache against the uncached single-run reference, over
/// paper models on every preset: first call (miss), second call (hit),
/// and a fresh `simulate` must be three identical reports.
#[test]
fn sweep_cells_match_single_run_reference() {
    for (kind, batch) in [(ModelKind::AlexNet, 4), (ModelKind::Dcgan, 4)] {
        let model = Model::build_with_batch(kind, batch).unwrap();
        for preset in SystemPreset::ALL {
            let config = SystemConfig::HeteroPim(EngineConfig::preset(preset));
            let miss = cache::cell_report(&model, &config, STEPS).unwrap();
            let hit = cache::cell_report(&model, &config, STEPS).unwrap();
            let fresh = simulate(&model, &config, STEPS).unwrap();
            assert_eq!(miss, hit, "{kind:?} {preset:?}: cache hit diverged");
            assert_eq!(miss, fresh, "{kind:?} {preset:?}: cache vs fresh diverged");
        }
    }
}
