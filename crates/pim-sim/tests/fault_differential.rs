//! Differential guard for the fault-injection subsystem: running every
//! golden sweep cell through the faulted entry point with
//! [`FaultPlan::none`] must reproduce the checked-in golden table
//! byte-for-byte. The golden file predates the fault subsystem, so this
//! pins "no plan means the untouched zero-fault hot path" at the
//! strongest possible granularity — the shortest-round-trip `f64`
//! rendering of all 42 (model x preset) cells.

use pim_hw::faults::FaultPlan;
use pim_models::{Model, ModelKind};
use pim_runtime::engine::{Engine, EngineConfig, RunOptions, SystemPreset, WorkloadSpec};
use std::fmt::Write as _;

const STEPS: usize = 2;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/sweep_reports.txt"
);

#[test]
fn none_plan_sweep_matches_the_golden_table() {
    let mut out = String::new();
    writeln!(
        out,
        "# model | preset | makespan_s | op_s | dm_s | sync_s | energy_j | ff_util"
    )
    .unwrap();
    for kind in ModelKind::ALL {
        let model = Model::build(kind).unwrap();
        for preset in SystemPreset::ALL {
            let engine = Engine::new(EngineConfig::preset(preset));
            let run = engine
                .run_with_faults(
                    &[WorkloadSpec {
                        graph: model.graph(),
                        steps: STEPS,
                        cpu_progr_only: false,
                    }],
                    &RunOptions::default(),
                    &FaultPlan::none(),
                )
                .unwrap();
            assert!(run.degraded.is_none(), "{kind} @ {preset:?}");
            let r = run.report();
            writeln!(
                out,
                "{} | {} | {:?} | {:?} | {:?} | {:?} | {:?} | {:?}",
                kind.name(),
                preset.name(),
                r.makespan.seconds(),
                r.op_time.seconds(),
                r.data_movement_time.seconds(),
                r.sync_time.seconds(),
                r.dynamic_energy.joules(),
                r.ff_utilization,
            )
            .unwrap();
        }
    }
    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden table missing — regenerate with UPDATE_GOLDEN=1");
    for (n, (e, a)) in expected.lines().zip(out.lines()).enumerate() {
        assert_eq!(e, a, "none-plan cell drifted from golden at line {}", n + 1);
    }
    assert_eq!(expected.lines().count(), out.lines().count());
}
