//! Service determinism: a report served by the daemon is byte-identical
//! to the report a direct `Engine::run_with` call produces — with a
//! cold private store, with the warm process-wide shared store, and
//! across repeated replays of a generated load trace.

use pim_models::ModelKind;
use pim_runtime::{Engine, EngineConfig, RunOptions, SystemPreset, WorkloadSpec};
use pim_serve::{loadgen, serve_lines, JobRunner, MemStore, ServeConfig};
use pim_sim::cache::SharedStore;
use pim_sim::serve::{render_reports, verify_samples, SimRunner};

fn serve(store: &dyn pim_serve::ResultStore, input: &str) -> Vec<String> {
    let mut out = Vec::new();
    serve_lines(
        &ServeConfig::default(),
        &SimRunner,
        store,
        input.as_bytes(),
        &mut out,
    )
    .expect("daemon I/O");
    String::from_utf8(out)
        .expect("utf8 responses")
        .lines()
        .map(str::to_string)
        .collect()
}

fn reports_payload(line: &str) -> &str {
    line.split("\"reports\":")
        .nth(1)
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or_else(|| panic!("no reports payload in {line}"))
}

#[test]
fn daemon_report_is_byte_identical_to_direct_run_with() {
    let trace = "{\"id\":\"d1\",\"model\":\"dcgan\",\"preset\":\"hetero\",\"steps\":2}\n";
    let lines = serve(&MemStore::default(), trace);
    assert!(lines[0].contains("\"status\":\"ok\""), "{}", lines[0]);

    let model = pim_sim::cache::model(ModelKind::Dcgan).unwrap();
    let direct = Engine::new(EngineConfig::preset(SystemPreset::Hetero))
        .run_with(
            &[WorkloadSpec {
                graph: model.graph(),
                steps: 2,
                cpu_progr_only: false,
            }],
            &RunOptions::default(),
        )
        .unwrap();
    let want = render_reports(&pim_serve::StoredResult {
        reports: direct.reports,
        degraded: None,
    });
    assert_eq!(reports_payload(&lines[0]), want);
}

#[test]
fn every_job_of_a_cold_trace_matches_the_direct_engine() {
    let trace = loadgen::generate(60, 7, 3);
    let input = trace.join("\n") + "\n";
    let responses = serve(&MemStore::default(), &input);
    let checked = verify_samples(&trace, &responses, 1).unwrap();
    // Every run line was byte-checked (barriers are skipped).
    assert!(
        checked >= 55,
        "only {checked} of {} lines checked",
        trace.len()
    );
}

#[test]
fn warm_shared_store_flips_hit_flags_but_never_report_bytes() {
    // batch 6 keeps this cell out of every other test's way: SharedStore
    // is process-wide by design.
    let trace = "{\"id\":\"w1\",\"tenant\":\"t0\",\"model\":\"dcgan\",\"batch\":6}\n";
    let first = serve(&SharedStore, trace);
    let second = serve(&SharedStore, trace);
    assert!(first[0].contains("\"cache\":\"miss\""), "{}", first[0]);
    assert!(second[0].contains("\"cache\":\"hit\""), "{}", second[0]);
    assert_eq!(reports_payload(&first[0]), reports_payload(&second[0]));
    // The warm hit still equals a direct engine run.
    let direct = SimRunner
        .execute(&pim_serve::parse_request(trace.trim()).unwrap())
        .unwrap();
    assert_eq!(reports_payload(&second[0]), render_reports(&direct));
}

#[test]
fn runaway_deadline_is_cut_off_without_touching_other_tenants() {
    // A greedy tenant submits a heavyweight run under a 1 ms fuel budget
    // (it would run orders of magnitude longer); a bystander tenant's
    // job in the same window must be completely unaffected, and the
    // whole exchange must replay byte-identically.
    let trace = "\
{\"id\":\"greedy\",\"tenant\":\"hog\",\"model\":\"resnet\",\"steps\":3,\"deadline_ms\":1}\n\
{\"id\":\"calm\",\"tenant\":\"bystander\",\"model\":\"dcgan\",\"preset\":\"hetero\",\"steps\":2}\n\
{\"id\":\"s\",\"op\":\"stats\"}\n";
    let lines = serve(&MemStore::default(), trace);
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains("\"status\":\"error\""), "{}", lines[0]);
    assert!(
        lines[0].contains("\"error\":\"deadline_exceeded\""),
        "{}",
        lines[0]
    );
    assert!(lines[1].contains("\"status\":\"ok\""), "{}", lines[1]);

    // The bystander's report is byte-identical to the direct engine run.
    let direct = SimRunner
        .execute(&pim_serve::parse_request(trace.lines().nth(1).unwrap()).unwrap())
        .unwrap();
    assert_eq!(reports_payload(&lines[1]), render_reports(&direct));

    let replay = serve(&MemStore::default(), trace);
    assert_eq!(lines, replay);
}

#[test]
fn load_trace_replays_byte_identically_with_and_without_warm_store() {
    let trace = loadgen::generate(40, 3, 2).join("\n") + "\n";
    let cold_a = serve(&MemStore::default(), &trace);
    let cold_b = serve(&MemStore::default(), &trace);
    assert_eq!(cold_a, cold_b);
    // A warm shared store may flip cache flags but the report bytes and
    // response order are pinned.
    let warm = serve(&SharedStore, &trace);
    assert_eq!(warm.len(), cold_a.len());
    for (w, c) in warm.iter().zip(&cold_a) {
        if w.contains("\"reports\":") {
            assert_eq!(reports_payload(w), reports_payload(c));
        }
    }
}
