//! CLI contract tests for the `repro` binary: bad arguments are
//! structured usage errors with exit code 2, runtime failures exit 1,
//! and the fault sweep is deterministic across invocations.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro spawns")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn unknown_section_is_a_usage_error() {
    let out = repro(&["bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown section `bogus`"), "{err}");
    assert!(err.contains("usage:"), "{err}");
    assert!(out.stdout.is_empty());
}

#[test]
fn unknown_model_is_a_usage_error() {
    for args in [
        &["schedule", "nope"][..],
        &["faults", "--models", "alex,nope"][..],
        &["bench", "--models", "nope"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(stderr(&out).contains("unknown model `nope`"), "{args:?}");
    }
}

#[test]
fn malformed_fault_flags_are_usage_errors() {
    for args in [
        &["faults", "--rate", "2.0"][..],
        &["faults", "--rate", "abc"][..],
        &["faults", "--seed", "x"][..],
        &["faults", "--steps", "0"][..],
        &["faults", "--frobnicate"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr(&out));
    }
}

#[test]
fn malformed_bench_flags_are_usage_errors() {
    for args in [
        &["bench", "--iters", "abc"][..],
        &["bench", "--baseline", "12"][..],
        &["bench", "--frobnicate"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr(&out));
    }
}

#[test]
fn missing_trace_operands_are_usage_errors() {
    assert_eq!(repro(&["--trace"]).status.code(), Some(2));
    assert_eq!(repro(&["tracecheck"]).status.code(), Some(2));
}

#[test]
fn tracecheck_on_a_missing_file_is_a_runtime_error() {
    let out = repro(&["tracecheck", "/nonexistent/trace.json"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("tracecheck failed reading"));
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}

#[test]
fn config_section_still_renders() {
    let out = repro(&["config"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("Table IV"));
}

#[test]
fn fault_sweep_is_deterministic_across_processes() {
    let args = &[
        "faults", "--seed", "3", "--rate", "0.1", "--models", "alex", "--steps", "1",
    ];
    let a = repro(args);
    let b = repro(args);
    assert_eq!(a.status.code(), Some(0), "{}", stderr(&a));
    assert_eq!(a.stdout, b.stdout, "fault table must be byte-identical");
    let table = String::from_utf8_lossy(&a.stdout).into_owned();
    assert!(table.contains("== AlexNet @ Hetero PIM =="), "{table}");
    assert!(table.contains("degradation"), "{table}");
}

#[test]
fn isa_bad_flags_are_usage_errors() {
    for args in [
        &["isa", "--frobnicate"][..],
        &["isa", "--models", "nope"][..],
        &["isa", "--steps", "0"][..],
        &["isa", "--steps", "abc"][..],
        &["isa", "--models"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr(&out));
        assert!(
            stderr(&out).contains("usage:"),
            "{args:?}: {}",
            stderr(&out)
        );
        assert!(out.stdout.is_empty(), "{args:?} printed before failing");
    }
}

#[test]
fn isa_table_is_deterministic_across_processes() {
    let args = &["isa", "--models", "alex,dcgan", "--steps", "1"];
    let a = repro(args);
    let b = repro(args);
    assert_eq!(a.status.code(), Some(0), "{}", stderr(&a));
    assert_eq!(a.stdout, b.stdout, "isa table must be byte-identical");
    let table = String::from_utf8_lossy(&a.stdout).into_owned();
    assert!(table.contains("analytic vs interpreted"), "{table}");
    assert!(table.contains("AlexNet"), "{table}");
    assert!(table.contains("DCGAN"), "{table}");
    assert!(table.contains("within bound"), "{table}");
    assert!(!table.contains("OUT OF BOUND"), "{table}");
}
