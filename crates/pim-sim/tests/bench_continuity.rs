//! Bench continuity across PRs: each checked-in `BENCH_pr*.json` must be
//! a valid, full-grid successor to its predecessor, and the fault
//! subsystem must keep its bookkeeping off the zero-fault hot path.
//!
//! Absolute milliseconds in the checked-in files were recorded under
//! different machine load, so the <5% regression budget is asserted
//! like-for-like instead: the faulted entry point with `FaultPlan::none`
//! is timed against the plain entry point in the same process, same
//! moment, interleaved. An interleaved A/B of the pre-/post-change
//! release binaries over the full grid measured a 0.99x sum-of-medians
//! ratio at the time pr5 was recorded; the pr6 component-core refactor
//! recorded a 7.76x `repro all` speedup (its `repro_all` block), driven
//! by the linear-time dependency expansion in `pim_graph`.

use pim_hw::faults::FaultPlan;
use pim_models::{Model, ModelKind};
use pim_runtime::engine::{Engine, EngineConfig, RunOptions, SystemPreset, WorkloadSpec};
use pim_sim::bench::validate_bench_json;
use std::time::Instant;

fn repo_file(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_string() + "/" + name;
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// The (model, preset) key set of a bench document.
fn cell_keys(text: &str) -> Vec<(String, String)> {
    let doc = pim_common::trace::parse_json(text).expect("bench json parses");
    doc.field("cells")
        .and_then(|c| c.as_arr())
        .expect("cells array")
        .iter()
        .map(|cell| {
            (
                cell.field("model")
                    .and_then(|v| v.as_str())
                    .unwrap()
                    .to_string(),
                cell.field("preset")
                    .and_then(|v| v.as_str())
                    .unwrap()
                    .to_string(),
            )
        })
        .collect()
}

#[test]
fn checked_in_bench_files_are_valid_and_cover_the_same_grid() {
    let pr4 = repo_file("BENCH_pr4.json");
    let pr5 = repo_file("BENCH_pr5.json");
    let pr6 = repo_file("BENCH_pr6.json");
    validate_bench_json(&pr4).expect("BENCH_pr4.json validates");
    validate_bench_json(&pr5).expect("BENCH_pr5.json validates");
    validate_bench_json(&pr6).expect("BENCH_pr6.json validates");
    let (k4, k5, k6) = (cell_keys(&pr4), cell_keys(&pr5), cell_keys(&pr6));
    assert_eq!(k4.len(), 42, "pr4 grid is not 7 models x 6 presets");
    assert_eq!(
        k4, k5,
        "pr5 must cover exactly the pr4 (model, preset) grid"
    );
    assert_eq!(
        k5, k6,
        "pr6 must cover exactly the pr5 (model, preset) grid"
    );
}

#[test]
fn pr6_records_the_component_core_speedup() {
    let pr6 = repo_file("BENCH_pr6.json");
    let doc = pim_common::trace::parse_json(&pr6).expect("bench json parses");
    let repro_all = doc
        .field("repro_all")
        .expect("pr6 must carry the repro_all A/B record");
    let speedup = repro_all
        .field("speedup")
        .and_then(pim_common::trace::Json::as_num)
        .expect("repro_all.speedup");
    assert!(
        speedup >= 1.5,
        "pr6 repro-all speedup gate (>=1.5x) not met: {speedup}"
    );
    // The two checked-in bench files must also diff cleanly through the
    // comparison path `repro bench --compare` uses.
    let pr5 = repo_file("BENCH_pr5.json");
    let table = pim_sim::bench::compare_bench_json(&pr5, &pr6).expect("pr5 vs pr6 compares");
    assert!(
        table.contains("geomean speedup over 42 matched cells"),
        "{table}"
    );
}

#[test]
fn none_plan_entry_point_stays_within_the_hot_path_budget() {
    // Interleave the two entry points so load drift hits both equally,
    // then compare medians. The none-plan entry resolves to the very
    // same run path after one `is_none` check, so the 5% budget is
    // generous — it exists to catch fault bookkeeping leaking into the
    // zero-fault engine, not scheduling noise.
    let model = Model::build(ModelKind::AlexNet).unwrap();
    let spec = [WorkloadSpec {
        graph: model.graph(),
        steps: 3,
        cpu_progr_only: false,
    }];
    let engine = Engine::new(EngineConfig::preset(SystemPreset::Hetero));
    let none = FaultPlan::none();
    let opts = RunOptions::default();
    // Warm both paths (profile memo, allocator).
    engine.run(&spec).unwrap();
    engine.run_with_faults(&spec, &opts, &none).unwrap();
    let mut plain_ms = Vec::new();
    let mut faulted_ms = Vec::new();
    for _ in 0..15 {
        let t = Instant::now();
        engine.run(&spec).unwrap();
        plain_ms.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        engine.run_with_faults(&spec, &opts, &none).unwrap();
        faulted_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let median = |mut v: Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let (plain, faulted) = (median(plain_ms), median(faulted_ms));
    assert!(
        faulted <= plain * 1.05,
        "none-plan entry regressed the hot path: {faulted:.3} ms vs {plain:.3} ms"
    );
}
