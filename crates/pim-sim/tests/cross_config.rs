//! Cross-configuration invariants: every system configuration, on every
//! zoo model, must produce a well-formed report whose time breakdown is a
//! partition of the makespan — regardless of which code path (engine event
//! core, GPU baseline, Neurocube baseline) produced it. All reports now
//! flow through `pim_runtime::stats::ReportBuilder`, so this pins the
//! shared construction path.

use pim_models::{Model, ModelKind};
use pim_runtime::engine::{EngineConfig, SystemPreset};
use pim_sim::baselines::simulate_neurocube;
use pim_sim::configs::{simulate, SystemConfig};

/// Every engine-driven configuration, including the ablation points.
fn engine_configs() -> Vec<SystemConfig> {
    vec![
        SystemConfig::Cpu,
        SystemConfig::ProgrPim,
        SystemConfig::FixedPim,
        SystemConfig::HeteroPim(EngineConfig::preset(SystemPreset::HeteroBare)),
        SystemConfig::HeteroPim(EngineConfig::preset(SystemPreset::HeteroRc)),
        SystemConfig::hetero_pim(),
    ]
}

#[test]
fn every_config_on_every_model_yields_a_partitioned_report() {
    // Small batches keep the sweep fast; the invariant is batch-independent.
    for kind in ModelKind::ALL {
        let model = Model::build_with_batch(kind, 2).unwrap();
        let mut reports = vec![(
            "Neurocube".to_string(),
            simulate_neurocube(&model, 1).unwrap(),
        )];
        for config in engine_configs() {
            reports.push((
                config.name().to_string(),
                simulate(&model, &config, 1).unwrap(),
            ));
        }
        reports.push((
            "GPU".to_string(),
            simulate(&model, &SystemConfig::Gpu, 1).unwrap(),
        ));
        for (name, r) in reports {
            assert!(r.is_well_formed(), "{kind} / {name}: not well formed");
            let (op, dm, sync) = r.breakdown_fractions();
            assert!(
                ((op + dm + sync) - 1.0).abs() < 1e-9,
                "{kind} / {name}: breakdown sums to {}",
                op + dm + sync
            );
        }
    }
}

#[test]
fn fig8_ordering_pim_configurations_beat_cpu() {
    // Fig. 8: on every model the figure evaluates, each PIM configuration
    // (and the full Hetero system in particular) finishes the step faster
    // than the CPU. The claim is made at the paper's batch sizes over
    // steady-state steps.
    for kind in [
        ModelKind::Vgg19,
        ModelKind::AlexNet,
        ModelKind::Dcgan,
        ModelKind::ResNet50,
        ModelKind::InceptionV3,
    ] {
        let model = Model::build(kind).unwrap();
        let cpu = simulate(&model, &SystemConfig::Cpu, 2).unwrap();
        for config in [SystemConfig::FixedPim, SystemConfig::hetero_pim()] {
            let r = simulate(&model, &config, 2).unwrap();
            assert!(
                r.makespan < cpu.makespan,
                "{kind}: {} ({}s) not faster than CPU ({}s)",
                config.name(),
                r.makespan,
                cpu.makespan
            );
        }
    }
}

#[test]
fn fig10_ordering_hetero_beats_neurocube_by_3x() {
    // Fig. 10 / §VI-C: "at least 3x higher performance and energy
    // efficiency than Neurocube", even on the least compute-intensive
    // model. Evaluated at the paper's batch sizes, where the claim is made.
    for kind in [ModelKind::Dcgan, ModelKind::Vgg19] {
        let model = Model::build(kind).unwrap();
        let nc = simulate_neurocube(&model, 2).unwrap();
        let hetero = simulate(&model, &SystemConfig::hetero_pim(), 2).unwrap();
        assert!(
            nc.makespan / hetero.makespan >= 3.0,
            "{kind}: time ratio {}",
            nc.makespan / hetero.makespan
        );
        assert!(
            nc.dynamic_energy / hetero.dynamic_energy >= 3.0,
            "{kind}: energy ratio {}",
            nc.dynamic_energy / hetero.dynamic_energy
        );
    }
}
