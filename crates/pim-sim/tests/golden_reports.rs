//! Golden snapshot of the full evaluation sweep: every paper model on
//! every system preset, with the report's key quantities pinned to a
//! checked-in table at full f64 round-trip precision.
//!
//! Any engine change that shifts a simulated result — intended or not —
//! shows up here as a readable diff instead of a silent drift. To accept
//! an intended change, regenerate the table:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p pim-sim --test golden_reports
//! ```
//!
//! and review the diff like any other code change.

use pim_models::{Model, ModelKind};
use pim_runtime::engine::{EngineConfig, SystemPreset};
use pim_sim::configs::{simulate, SystemConfig};
use std::fmt::Write as _;

const STEPS: usize = 2;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/sweep_reports.txt"
);

/// Renders the sweep as one line per (model x preset) cell. `{:?}` on f64
/// prints the shortest round-trip representation, so equal strings mean
/// bit-equal results and the table stays stable across regenerations.
fn render_sweep() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "# model | preset | makespan_s | op_s | dm_s | sync_s | energy_j | ff_util"
    )
    .unwrap();
    for kind in ModelKind::ALL {
        let model = Model::build(kind).unwrap();
        for preset in SystemPreset::ALL {
            let config = SystemConfig::HeteroPim(EngineConfig::preset(preset));
            let r = simulate(&model, &config, STEPS).unwrap();
            writeln!(
                out,
                "{} | {} | {:?} | {:?} | {:?} | {:?} | {:?} | {:?}",
                kind.name(),
                preset.name(),
                r.makespan.seconds(),
                r.op_time.seconds(),
                r.data_movement_time.seconds(),
                r.sync_time.seconds(),
                r.dynamic_energy.joules(),
                r.ff_utilization,
            )
            .unwrap();
        }
    }
    out
}

#[test]
fn sweep_reports_match_golden_table() {
    let actual = render_sweep();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).expect("write golden table");
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden table missing — regenerate with UPDATE_GOLDEN=1");
    if expected != actual {
        // Report the first diverging line, not a 43-line wall of text.
        for (n, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            assert_eq!(e, a, "golden mismatch at line {}", n + 1);
        }
        assert_eq!(
            expected.lines().count(),
            actual.lines().count(),
            "golden table length changed"
        );
        unreachable!("strings differ but no line did");
    }
}
