//! ISA differential suite: the interpreted instruction streams must
//! reproduce the analytic model's ground truth on every paper model.
//!
//! Three claims, each falsifiable here:
//!
//! 1. **Exact work conservation** — interpreting the lowered
//!    programmable binary #4 of every op offloads *bit-for-bit* the
//!    multiply/add count that pass 2 extracts from Fig. 4. `u64`
//!    equality, no tolerance.
//! 2. **Timing agreement** — analytic and interpreted makespans agree
//!    within [`pim_sim::isa::MAKESPAN_DELTA_BOUND`] on every
//!    hetero preset (the presets whose ARM placements the backend
//!    re-times).
//! 3. **Determinism** — the `repro isa` table is byte-identical across
//!    repeats and worker-thread counts (`PIM_RUN_THREADS`).

use pim_graph::cost::graph_costs;
use pim_isa::{lower_binary, lower_kernel, validate, Machine};
use pim_models::ModelKind;
use pim_opencl::binary::BinarySet;
use pim_opencl::kir::KernelSource;
use pim_runtime::engine::{Engine, EngineConfig, ProgrBackend, SystemPreset, WorkloadSpec};
use pim_sim::cache;
use pim_sim::isa::{isa_delta_table, MAKESPAN_DELTA_BOUND};

/// The presets whose programmable-PIM placements the ISA backend
/// re-times. CPU-only and Progr-only stay analytic by design.
const HETERO_PRESETS: [SystemPreset; 3] = [
    SystemPreset::Hetero,
    SystemPreset::HeteroBare,
    SystemPreset::HeteroRc,
];

/// Claim 1: on all seven models, every well-formed op's kernel lowers to
/// validator-clean programs whose interpreted tallies equal the Fig. 4
/// extraction exactly — executed mul/adds of the whole kernel match its
/// MulAdd regions, offloaded mul/adds of binary #4 match
/// `BinarySet::extracted_flops`, with the residual staying in-line.
#[test]
fn interpreted_tallies_match_fig4_extraction_on_every_model() {
    let machine = Machine::for_arm(&pim_hw::arm::ProgrammablePim::cortex_a9(
        &pim_mem::stack::StackConfig::hmc2(),
        4,
    ));
    for kind in ModelKind::ALL {
        let model = cache::model(kind).unwrap();
        let costs = graph_costs(model.graph()).unwrap();
        let mut checked = 0usize;
        for (op, cost) in model.graph().ops().iter().zip(&costs) {
            if !cost.is_well_formed() {
                continue;
            }
            let kernel = KernelSource::from_cost(op.kind.tf_name(), cost);
            let subject = format!("{kind:?}/op{} ({})", op.id.index(), kernel.name);

            let whole = lower_kernel(&kernel, cost).unwrap();
            validate(&whole).unwrap_or_else(|v| panic!("{subject}: whole invalid: {v:?}"));
            let ws = machine.run(&whole).unwrap();
            let expected_ma = kernel
                .body
                .iter()
                .map(|r| match r {
                    pim_opencl::kir::Region::MulAdd { muls, adds, .. } => muls + adds,
                    _ => 0.0,
                })
                .sum::<f64>();
            assert_eq!(
                (ws.executed_muls + ws.executed_adds) as f64,
                expected_ma,
                "{subject}: whole-kernel executed mul/add tally"
            );

            let set = BinarySet::generate(kernel).unwrap();
            let progr = lower_binary(&set, cost).unwrap();
            validate(&progr).unwrap_or_else(|v| panic!("{subject}: progr invalid: {v:?}"));
            let ps = machine.run(&progr).unwrap();
            assert_eq!(
                (ps.offloaded_muls + ps.offloaded_adds) as f64,
                set.extracted_flops(),
                "{subject}: offloaded tally vs Fig. 4 extraction"
            );
            assert_eq!(
                (ps.executed_muls + ps.executed_adds) as f64,
                set.progr.mul_add_flops(),
                "{subject}: residual in-line tally"
            );
            checked += 1;
        }
        assert!(checked > 0, "{kind:?}: no well-formed ops checked");
    }
}

/// Claim 1 through the verifier's own pass: `pim-verify --isa` semantics
/// stay clean on all seven models at their paper batch sizes.
#[test]
fn verifier_isa_pass_is_clean_on_every_model() {
    for kind in ModelKind::ALL {
        let diags = pim_verify::verify_model_isa(kind, kind.paper_batch_size()).unwrap();
        assert!(diags.is_clean(), "{kind:?}:\n{}", diags.render_text());
    }
}

/// Claim 2: analytic and interpreted makespans agree within the
/// documented bound on every hetero preset for every model.
#[test]
fn makespan_deltas_within_documented_bound() {
    for kind in ModelKind::ALL {
        let model = cache::model(kind).unwrap();
        let spec = [WorkloadSpec {
            graph: model.graph(),
            steps: 2,
            cpu_progr_only: false,
        }];
        for preset in HETERO_PRESETS {
            let analytic = Engine::new(EngineConfig::preset(preset))
                .run(&spec)
                .unwrap();
            let interpreted =
                Engine::new(EngineConfig::preset(preset).with_progr_backend(ProgrBackend::Isa))
                    .run(&spec)
                    .unwrap();
            let delta = (interpreted.makespan.seconds() - analytic.makespan.seconds()).abs()
                / analytic.makespan.seconds();
            assert!(
                delta <= MAKESPAN_DELTA_BOUND,
                "{kind:?} @ {preset:?}: delta {delta} above bound {MAKESPAN_DELTA_BOUND} \
                 (analytic {}, interpreted {})",
                analytic.makespan,
                interpreted.makespan
            );
        }
    }
}

/// Claim 3: the `repro isa` table is byte-identical across repeats and
/// worker-thread counts. The env var is process-global; the settings run
/// sequentially inside this one test.
#[test]
fn isa_table_deterministic_across_repeats_and_thread_counts() {
    let kinds = [ModelKind::AlexNet, ModelKind::Dcgan];
    let first = isa_delta_table(&kinds, 2).unwrap();
    std::env::set_var("PIM_RUN_THREADS", "1");
    let serial = isa_delta_table(&kinds, 2).unwrap();
    std::env::set_var("PIM_RUN_THREADS", "4");
    let wide = isa_delta_table(&kinds, 2).unwrap();
    std::env::remove_var("PIM_RUN_THREADS");
    assert_eq!(first, serial, "thread pinning changed the table");
    assert_eq!(first, wide, "worker count leaked into the table");
    assert_eq!(
        first,
        isa_delta_table(&kinds, 2).unwrap(),
        "repeat run diverged"
    );
}
