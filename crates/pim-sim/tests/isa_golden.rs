//! Golden snapshot of one lowered ISA program: AlexNet's first forward
//! convolution, lowered both as the whole kernel (binary #1's shape) and
//! as the programmable binary #4 with its `call_fixed` sites, plus the
//! interpreter's execution summary for each. Any change to the lowering
//! rules, the encoding, or the interpreter's accounting shows up as a
//! readable diff instead of silent drift. To accept an intended change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p pim-sim --test isa_golden
//! ```
//!
//! and review the diff like any other code change.

use pim_graph::cost::graph_costs;
use pim_graph::node::OpKind;
use pim_hw::arm::ProgrammablePim;
use pim_isa::{lower_binary, lower_kernel, Machine};
use pim_mem::stack::StackConfig;
use pim_models::ModelKind;
use pim_opencl::binary::BinarySet;
use pim_opencl::kir::KernelSource;
use std::fmt::Write as _;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/alexnet_conv_isa.txt"
);

fn render() -> String {
    let model = pim_sim::cache::model(ModelKind::AlexNet).unwrap();
    let costs = graph_costs(model.graph()).unwrap();
    let (op, cost) = model
        .graph()
        .ops()
        .iter()
        .zip(&costs)
        .find(|(op, cost)| matches!(op.kind, OpKind::Conv2D(_)) && cost.is_well_formed())
        .expect("AlexNet has a forward convolution");
    let kernel = KernelSource::from_cost(op.kind.tf_name(), cost);
    let machine = Machine::for_arm(&ProgrammablePim::cortex_a9(&StackConfig::hmc2(), 4));

    let mut out = String::new();
    writeln!(
        out,
        "# AlexNet op{} ({}) — lowered ISA programs, Cortex-A9 interpreter",
        op.id.index(),
        kernel.name
    )
    .unwrap();
    let whole = lower_kernel(&kernel, cost).unwrap();
    writeln!(out, "\n== whole kernel (binary #1) ==").unwrap();
    write!(out, "{}", whole.disassemble()).unwrap();
    writeln!(out, "summary: {}", machine.run(&whole).unwrap().render()).unwrap();
    writeln!(out, "encoded: {} bytes", whole.encode().len()).unwrap();

    let set = BinarySet::generate(kernel).unwrap();
    let progr = lower_binary(&set, cost).unwrap();
    writeln!(out, "\n== programmable binary #4 ==").unwrap();
    write!(out, "{}", progr.disassemble()).unwrap();
    writeln!(out, "summary: {}", machine.run(&progr).unwrap().render()).unwrap();
    writeln!(out, "encoded: {} bytes", progr.encode().len()).unwrap();
    out
}

#[test]
fn alexnet_conv_lowering_matches_golden_snapshot() {
    let actual = render();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden snapshot missing — regenerate with UPDATE_GOLDEN=1");
    if expected != actual {
        for (n, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            assert_eq!(e, a, "golden mismatch at line {}", n + 1);
        }
        assert_eq!(
            expected.lines().count(),
            actual.lines().count(),
            "golden snapshot length changed"
        );
        unreachable!("strings differ but no line did");
    }
}
