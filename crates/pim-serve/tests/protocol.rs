//! Protocol robustness: hostile, malformed, and over-limit input must
//! produce structured error responses carrying the request id — never a
//! daemon crash — and well-formed traffic must replay byte-identically.
//!
//! These tests run the real daemon core against a synthetic
//! [`JobRunner`], so protocol and admission behavior is pinned without
//! simulating anything.

use pim_common::units::Seconds;
use pim_runtime::stats::ReportBuilder;
use pim_serve::daemon::{
    serve_lines, JobError, JobRunner, MemStore, ResultStore, ServeConfig, StoredResult,
};
use pim_serve::protocol::Request;

/// Models the toy runner accepts; `"explode"` passes validation but
/// fails at execution, and `"panic"` panics outright — both exercise
/// the `execution_failed` path.
const KNOWN: [&str; 5] = ["alex", "dcgan", "lstm", "explode", "panic"];

struct ToyRunner;

impl JobRunner for ToyRunner {
    fn cache_key(&self, req: &Request) -> Result<u64, JobError> {
        for m in &req.models {
            if !KNOWN.contains(&m.as_str()) {
                return Err(JobError::bad_request(format!("unknown model `{m}`")));
            }
        }
        Ok(pim_common::fingerprint::debug_hash(&(
            &req.models,
            &req.preset,
            req.steps,
            req.batch,
            req.tie,
            req.faults.map(|f| (f.seed, f.rate.to_bits())),
            req.partitioned,
            req.cpu_progr_only,
            // Deadlines are part of the cell identity: a deadlined run
            // must never coalesce with an undeadlined one.
            req.deadline_ms,
        )))
    }

    fn execute(&self, req: &Request) -> Result<StoredResult, JobError> {
        if req.models.iter().any(|m| m == "explode") {
            return Err(JobError::execution("synthetic failure"));
        }
        assert!(!req.models.iter().any(|m| m == "panic"), "synthetic panic");
        // The toy makespan is (1 + name-length) * steps "milliseconds";
        // a deadline below it cuts the run off deterministically.
        if let Some(ms) = req.deadline_ms {
            let cost: u64 = req
                .models
                .iter()
                .map(|m| (1 + m.len() as u64) * req.steps as u64)
                .sum();
            if cost > ms {
                return Err(JobError::deadline(format!(
                    "run needs {cost} ms, deadline is {ms} ms"
                )));
            }
        }
        let reports = req
            .models
            .iter()
            .map(|m| {
                ReportBuilder::new(format!("{}/{m}", req.preset), req.steps)
                    .makespan(Seconds::new(1e-3 * (1 + m.len()) as f64 * req.steps as f64))
                    .build()
            })
            .collect();
        Ok(StoredResult {
            reports,
            degraded: None,
        })
    }
}

fn serve(cfg: &ServeConfig, store: &dyn ResultStore, input: &str) -> (Vec<String>, String) {
    let mut out = Vec::new();
    serve_lines(cfg, &ToyRunner, store, input.as_bytes(), &mut out).expect("daemon I/O");
    let text = String::from_utf8(out).expect("utf8 responses");
    (text.lines().map(str::to_string).collect(), text)
}

fn small_cfg() -> ServeConfig {
    ServeConfig {
        capacity: 4,
        tenant_quota: 2,
        workers: 2,
        max_steps: 4,
        ..ServeConfig::default()
    }
}

#[test]
fn malformed_and_truncated_lines_get_structured_errors() {
    let input = "\
{\"id\":\"ok1\",\"model\":\"alex\"}\n\
{\"id\":\"trunc\",\"model\":\"al\n\
not json at all\n\
[\"id\",\"x\"]\n\
{\"id\":\"ok2\",\"model\":\"lstm\"}\n";
    let (lines, _) = serve(&ServeConfig::default(), &MemStore::default(), input);
    assert_eq!(lines.len(), 5);
    assert!(lines[0].contains("\"id\":\"ok1\"") && lines[0].contains("\"status\":\"ok\""));
    for bad in &lines[1..4] {
        assert!(bad.contains("\"status\":\"error\""), "{bad}");
        assert!(bad.contains("\"error\":\"malformed\""), "{bad}");
        assert!(bad.starts_with("{\"id\":null"), "{bad}");
    }
    // The daemon survived the garbage and kept serving.
    assert!(lines[4].contains("\"id\":\"ok2\"") && lines[4].contains("\"status\":\"ok\""));
}

#[test]
fn unknown_fields_and_bad_values_echo_the_id() {
    let input = "\
{\"id\":\"u1\",\"model\":\"alex\",\"prioritty\":3}\n\
{\"id\":\"u2\",\"model\":\"alex\",\"steps\":0}\n\
{\"id\":\"u3\",\"model\":\"nosuch\"}\n\
{\"id\":\"u4\",\"model\":\"alex\",\"steps\":99}\n";
    let (lines, _) = serve(&small_cfg(), &MemStore::default(), input);
    assert!(lines[0].contains("\"id\":\"u1\"") && lines[0].contains("\"error\":\"unknown_field\""));
    assert!(lines[1].contains("\"id\":\"u2\"") && lines[1].contains("\"error\":\"bad_request\""));
    assert!(lines[2].contains("\"id\":\"u3\"") && lines[2].contains("\"error\":\"bad_request\""));
    // Steps beyond the service cap are rejected at admission.
    assert!(lines[3].contains("\"id\":\"u4\"") && lines[3].contains("\"error\":\"bad_request\""));
}

#[test]
fn over_quota_rejects_deterministically_with_the_id() {
    // Quota 2: the tenant's third distinct outstanding job must reject,
    // regardless of worker timing, because slots release only at
    // barriers.
    let input = "\
{\"id\":\"q1\",\"tenant\":\"t0\",\"model\":\"alex\"}\n\
{\"id\":\"q2\",\"tenant\":\"t0\",\"model\":\"lstm\",\"steps\":2}\n\
{\"id\":\"q3\",\"tenant\":\"t0\",\"model\":\"dcgan\"}\n\
{\"id\":\"q4\",\"tenant\":\"t1\",\"model\":\"dcgan\"}\n\
{\"id\":\"s\",\"op\":\"stats\"}\n\
{\"id\":\"q5\",\"tenant\":\"t0\",\"model\":\"dcgan\",\"steps\":2}\n";
    let (lines, _) = serve(&small_cfg(), &MemStore::default(), input);
    assert!(lines[0].contains("\"status\":\"ok\""));
    assert!(lines[1].contains("\"status\":\"ok\""));
    assert!(lines[2].contains("\"id\":\"q3\"") && lines[2].contains("\"error\":\"over_quota\""));
    // Another tenant still has room.
    assert!(lines[3].contains("\"id\":\"q4\"") && lines[3].contains("\"status\":\"ok\""));
    assert!(lines[4].contains("\"rejected\":1"), "{}", lines[4]);
    // The barrier released the slots: the same tenant runs again.
    assert!(lines[5].contains("\"id\":\"q5\"") && lines[5].contains("\"status\":\"ok\""));
}

#[test]
fn over_capacity_rejects_deterministically_with_the_id() {
    // Capacity 4, quota 2: tenants t0+t1 fill the daemon, t2 rejects
    // with over_capacity (capacity outranks quota in the check order).
    let input = "\
{\"id\":\"c1\",\"tenant\":\"t0\",\"model\":\"alex\"}\n\
{\"id\":\"c2\",\"tenant\":\"t0\",\"model\":\"lstm\"}\n\
{\"id\":\"c3\",\"tenant\":\"t1\",\"model\":\"dcgan\"}\n\
{\"id\":\"c4\",\"tenant\":\"t1\",\"model\":\"alex\",\"steps\":2}\n\
{\"id\":\"c5\",\"tenant\":\"t2\",\"model\":\"lstm\",\"steps\":2}\n\
{\"id\":\"s\",\"op\":\"stats\"}\n";
    let (lines, _) = serve(&small_cfg(), &MemStore::default(), input);
    for ok in &lines[0..4] {
        assert!(ok.contains("\"status\":\"ok\""), "{ok}");
    }
    assert!(lines[4].contains("\"id\":\"c5\"") && lines[4].contains("\"error\":\"over_capacity\""));
    assert!(lines[5].contains("\"jobs\":6") && lines[5].contains("\"rejected\":1"));
}

#[test]
fn cache_hits_coalesce_and_bypass_admission_once_done() {
    // Same cell four times from two tenants: one compute (miss), one
    // in-flight waiter (hit, holds a slot), and after the barrier two
    // free hits that bypass admission entirely.
    let input = "\
{\"id\":\"a\",\"tenant\":\"t0\",\"model\":\"alex\"}\n\
{\"id\":\"b\",\"tenant\":\"t1\",\"model\":\"alex\"}\n\
{\"id\":\"s1\",\"op\":\"stats\"}\n\
{\"id\":\"c\",\"tenant\":\"t0\",\"model\":\"alex\"}\n\
{\"id\":\"d\",\"tenant\":\"t1\",\"model\":\"alex\"}\n\
{\"id\":\"s2\",\"op\":\"stats\"}\n";
    let (lines, _) = serve(&small_cfg(), &MemStore::default(), input);
    assert!(lines[0].contains("\"cache\":\"miss\""));
    for hit in [&lines[1], &lines[3], &lines[4]] {
        assert!(hit.contains("\"cache\":\"hit\""), "{hit}");
    }
    // b, c(d? only b and d are cross-tenant: owner is t0): b and d.
    assert!(
        lines[5].contains("\"cache_hits\":3") && lines[5].contains("\"cross_tenant_hits\":2"),
        "{}",
        lines[5]
    );
    assert!(lines[5].contains("\"distinct_cells\":1"));
    // The compute and waiter responses carry identical report bytes.
    let body = |l: &str| l.split("\"reports\":").nth(1).unwrap().to_string();
    assert_eq!(body(&lines[0]), body(&lines[1]));
}

#[test]
fn execution_failures_reach_computer_and_waiters_without_crashing() {
    let input = "\
{\"id\":\"x1\",\"tenant\":\"t0\",\"model\":\"explode\"}\n\
{\"id\":\"x2\",\"tenant\":\"t1\",\"model\":\"explode\"}\n\
{\"id\":\"ok\",\"tenant\":\"t1\",\"model\":\"alex\"}\n\
{\"id\":\"s\",\"op\":\"stats\"}\n";
    let (lines, _) = serve(&small_cfg(), &MemStore::default(), input);
    for failed in &lines[0..2] {
        assert!(
            failed.contains("\"error\":\"execution_failed\""),
            "{failed}"
        );
    }
    assert!(lines[0].contains("\"id\":\"x1\"") && lines[1].contains("\"id\":\"x2\""));
    assert!(lines[2].contains("\"status\":\"ok\""));
    assert!(lines[3].contains("\"errors\":2") && lines[3].contains("\"ok\":1"));
}

#[test]
fn runner_panics_become_responses_and_the_daemon_keeps_serving() {
    // A panic inside execute must not take the worker thread down (a
    // dead worker would wedge the drain barrier forever); it surfaces
    // as an execution_failed response like any other failure.
    let input = "\
{\"id\":\"p1\",\"tenant\":\"t0\",\"model\":\"panic\"}\n\
{\"id\":\"p2\",\"tenant\":\"t1\",\"model\":\"alex\"}\n\
{\"id\":\"s\",\"op\":\"stats\"}\n\
{\"id\":\"p3\",\"tenant\":\"t0\",\"model\":\"lstm\"}\n";
    let (lines, _) = serve(&small_cfg(), &MemStore::default(), input);
    assert!(
        lines[0].contains("\"id\":\"p1\"") && lines[0].contains("\"error\":\"execution_failed\"")
    );
    assert!(lines[0].contains("panicked"), "{}", lines[0]);
    assert!(lines[1].contains("\"status\":\"ok\""));
    assert!(lines[2].contains("\"errors\":1"));
    assert!(lines[3].contains("\"id\":\"p3\"") && lines[3].contains("\"status\":\"ok\""));
}

#[test]
fn replays_are_byte_identical_across_worker_counts() {
    let trace = pim_serve::loadgen::generate(200, 11, 3).join("\n") + "\n";
    let mut streams = Vec::new();
    for workers in [1, 2, 8] {
        let cfg = ServeConfig {
            workers,
            ..ServeConfig::default()
        };
        // Fresh store per replay: both runs start cold.
        let (_, text) = serve(&cfg, &MemStore::default(), &trace);
        streams.push(text);
    }
    assert_eq!(streams[0], streams[1]);
    assert_eq!(streams[1], streams[2]);
    assert!(streams[0].contains("\"cross_tenant_hits\":"));
}

#[test]
fn oversized_lines_error_without_buffering_and_the_connection_survives() {
    let cfg = ServeConfig {
        max_line_bytes: 64,
        ..small_cfg()
    };
    let huge = "x".repeat(500);
    let input = format!(
        "{{\"id\":\"before\",\"model\":\"alex\"}}\n{huge}\n{{\"id\":\"after\",\"model\":\"lstm\"}}\n"
    );
    let (lines, _) = serve(&cfg, &MemStore::default(), &input);
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains("\"id\":\"before\"") && lines[0].contains("\"status\":\"ok\""));
    assert!(lines[1].starts_with("{\"id\":null") && lines[1].contains("\"error\":\"malformed\""));
    assert!(
        lines[1].contains("max-line-bytes cap of 64"),
        "{}",
        lines[1]
    );
    assert!(lines[2].contains("\"id\":\"after\"") && lines[2].contains("\"status\":\"ok\""));
}

#[test]
fn invalid_utf8_lines_error_per_line_and_the_connection_survives() {
    let mut input: Vec<u8> = b"{\"id\":\"before\",\"model\":\"alex\"}\n".to_vec();
    input.extend_from_slice(&[0xff, 0xfe, 0x80, b'{', b'\n']);
    input.extend_from_slice(b"{\"id\":\"after\",\"model\":\"lstm\"}\n");
    let mut out = Vec::new();
    serve_lines(
        &small_cfg(),
        &ToyRunner,
        &MemStore::default(),
        input.as_slice(),
        &mut out,
    )
    .expect("daemon I/O");
    let text = String::from_utf8(out).expect("utf8 responses");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains("\"id\":\"before\"") && lines[0].contains("\"status\":\"ok\""));
    assert!(lines[1].starts_with("{\"id\":null") && lines[1].contains("\"error\":\"malformed\""));
    assert!(lines[1].contains("not valid UTF-8"), "{}", lines[1]);
    assert!(lines[2].contains("\"id\":\"after\"") && lines[2].contains("\"status\":\"ok\""));
}

#[test]
fn deadlines_cut_off_runaways_without_touching_other_tenants() {
    // alex at 4 steps costs (1+4)*4 = 20 toy-ms: a 10ms deadline trips,
    // and the identical cell without a deadline (another tenant, same
    // window) is a separate cell and completes untouched.
    let input = "\
{\"id\":\"runaway\",\"tenant\":\"t0\",\"model\":\"alex\",\"steps\":4,\"deadline_ms\":10}\n\
{\"id\":\"bystander\",\"tenant\":\"t1\",\"model\":\"alex\",\"steps\":4}\n\
{\"id\":\"s\",\"op\":\"stats\"}\n";
    let (lines, _) = serve(&small_cfg(), &MemStore::default(), input);
    assert!(
        lines[0].contains("\"id\":\"runaway\"")
            && lines[0].contains("\"error\":\"deadline_exceeded\""),
        "{}",
        lines[0]
    );
    assert!(
        lines[1].contains("\"id\":\"bystander\"") && lines[1].contains("\"status\":\"ok\""),
        "{}",
        lines[1]
    );
    assert!(lines[2].contains("\"errors\":1") && lines[2].contains("\"ok\":1"));
}

#[test]
fn breakers_open_probe_and_close_as_a_pure_function_of_the_stream() {
    use pim_serve::breaker::BreakerConfig;
    let cfg = ServeConfig {
        breaker: BreakerConfig {
            threshold: 2,
            cooldown: 1,
        },
        ..small_cfg()
    };
    // Two failures (observed at the stats barriers) open t0's breaker;
    // one rejected admission covers the cooldown; the next run is the
    // probe, its success closes the breaker again. t1 never notices.
    let input = "\
{\"id\":\"f1\",\"tenant\":\"t0\",\"model\":\"explode\"}\n\
{\"id\":\"s1\",\"op\":\"stats\"}\n\
{\"id\":\"f2\",\"tenant\":\"t0\",\"model\":\"explode\",\"steps\":2}\n\
{\"id\":\"s2\",\"op\":\"stats\"}\n\
{\"id\":\"rejected\",\"tenant\":\"t0\",\"model\":\"alex\"}\n\
{\"id\":\"other\",\"tenant\":\"t1\",\"model\":\"dcgan\"}\n\
{\"id\":\"probe\",\"tenant\":\"t0\",\"model\":\"lstm\"}\n\
{\"id\":\"s3\",\"op\":\"stats\"}\n\
{\"id\":\"closed\",\"tenant\":\"t0\",\"model\":\"alex\",\"steps\":2}\n";
    let (lines, _) = serve(&cfg, &MemStore::default(), input);
    assert!(lines[0].contains("\"error\":\"execution_failed\""));
    assert!(lines[2].contains("\"error\":\"execution_failed\""));
    assert!(
        lines[4].contains("\"id\":\"rejected\"") && lines[4].contains("\"error\":\"breaker_open\""),
        "{}",
        lines[4]
    );
    assert!(
        lines[5].contains("\"id\":\"other\"") && lines[5].contains("\"status\":\"ok\""),
        "{}",
        lines[5]
    );
    assert!(
        lines[6].contains("\"id\":\"probe\"") && lines[6].contains("\"status\":\"ok\""),
        "{}",
        lines[6]
    );
    assert!(lines[7].contains("\"rejected\":1"), "{}", lines[7]);
    assert!(
        lines[8].contains("\"id\":\"closed\"") && lines[8].contains("\"status\":\"ok\""),
        "{}",
        lines[8]
    );
}

#[test]
fn shutdown_control_line_drains_acks_and_stops_reading() {
    let input = "\
{\"id\":\"a\",\"tenant\":\"t0\",\"model\":\"alex\"}\n\
{\"cmd\":\"shutdown\",\"id\":\"bye\"}\n\
{\"id\":\"never\",\"tenant\":\"t0\",\"model\":\"lstm\"}\n";
    let (lines, _) = serve(&small_cfg(), &MemStore::default(), input);
    assert_eq!(lines.len(), 2, "{lines:?}");
    assert!(lines[0].contains("\"id\":\"a\"") && lines[0].contains("\"status\":\"ok\""));
    assert_eq!(
        lines[1],
        "{\"id\":\"bye\",\"status\":\"ok\",\"shutdown\":true}"
    );

    // Without an id the ack renders a null id.
    let (lines, _) = serve(
        &small_cfg(),
        &MemStore::default(),
        "{\"cmd\":\"shutdown\"}\n",
    );
    assert_eq!(lines, ["{\"id\":null,\"status\":\"ok\",\"shutdown\":true}"]);
}

#[test]
fn warm_store_changes_flags_but_not_reports() {
    let trace = "{\"id\":\"w\",\"tenant\":\"t0\",\"model\":\"alex\"}\n";
    let store = MemStore::default();
    let (cold, _) = serve(&ServeConfig::default(), &store, trace);
    let (warm, _) = serve(&ServeConfig::default(), &store, trace);
    assert!(cold[0].contains("\"cache\":\"miss\""));
    assert!(warm[0].contains("\"cache\":\"hit\""));
    let body = |l: &str| l.split("\"reports\":").nth(1).unwrap().to_string();
    assert_eq!(body(&cold[0]), body(&warm[0]));
}
