//! TCP transport robustness: the socket path must behave exactly like
//! the stdin path — same bytes for the same lines — while surviving
//! concurrent clients, mid-line disconnects, and in-band shutdown.
//!
//! Like `tests/protocol.rs` these run the real daemon core against a
//! synthetic [`JobRunner`] so only transport and session behavior is
//! under test.

use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{Shutdown, TcpListener, TcpStream};

use pim_common::units::Seconds;
use pim_runtime::stats::ReportBuilder;
use pim_serve::daemon::{
    serve_lines, serve_tcp, JobError, JobRunner, MemStore, ServeConfig, ServeControl, StoredResult,
};
use pim_serve::protocol::Request;

const KNOWN: [&str; 3] = ["alex", "dcgan", "lstm"];

struct ToyRunner;

impl JobRunner for ToyRunner {
    fn cache_key(&self, req: &Request) -> Result<u64, JobError> {
        for m in &req.models {
            if !KNOWN.contains(&m.as_str()) {
                return Err(JobError::bad_request(format!("unknown model `{m}`")));
            }
        }
        Ok(pim_common::fingerprint::debug_hash(&(
            &req.models,
            &req.preset,
            req.steps,
            req.batch,
            req.deadline_ms,
        )))
    }

    fn execute(&self, req: &Request) -> Result<StoredResult, JobError> {
        let reports = req
            .models
            .iter()
            .map(|m| {
                ReportBuilder::new(format!("{}/{m}", req.preset), req.steps)
                    .makespan(Seconds::new(1e-3 * (1 + m.len()) as f64 * req.steps as f64))
                    .build()
            })
            .collect();
        Ok(StoredResult {
            reports,
            degraded: None,
        })
    }
}

fn cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    }
}

/// Sends `input`, half-closes the write side so the daemon sees EOF,
/// and reads the full response stream.
fn roundtrip(addr: std::net::SocketAddr, input: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(input.as_bytes()).expect("send");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("recv");
    text
}

#[test]
fn tcp_bytes_match_the_stdin_daemon() {
    let input = "\
{\"id\":\"r0\",\"tenant\":\"a\",\"model\":\"alex\",\"steps\":2}\n\
{\"id\":\"r1\",\"tenant\":\"b\",\"model\":\"dcgan\",\"steps\":1,\"priority\":9}\n\
{\"id\":\"r2\",\"tenant\":\"a\",\"model\":\"alex\",\"steps\":2}\n\
not json\n\
{\"id\":\"s0\",\"op\":\"stats\"}\n\
{\"id\":\"r3\",\"tenant\":\"b\",\"models\":[\"alex\",\"lstm\"],\"steps\":1}\n\
{\"id\":\"s1\",\"op\":\"stats\"}\n";

    let mut stdin_out = Vec::new();
    serve_lines(
        &cfg(),
        &ToyRunner,
        &MemStore::default(),
        input.as_bytes(),
        &mut stdin_out,
    )
    .expect("stdin daemon");

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let store = MemStore::default();
    let tcp_out = std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            serve_tcp(
                &cfg(),
                &ToyRunner,
                &store,
                &listener,
                Some(1),
                &ServeControl::new(),
            )
        });
        let text = roundtrip(addr, input);
        server.join().expect("server thread").expect("serve_tcp");
        text
    });

    assert_eq!(tcp_out.as_bytes(), stdin_out.as_slice());
}

#[test]
fn concurrent_clients_get_their_own_responses_in_submission_order() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let store = MemStore::default();
    let ctl = ServeControl::new();

    const CLIENTS: usize = 4;
    const JOBS: usize = 8;
    let outputs = std::thread::scope(|scope| {
        let server =
            scope.spawn(|| serve_tcp(&cfg(), &ToyRunner, &store, &listener, Some(CLIENTS), &ctl));
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut input = String::new();
                    for j in 0..JOBS {
                        let model = KNOWN[(c + j) % KNOWN.len()];
                        let _ = writeln!(
                            input,
                            "{{\"id\":\"c{c}-j{j}\",\"tenant\":\"t{c}\",\"model\":\"{model}\",\"steps\":{}}}",
                            1 + j % 3,
                        );
                    }
                    let _ = writeln!(input, "{{\"id\":\"c{c}-end\",\"op\":\"stats\"}}");
                    roundtrip(addr, &input)
                })
            })
            .collect();
        let outputs: Vec<String> = clients
            .into_iter()
            .map(|c| c.join().expect("client thread"))
            .collect();
        server.join().expect("server thread").expect("serve_tcp");
        outputs
    });

    for (c, text) in outputs.iter().enumerate() {
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), JOBS + 1, "client {c} got {text}");
        for (j, line) in lines[..JOBS].iter().enumerate() {
            // Each client sees exactly its own ids, in submission order,
            // untangled from the other connections.
            assert!(
                line.starts_with(&format!("{{\"id\":\"c{c}-j{j}\"")),
                "{line}"
            );
            assert!(line.contains("\"status\":\"ok\""), "{line}");
        }
        assert!(lines[JOBS].contains(
            "\"id\":\"c{c}-end\""
                .replace("{c}", &c.to_string())
                .as_str()
        ));
        assert!(lines[JOBS].contains("\"ok\":8"), "{}", lines[JOBS]);
    }
}

#[test]
fn results_are_shared_across_connections() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let store = MemStore::default();
    let ctl = ServeControl::new();
    let line = "{\"id\":\"x\",\"tenant\":\"a\",\"model\":\"lstm\",\"steps\":3}\n";

    let (first, second) = std::thread::scope(|scope| {
        let server =
            scope.spawn(|| serve_tcp(&cfg(), &ToyRunner, &store, &listener, Some(2), &ctl));
        let first = roundtrip(addr, line);
        let second = roundtrip(addr, line);
        server.join().expect("server thread").expect("serve_tcp");
        (first, second)
    });

    assert!(first.contains("\"cache\":\"miss\""), "{first}");
    assert!(second.contains("\"cache\":\"hit\""), "{second}");
}

#[test]
fn mid_line_disconnect_tears_down_only_that_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let store = MemStore::default();
    let ctl = ServeControl::new();

    let survivor = std::thread::scope(|scope| {
        let server =
            scope.spawn(|| serve_tcp(&cfg(), &ToyRunner, &store, &listener, Some(2), &ctl));
        {
            // Complete line, then a connection dropped mid-line: the
            // daemon must absorb the torn tail without crashing and
            // without poisoning shared state.
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(b"{\"id\":\"gone\",\"tenant\":\"a\",\"model\":\"alex\"}\n{\"id\":\"to")
                .expect("send");
        } // dropped here — RST/FIN mid-line
        let survivor = roundtrip(
            addr,
            "{\"id\":\"ok\",\"tenant\":\"b\",\"model\":\"dcgan\",\"steps\":2}\n",
        );
        server.join().expect("server thread").expect("serve_tcp");
        survivor
    });

    assert!(survivor.starts_with("{\"id\":\"ok\""), "{survivor}");
    assert!(survivor.contains("\"status\":\"ok\""), "{survivor}");
}

#[test]
fn half_closed_torn_tail_gets_a_malformed_response() {
    // The half-close variant of a mid-line disconnect keeps the read
    // side open, so the client observes what the daemon made of the
    // unterminated line: a structured malformed error, not silence.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let store = MemStore::default();
    let ctl = ServeControl::new();

    let text = std::thread::scope(|scope| {
        let server =
            scope.spawn(|| serve_tcp(&cfg(), &ToyRunner, &store, &listener, Some(1), &ctl));
        let text = roundtrip(
            addr,
            "{\"id\":\"full\",\"tenant\":\"a\",\"model\":\"alex\"}\n{\"id\":\"torn\",\"mod",
        );
        server.join().expect("server thread").expect("serve_tcp");
        text
    });

    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    assert!(lines[0].starts_with("{\"id\":\"full\"") && lines[0].contains("\"status\":\"ok\""));
    assert!(lines[1].contains("\"error\":\"malformed\""), "{}", lines[1]);
}

#[test]
fn shutdown_line_drains_the_accept_loop() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let store = MemStore::default();
    let ctl = ServeControl::new();

    // No max_conns: only the in-band shutdown can stop the accept loop.
    let text = std::thread::scope(|scope| {
        let server = scope.spawn(|| serve_tcp(&cfg(), &ToyRunner, &store, &listener, None, &ctl));
        let text = roundtrip(
            addr,
            "{\"id\":\"last\",\"tenant\":\"a\",\"model\":\"alex\"}\n{\"id\":\"bye\",\"cmd\":\"shutdown\"}\n",
        );
        server.join().expect("server thread").expect("serve_tcp");
        text
    });

    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    assert!(lines[0].contains("\"id\":\"last\"") && lines[0].contains("\"status\":\"ok\""));
    assert_eq!(
        lines[1],
        "{\"id\":\"bye\",\"status\":\"ok\",\"shutdown\":true}"
    );
    assert!(ctl.is_draining());
}
