//! Multi-tenant simulation daemon over the engine's `RunRequest` API.
//!
//! `pim-serve` turns the `pim-runtime` engine into a long-running
//! service: clients submit sweep/what-if jobs as one JSON object per
//! line (stdin or TCP), an admission-controlled priority queue feeds a
//! sharded worker pool, and a shared content-addressed result store
//! keyed by `RunRequest::fingerprint` guarantees each distinct
//! `(model, config, steps, faults, tie-break)` cell simulates exactly
//! once no matter how many tenants ask for it.
//!
//! The crate is engine-agnostic at its core: [`daemon::JobRunner`] and
//! [`daemon::ResultStore`] abstract the simulation and the store, so
//! the protocol and scheduling machinery test without an engine;
//! `pim-sim::serve` provides the engine-backed runner and wires the
//! `repro serve` CLI on top.
//!
//! * [`protocol`] — the line-oriented JSON grammar, parsing, and
//!   response rendering (DESIGN.md §4.11),
//! * [`queue`] — the priority queue with per-tenant admission ledgers,
//! * [`daemon`] — the connection loop, worker pool, drain barriers, and
//!   the determinism contract,
//! * [`breaker`] — per-tenant circuit breakers counted in protocol
//!   events, not wall clock (DESIGN.md §4.13),
//! * [`journal`] — the crash-safe write-ahead journal and its recovery
//!   path (DESIGN.md §4.13),
//! * [`chaos`] — the seeded chaos/soak harness behind `repro chaos`,
//! * [`loadgen`] — the seeded deterministic load generator behind
//!   `repro serve --load` and the CI smoke.

pub mod breaker;
pub mod chaos;
pub mod daemon;
pub mod journal;
pub mod loadgen;
pub mod protocol;
pub mod queue;

pub use breaker::{Admission, BreakerConfig, BreakerSet, BreakerState};
pub use daemon::{
    serve_lines, serve_session, serve_tcp, DaemonStats, JobError, JobRunner, MemStore, ResultStore,
    ServeConfig, ServeControl, StoredResult,
};
pub use journal::{Journal, Recovered};
pub use protocol::{parse_request, FaultSpec, Op, ParseError, Request, ServiceCounters};
