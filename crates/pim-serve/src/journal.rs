//! The crash-safe write-ahead journal of the daemon.
//!
//! With `--journal PATH` the daemon appends every admitted input line
//! and every emitted response line to an append-only file of
//! length-prefixed, checksummed records:
//!
//! ```text
//! record  = len:u32le  checksum:u32le  payload
//! payload = kind:u8 ('i' input | 'r' response)  bytes of the line
//! ```
//!
//! `len` counts the payload; the checksum is FNV-1a over the payload.
//! Input records hold raw bytes (the reader is byte-oriented, so even a
//! non-UTF-8 line journals and replays faithfully); response records are
//! always the daemon's own UTF-8 renderings.
//!
//! Write ordering gives at-least-once response delivery: inputs are
//! journaled when read (before parsing), responses immediately *before*
//! they are written to the client. On recovery the journaled inputs are
//! replayed through the full daemon state machine and the first
//! `responses.len()` emissions are suppressed as already delivered —
//! byte-identical to the uncrashed stream because the daemon itself is a
//! pure function of the input sequence. A crash between journaling a
//! response and writing it to the client makes that one response count
//! as delivered when it may not have been; that at-most-one-line window
//! is the documented cost of journal-before-write (the alternative,
//! write-before-journal, would *duplicate* the line on replay instead).
//!
//! A torn tail — a partial record from a crash mid-append, or any
//! checksum mismatch — truncates the file back to the last good record
//! boundary with a diagnostic; everything before the tear recovers.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Record kind byte for an admitted input line.
const KIND_INPUT: u8 = b'i';
/// Record kind byte for an emitted response line.
const KIND_RESPONSE: u8 = b'r';

/// FNV-1a over the payload — dependency-free and byte-stable.
fn checksum(payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in payload {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// The append side: one open journal file.
#[derive(Debug)]
pub struct Journal {
    out: BufWriter<File>,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-open failure.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            out: BufWriter::new(file),
        })
    }

    fn append(&mut self, kind: u8, line: &[u8]) -> io::Result<()> {
        let mut payload = Vec::with_capacity(line.len() + 1);
        payload.push(kind);
        payload.extend_from_slice(line);
        let len = u32::try_from(payload.len())
            .map_err(|_| io::Error::other("journal record too long"))?;
        self.out.write_all(&len.to_le_bytes())?;
        self.out.write_all(&checksum(&payload).to_le_bytes())?;
        self.out.write_all(&payload)?;
        // One flush per record: a crash tears at most the record being
        // appended, which recovery truncates.
        self.out.flush()
    }

    /// Journals one admitted input line (raw bytes, newline excluded).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn input(&mut self, line: &[u8]) -> io::Result<()> {
        self.append(KIND_INPUT, line)
    }

    /// Journals one response line about to be written to the client.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn response(&mut self, line: &str) -> io::Result<()> {
        self.append(KIND_RESPONSE, line.as_bytes())
    }
}

/// Everything a journal held at recovery time.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Recovered {
    /// Admitted input lines, in arrival order.
    pub inputs: Vec<Vec<u8>>,
    /// Responses already delivered (journal-before-write: possibly
    /// including one that never reached the client), in emission order.
    pub responses: Vec<String>,
    /// Diagnostic when a torn tail was truncated away, for stderr.
    pub torn: Option<String>,
}

/// Reads a journal back, truncating any torn tail to the last good
/// record boundary. A missing file recovers as empty (cold start).
///
/// # Errors
///
/// Propagates I/O failures other than the file not existing.
pub fn recover(path: &Path) -> io::Result<Recovered> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Recovered::default()),
        Err(e) => return Err(e),
    }

    let mut rec = Recovered::default();
    let mut pos = 0usize;
    let mut good = 0usize;
    let tear = loop {
        if pos == bytes.len() {
            break None;
        }
        if bytes.len() - pos < 8 {
            break Some(format!("torn header at byte {pos}"));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let sum = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len == 0 || bytes.len() - pos - 8 < len {
            break Some(format!("torn payload at byte {pos}"));
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if checksum(payload) != sum {
            break Some(format!("checksum mismatch at byte {pos}"));
        }
        match payload[0] {
            KIND_INPUT => rec.inputs.push(payload[1..].to_vec()),
            KIND_RESPONSE => match std::str::from_utf8(&payload[1..]) {
                Ok(s) => rec.responses.push(s.to_string()),
                Err(_) => break Some(format!("non-UTF-8 response record at byte {pos}")),
            },
            k => break Some(format!("unknown record kind {k} at byte {pos}")),
        }
        pos += 8 + len;
        good = pos;
    };

    if let Some(why) = tear {
        rec.torn = Some(format!(
            "journal {}: {} — truncating {} trailing bytes to the last good record",
            path.display(),
            why,
            bytes.len() - good
        ));
        OpenOptions::new()
            .write(true)
            .open(path)?
            .set_len(u64::try_from(good).expect("journal offsets fit in u64"))?;
    }
    Ok(rec)
}

/// A scratch journal path unique to `(tag, seed)` under the system temp
/// dir — used by the chaos harness and tests; never printed to stdout so
/// output stays machine-independent.
pub fn scratch_path(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pim-journal-{tag}-{seed}-{}.wal",
        std::process::id()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempPath(PathBuf);
    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn temp(tag: &str) -> TempPath {
        let p = scratch_path(tag, 0);
        let _ = std::fs::remove_file(&p);
        TempPath(p)
    }

    #[test]
    fn roundtrips_inputs_and_responses_in_order() {
        let t = temp("roundtrip");
        {
            let mut j = Journal::open(&t.0).unwrap();
            j.input(br#"{"id":"1","model":"alex"}"#).unwrap();
            j.response(r#"{"id":"1","status":"ok"}"#).unwrap();
            j.input(b"\xff\xfe not utf8").unwrap(); // binary-safe
        }
        let rec = recover(&t.0).unwrap();
        assert_eq!(rec.inputs.len(), 2);
        assert_eq!(rec.inputs[0], br#"{"id":"1","model":"alex"}"#);
        assert_eq!(rec.inputs[1], b"\xff\xfe not utf8");
        assert_eq!(rec.responses, vec![r#"{"id":"1","status":"ok"}"#]);
        assert!(rec.torn.is_none());
    }

    #[test]
    fn missing_file_is_a_cold_start() {
        let rec = recover(Path::new("/definitely/not/here.wal")).unwrap();
        assert_eq!(rec, Recovered::default());
    }

    #[test]
    fn torn_tail_truncates_to_the_last_good_record() {
        let t = temp("torn");
        {
            let mut j = Journal::open(&t.0).unwrap();
            j.input(b"first").unwrap();
            j.response("second").unwrap();
        }
        let full = std::fs::metadata(&t.0).unwrap().len();
        // Tear mid-way through the second record.
        OpenOptions::new()
            .write(true)
            .open(&t.0)
            .unwrap()
            .set_len(full - 3)
            .unwrap();
        let rec = recover(&t.0).unwrap();
        assert_eq!(rec.inputs, vec![b"first".to_vec()]);
        assert!(rec.responses.is_empty());
        assert!(rec.torn.as_deref().unwrap().contains("torn payload"));
        // The truncation is durable: a second recovery is clean.
        let again = recover(&t.0).unwrap();
        assert_eq!(again.inputs, rec.inputs);
        assert!(again.torn.is_none());
    }

    #[test]
    fn corrupt_checksum_truncates_with_a_diagnostic() {
        let t = temp("corrupt");
        {
            let mut j = Journal::open(&t.0).unwrap();
            j.input(b"good").unwrap();
            j.input(b"soon-bad").unwrap();
        }
        // Flip a payload byte of the second record.
        let mut bytes = std::fs::read(&t.0).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x55;
        std::fs::write(&t.0, &bytes).unwrap();
        let rec = recover(&t.0).unwrap();
        assert_eq!(rec.inputs, vec![b"good".to_vec()]);
        assert!(rec.torn.as_deref().unwrap().contains("checksum mismatch"));
    }

    #[test]
    fn reopening_appends_after_recovery() {
        let t = temp("reopen");
        {
            let mut j = Journal::open(&t.0).unwrap();
            j.input(b"one").unwrap();
        }
        {
            let mut j = Journal::open(&t.0).unwrap();
            j.input(b"two").unwrap();
        }
        let rec = recover(&t.0).unwrap();
        assert_eq!(rec.inputs, vec![b"one".to_vec(), b"two".to_vec()]);
    }
}
