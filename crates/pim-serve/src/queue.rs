//! Priority work queue with per-tenant admission accounting.
//!
//! [`AdmissionQueue`] is the single-threaded core the daemon wraps in a
//! mutex: a max-heap ordered by `(priority, submission order)` plus the
//! outstanding-job ledgers that make admission decisions. Capacity and
//! quota are counted over *outstanding* jobs — admitted and not yet
//! emitted — not merely queued ones, so the numbers a client observes
//! are a pure function of the request sequence (see the determinism
//! argument in DESIGN.md §4.11): slots are released at drain barriers,
//! never at the whim of worker timing.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Why admission refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The daemon-wide outstanding-job cap is reached.
    OverCapacity,
    /// The tenant's outstanding-job cap is reached.
    OverQuota,
}

struct Entry<T> {
    priority: u8,
    seq: u64,
    job: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first, then earlier submission.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

/// The admission-controlled priority queue.
pub struct AdmissionQueue<T> {
    capacity: usize,
    quota: usize,
    heap: BinaryHeap<Entry<T>>,
    outstanding: usize,
    per_tenant: HashMap<String, usize>,
    seq: u64,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue admitting at most `capacity` outstanding jobs
    /// daemon-wide and `quota` per tenant.
    pub fn new(capacity: usize, quota: usize) -> Self {
        AdmissionQueue {
            capacity,
            quota,
            heap: BinaryHeap::new(),
            outstanding: 0,
            per_tenant: HashMap::new(),
            seq: 0,
        }
    }

    /// Checks admission for `tenant` without enqueuing anything.
    ///
    /// # Errors
    ///
    /// [`RejectReason::OverCapacity`] when the daemon-wide cap is
    /// reached (checked first), [`RejectReason::OverQuota`] when the
    /// tenant's cap is.
    pub fn admit(&mut self, tenant: &str) -> Result<(), RejectReason> {
        if self.outstanding >= self.capacity {
            return Err(RejectReason::OverCapacity);
        }
        let count = self.per_tenant.entry(tenant.to_string()).or_insert(0);
        if *count >= self.quota {
            return Err(RejectReason::OverQuota);
        }
        *count += 1;
        self.outstanding += 1;
        Ok(())
    }

    /// Enqueues an admitted job for the workers. Call [`Self::admit`]
    /// first; jobs that coalesce onto an in-flight cell are admitted
    /// but never pushed.
    pub fn push(&mut self, priority: u8, job: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { priority, seq, job });
    }

    /// Pops the highest-priority job (earliest submission among ties).
    pub fn pop(&mut self) -> Option<T> {
        self.heap.pop().map(|e| e.job)
    }

    /// Releases one outstanding slot for `tenant` — called at drain
    /// barriers when the job's response is emitted.
    pub fn release(&mut self, tenant: &str) {
        self.outstanding = self.outstanding.saturating_sub(1);
        if let Some(count) = self.per_tenant.get_mut(tenant) {
            *count = count.saturating_sub(1);
        }
    }

    /// Jobs admitted and not yet released.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Jobs enqueued and not yet popped.
    pub fn queued(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_priority_then_submission_order() {
        let mut q = AdmissionQueue::new(16, 16);
        for (pri, tag) in [(1, "a"), (9, "b"), (4, "c"), (9, "d"), (0, "e")] {
            q.admit("t").unwrap();
            q.push(pri, tag);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec!["b", "d", "c", "a", "e"]);
    }

    #[test]
    fn capacity_is_daemon_wide_and_quota_per_tenant() {
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(4, 2);
        q.admit("t0").unwrap();
        q.admit("t0").unwrap();
        assert_eq!(q.admit("t0"), Err(RejectReason::OverQuota));
        q.admit("t1").unwrap();
        q.admit("t1").unwrap();
        assert_eq!(q.admit("t2"), Err(RejectReason::OverCapacity));
        assert_eq!(q.outstanding(), 4);
        q.release("t0");
        q.admit("t2").unwrap();
        assert_eq!(q.admit("t0"), Err(RejectReason::OverCapacity));
    }

    #[test]
    fn rejections_hold_no_slots() {
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(2, 1);
        q.admit("t0").unwrap();
        assert_eq!(q.admit("t0"), Err(RejectReason::OverQuota));
        assert_eq!(q.outstanding(), 1);
        q.admit("t1").unwrap();
        assert_eq!(q.admit("t2"), Err(RejectReason::OverCapacity));
        assert_eq!(q.outstanding(), 2);
    }

    #[test]
    fn priority_ties_at_capacity_pop_in_submission_order() {
        // Fill to exactly capacity with one shared priority: the heap
        // must fall back to submission order, and the admission at the
        // boundary must reject the same way every time.
        let mut q = AdmissionQueue::new(4, 4);
        for tag in ["a", "b", "c", "d"] {
            q.admit("t").unwrap();
            q.push(5, tag);
        }
        // Capacity is checked before quota, so at the boundary every
        // tenant — including the one also over quota — sees the same
        // daemon-wide reason.
        assert_eq!(q.admit("t"), Err(RejectReason::OverCapacity));
        assert_eq!(q.admit("u"), Err(RejectReason::OverCapacity));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn popping_does_not_free_slots_only_release_does() {
        // Admission counts outstanding (admitted, un-emitted) jobs:
        // a worker popping a job must not open the gate early — only
        // the drain-barrier release may.
        let mut q = AdmissionQueue::new(2, 2);
        q.admit("t").unwrap();
        q.push(1, "a");
        q.admit("t").unwrap();
        q.push(1, "b");
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.queued(), 0);
        assert_eq!(q.admit("t"), Err(RejectReason::OverCapacity));
        q.release("t");
        q.release("t");
        q.admit("t").unwrap();
        assert_eq!(q.outstanding(), 1);
    }

    #[test]
    fn release_frees_exactly_the_named_tenants_slot() {
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(4, 1);
        q.admit("t0").unwrap();
        q.admit("t1").unwrap();
        q.release("t0");
        // t0's slot came back; t1 is still at quota.
        q.admit("t0").unwrap();
        assert_eq!(q.admit("t1"), Err(RejectReason::OverQuota));
        // Over-releasing saturates the per-tenant counter instead of
        // wrapping, so the tenant's quota stays exactly `quota`.
        q.release("t1");
        q.release("t1");
        q.admit("t1").unwrap();
        assert_eq!(q.admit("t1"), Err(RejectReason::OverQuota));
    }

    #[test]
    fn admission_outcomes_are_independent_of_drain_permutation() {
        // The same admit/reject sequence must come out of any order of
        // barrier releases for the same multiset of released slots —
        // what worker-count permutations amount to at this layer.
        let run = |release_order: &[&str]| {
            let mut q: AdmissionQueue<u32> = AdmissionQueue::new(3, 2);
            let mut decisions = Vec::new();
            for t in ["a", "a", "b"] {
                decisions.push(q.admit(t).is_ok());
            }
            for t in release_order {
                q.release(t);
            }
            for t in ["a", "b", "b", "a"] {
                decisions.push(q.admit(t).is_ok());
            }
            decisions
        };
        let baseline = run(&["a", "a", "b"]);
        assert_eq!(run(&["b", "a", "a"]), baseline);
        assert_eq!(run(&["a", "b", "a"]), baseline);
    }
}
