//! Priority work queue with per-tenant admission accounting.
//!
//! [`AdmissionQueue`] is the single-threaded core the daemon wraps in a
//! mutex: a max-heap ordered by `(priority, submission order)` plus the
//! outstanding-job ledgers that make admission decisions. Capacity and
//! quota are counted over *outstanding* jobs — admitted and not yet
//! emitted — not merely queued ones, so the numbers a client observes
//! are a pure function of the request sequence (see the determinism
//! argument in DESIGN.md §4.11): slots are released at drain barriers,
//! never at the whim of worker timing.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Why admission refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The daemon-wide outstanding-job cap is reached.
    OverCapacity,
    /// The tenant's outstanding-job cap is reached.
    OverQuota,
}

struct Entry<T> {
    priority: u8,
    seq: u64,
    job: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first, then earlier submission.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

/// The admission-controlled priority queue.
pub struct AdmissionQueue<T> {
    capacity: usize,
    quota: usize,
    heap: BinaryHeap<Entry<T>>,
    outstanding: usize,
    per_tenant: HashMap<String, usize>,
    seq: u64,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue admitting at most `capacity` outstanding jobs
    /// daemon-wide and `quota` per tenant.
    pub fn new(capacity: usize, quota: usize) -> Self {
        AdmissionQueue {
            capacity,
            quota,
            heap: BinaryHeap::new(),
            outstanding: 0,
            per_tenant: HashMap::new(),
            seq: 0,
        }
    }

    /// Checks admission for `tenant` without enqueuing anything.
    ///
    /// # Errors
    ///
    /// [`RejectReason::OverCapacity`] when the daemon-wide cap is
    /// reached (checked first), [`RejectReason::OverQuota`] when the
    /// tenant's cap is.
    pub fn admit(&mut self, tenant: &str) -> Result<(), RejectReason> {
        if self.outstanding >= self.capacity {
            return Err(RejectReason::OverCapacity);
        }
        let count = self.per_tenant.entry(tenant.to_string()).or_insert(0);
        if *count >= self.quota {
            return Err(RejectReason::OverQuota);
        }
        *count += 1;
        self.outstanding += 1;
        Ok(())
    }

    /// Enqueues an admitted job for the workers. Call [`Self::admit`]
    /// first; jobs that coalesce onto an in-flight cell are admitted
    /// but never pushed.
    pub fn push(&mut self, priority: u8, job: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { priority, seq, job });
    }

    /// Pops the highest-priority job (earliest submission among ties).
    pub fn pop(&mut self) -> Option<T> {
        self.heap.pop().map(|e| e.job)
    }

    /// Releases one outstanding slot for `tenant` — called at drain
    /// barriers when the job's response is emitted.
    pub fn release(&mut self, tenant: &str) {
        self.outstanding = self.outstanding.saturating_sub(1);
        if let Some(count) = self.per_tenant.get_mut(tenant) {
            *count = count.saturating_sub(1);
        }
    }

    /// Jobs admitted and not yet released.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Jobs enqueued and not yet popped.
    pub fn queued(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_priority_then_submission_order() {
        let mut q = AdmissionQueue::new(16, 16);
        for (pri, tag) in [(1, "a"), (9, "b"), (4, "c"), (9, "d"), (0, "e")] {
            q.admit("t").unwrap();
            q.push(pri, tag);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec!["b", "d", "c", "a", "e"]);
    }

    #[test]
    fn capacity_is_daemon_wide_and_quota_per_tenant() {
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(4, 2);
        q.admit("t0").unwrap();
        q.admit("t0").unwrap();
        assert_eq!(q.admit("t0"), Err(RejectReason::OverQuota));
        q.admit("t1").unwrap();
        q.admit("t1").unwrap();
        assert_eq!(q.admit("t2"), Err(RejectReason::OverCapacity));
        assert_eq!(q.outstanding(), 4);
        q.release("t0");
        q.admit("t2").unwrap();
        assert_eq!(q.admit("t0"), Err(RejectReason::OverCapacity));
    }

    #[test]
    fn rejections_hold_no_slots() {
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(2, 1);
        q.admit("t0").unwrap();
        assert_eq!(q.admit("t0"), Err(RejectReason::OverQuota));
        assert_eq!(q.outstanding(), 1);
        q.admit("t1").unwrap();
        assert_eq!(q.admit("t2"), Err(RejectReason::OverCapacity));
        assert_eq!(q.outstanding(), 2);
    }
}
