//! The daemon core: admission, the sharded worker pool, the shared
//! result store, and deterministic response emission.
//!
//! One [`serve_lines`] call services one connection (stdin or a TCP
//! socket): the calling thread parses and admits request lines while a
//! worker pool drains the priority queue concurrently. Responses are
//! buffered and emitted strictly in submission order at *drain
//! barriers* — a `stats` line or end-of-input — and admission slots are
//! released only there, so every admission decision, cache-hit flag,
//! and response byte is a pure function of the request sequence, no
//! matter how many workers run or how they interleave (the determinism
//! argument is spelled out in DESIGN.md §4.11). Wall-clock queue
//! latencies are collected out-of-band in [`DaemonStats`] and never
//! appear in the response stream.

use crate::protocol::{self, kind, Op, Request, ServiceCounters};
use crate::queue::{AdmissionQueue, RejectReason};
use pim_runtime::ExecutionReport;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Daemon-wide cap on outstanding (admitted, un-emitted) jobs.
    pub capacity: usize,
    /// Per-tenant cap on outstanding jobs.
    pub tenant_quota: usize,
    /// Worker threads; 0 picks `PIM_RUN_THREADS` or the machine's
    /// available parallelism.
    pub workers: usize,
    /// Upper bound on `steps` per request (admission-time sanity cap).
    pub max_steps: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            capacity: 256,
            tenant_quota: 64,
            workers: 0,
            max_steps: 8,
        }
    }
}

impl ServeConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::env::var("PIM_RUN_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
            })
    }
}

/// What a computed cell stores: the reports plus the degraded-preset
/// marker, exactly the result-bearing part of the engine's `RunOutput`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredResult {
    /// One report per workload (partitioned) or a single aggregate.
    pub reports: Vec<ExecutionReport>,
    /// Display name of the preset the run degraded to, if any.
    pub degraded: Option<String>,
}

/// A failed job: the protocol error kind plus a message.
#[derive(Debug, Clone, PartialEq)]
pub struct JobError {
    /// One of the [`kind`] constants (`bad_request` for requests the
    /// runner cannot map onto a simulation, `execution_failed` for
    /// simulation errors).
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl JobError {
    /// A `bad_request` error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        JobError {
            kind: kind::BAD_REQUEST,
            message: message.into(),
        }
    }

    /// An `execution_failed` error.
    pub fn execution(message: impl Into<String>) -> Self {
        JobError {
            kind: kind::EXECUTION_FAILED,
            message: message.into(),
        }
    }
}

/// Maps requests onto simulations. The daemon core is runner-agnostic:
/// `pim-sim` provides the engine-backed implementation, the protocol
/// tests a synthetic one.
pub trait JobRunner: Sync {
    /// The content-addressed identity of the request's cell — for the
    /// engine runner, `RunRequest::fingerprint`. Also the semantic
    /// validation point: unknown models/presets fail here, before
    /// admission.
    ///
    /// # Errors
    ///
    /// A [`JobError`] (normally `bad_request`) when the request does
    /// not name a simulatable cell.
    fn cache_key(&self, req: &Request) -> Result<u64, JobError>;

    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// A [`JobError`] when the simulation fails.
    fn execute(&self, req: &Request) -> Result<StoredResult, JobError>;
}

/// The shared content-addressed result store.
pub trait ResultStore: Sync {
    /// Fetches a completed cell.
    fn get(&self, key: u64) -> Option<Arc<StoredResult>>;
    /// Publishes a completed cell.
    fn put(&self, key: u64, result: Arc<StoredResult>);
}

/// A process-local [`ResultStore`] for tests and standalone daemons.
#[derive(Default)]
pub struct MemStore {
    cells: Mutex<HashMap<u64, Arc<StoredResult>>>,
}

impl ResultStore for MemStore {
    fn get(&self, key: u64) -> Option<Arc<StoredResult>> {
        self.cells.lock().unwrap().get(&key).cloned()
    }
    fn put(&self, key: u64, result: Arc<StoredResult>) {
        self.cells.lock().unwrap().insert(key, result);
    }
}

/// Everything one [`serve_lines`] session measured.
#[derive(Debug, Clone, Default)]
pub struct DaemonStats {
    /// The deterministic service counters (also exposed by `stats`).
    pub counters: ServiceCounters,
    /// Wall-clock admit→dequeue latency of every computed job, in
    /// microseconds, in completion order. Out-of-band only.
    pub queue_latency_us: Vec<u64>,
}

impl DaemonStats {
    /// The `p`-th percentile (0..=100, nearest-rank) of the queue
    /// latencies, in microseconds; 0 when nothing was computed.
    pub fn latency_percentile_us(&self, p: f64) -> u64 {
        if self.queue_latency_us.is_empty() {
            return 0;
        }
        let mut sorted = self.queue_latency_us.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }
}

/// One queued computation.
struct WorkItem {
    window_idx: usize,
    key: u64,
    req: Request,
    admitted_at: Instant,
}

/// A job coalesced onto an in-flight cell, waiting for its result.
struct Waiter {
    window_idx: usize,
    id: String,
    tenant: String,
}

/// Per-cell bookkeeping for coalescing and cross-tenant accounting.
enum Cell {
    InFlight {
        owner_tenant: String,
        waiters: Vec<Waiter>,
    },
    Done {
        owner_tenant: String,
        result: Arc<StoredResult>,
    },
}

enum Slot {
    /// Response text already known (errors, rejections, cache hits).
    Ready(String),
    /// A worker will fill it (computations and their waiters). Carries
    /// the tenant whose admission slot the job holds.
    Waiting,
}

struct CoreState {
    queue: AdmissionQueue<WorkItem>,
    /// Response slots of the current drain window, in submission order,
    /// paired with the tenant holding an admission slot (if any).
    window: Vec<(Slot, Option<String>)>,
    ready: usize,
    shutdown: bool,
    cells: HashMap<u64, Cell>,
    counters: ServiceCounters,
    latencies_us: Vec<u64>,
}

struct Core {
    state: Mutex<CoreState>,
    /// Signals workers: work queued or shutdown.
    work: Condvar,
    /// Signals the drain loop: a response became ready.
    done: Condvar,
}

impl Core {
    fn new(cfg: &ServeConfig) -> Self {
        Core {
            state: Mutex::new(CoreState {
                queue: AdmissionQueue::new(cfg.capacity, cfg.tenant_quota),
                window: Vec::new(),
                ready: 0,
                shutdown: false,
                cells: HashMap::new(),
                counters: ServiceCounters::default(),
                latencies_us: Vec::new(),
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }

    fn worker_loop(&self, runner: &dyn JobRunner, store: &dyn ResultStore) {
        loop {
            let item = {
                let mut state = self.state.lock().unwrap();
                loop {
                    if let Some(item) = state.queue.pop() {
                        break item;
                    }
                    if state.shutdown {
                        return;
                    }
                    state = self.work.wait(state).unwrap();
                }
            };
            let latency_us = u64::try_from(item.admitted_at.elapsed().as_micros()).unwrap_or(0);
            // A panicking runner must not take the worker down — a dead
            // worker leaves Waiting slots unfilled and wedges the drain
            // barrier. Panics become execution_failed responses instead.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                runner.execute(&item.req)
            }))
            .unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "runner panicked".to_string());
                Err(JobError::execution(format!("runner panicked: {msg}")))
            });

            let mut state = self.state.lock().unwrap();
            state.latencies_us.push(latency_us);
            let waiters = match state.cells.get_mut(&item.key) {
                Some(Cell::InFlight { waiters, .. }) => std::mem::take(waiters),
                _ => Vec::new(),
            };
            match outcome {
                Ok(result) => {
                    let result = Arc::new(result);
                    store.put(item.key, result.clone());
                    let owner = item.req.tenant.clone();
                    let ok = protocol::render_ok(
                        &item.req.id,
                        &item.req.tenant,
                        false,
                        &result.reports,
                        result.degraded.as_deref(),
                    );
                    fill(&mut state, item.window_idx, ok);
                    state.counters.ok += 1;
                    for w in &waiters {
                        let resp = protocol::render_ok(
                            &w.id,
                            &w.tenant,
                            true,
                            &result.reports,
                            result.degraded.as_deref(),
                        );
                        fill(&mut state, w.window_idx, resp);
                        state.counters.ok += 1;
                    }
                    state.cells.insert(
                        item.key,
                        Cell::Done {
                            owner_tenant: owner,
                            result,
                        },
                    );
                }
                Err(e) => {
                    let resp = protocol::render_error(Some(&item.req.id), e.kind, &e.message);
                    fill(&mut state, item.window_idx, resp);
                    state.counters.errors += 1;
                    for w in &waiters {
                        let resp = protocol::render_error(Some(&w.id), e.kind, &e.message);
                        fill(&mut state, w.window_idx, resp);
                        state.counters.errors += 1;
                    }
                    // Failed cells are forgotten: a later submission
                    // recomputes instead of replaying the failure.
                    state.cells.remove(&item.key);
                }
            }
            self.done.notify_all();
        }
    }
}

/// Marks a waiting window slot ready.
fn fill(state: &mut CoreState, window_idx: usize, response: String) {
    debug_assert!(matches!(state.window[window_idx].0, Slot::Waiting));
    state.window[window_idx].0 = Slot::Ready(response);
    state.ready += 1;
}

/// Serves one connection: reads request lines from `input` until EOF,
/// writes response lines to `output`, returns the session stats.
///
/// Response order is submission order; responses are flushed at drain
/// barriers (`stats` lines and end-of-input). See the module docs for
/// the determinism contract.
///
/// # Errors
///
/// Propagates I/O errors on the transport. Protocol and simulation
/// problems never error — they become in-stream error responses.
pub fn serve_lines(
    cfg: &ServeConfig,
    runner: &dyn JobRunner,
    store: &dyn ResultStore,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<DaemonStats> {
    let core = Core::new(cfg);
    let workers = cfg.resolved_workers().max(1);
    let mut io_result = Ok(());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| core.worker_loop(runner, store));
        }
        io_result = read_loop(cfg, &core, runner, store, input, &mut output);
        let mut state = core.state.lock().unwrap();
        state.shutdown = true;
        drop(state);
        core.work.notify_all();
    });
    io_result?;

    let state = core.state.into_inner().unwrap();
    Ok(DaemonStats {
        counters: state.counters,
        queue_latency_us: state.latencies_us,
    })
}

/// The reader/emitter half of [`serve_lines`], run on the calling
/// thread.
fn read_loop(
    cfg: &ServeConfig,
    core: &Core,
    runner: &dyn JobRunner,
    store: &dyn ResultStore,
    input: impl BufRead,
    output: &mut impl Write,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut state = core.state.lock().unwrap();
        state.counters.jobs += 1;
        let req = match protocol::parse_request(&line) {
            Err(e) => {
                state.counters.errors += 1;
                let resp = protocol::render_error(e.id.as_deref(), e.kind, &e.message);
                state.window.push((Slot::Ready(resp), None));
                state.ready += 1;
                continue;
            }
            Ok(req) => req,
        };

        if req.op == Op::Stats {
            // Barrier: drain every buffered response, then answer.
            // `ok` counts run successes only; a stats line shows up just
            // in `jobs`.
            let state = drain(core, state, output)?;
            let resp = protocol::render_stats(&req.id, &state.counters);
            drop(state);
            writeln!(output, "{resp}")?;
            output.flush()?;
            continue;
        }

        if req.steps > cfg.max_steps {
            state.counters.errors += 1;
            let resp = protocol::render_error(
                Some(&req.id),
                kind::BAD_REQUEST,
                &format!("`steps` exceeds the service cap of {}", cfg.max_steps),
            );
            state.window.push((Slot::Ready(resp), None));
            state.ready += 1;
            continue;
        }

        let key = match runner.cache_key(&req) {
            Err(e) => {
                state.counters.errors += 1;
                let resp = protocol::render_error(Some(&req.id), e.kind, &e.message);
                state.window.push((Slot::Ready(resp), None));
                state.ready += 1;
                continue;
            }
            Ok(key) => key,
        };

        // Completed cell (this session, or a warm shared store): answer
        // immediately, no admission slot consumed.
        let done = match state.cells.get(&key) {
            Some(Cell::Done {
                owner_tenant,
                result,
            }) => Some((Some(owner_tenant.clone()), result.clone())),
            Some(Cell::InFlight { .. }) => None,
            None => store.get(key).map(|result| (None, result)),
        };
        if let Some((owner, result)) = done {
            state.counters.cache_hits += 1;
            if owner.as_deref().is_some_and(|o| o != req.tenant) {
                state.counters.cross_tenant_hits += 1;
            }
            state.counters.ok += 1;
            let resp = protocol::render_ok(
                &req.id,
                &req.tenant,
                true,
                &result.reports,
                result.degraded.as_deref(),
            );
            state.window.push((Slot::Ready(resp), None));
            state.ready += 1;
            continue;
        }

        // Admission: computations and in-flight waiters both hold a
        // slot until the next barrier.
        if let Err(reason) = state.queue.admit(&req.tenant) {
            let (kind, msg) = match reason {
                RejectReason::OverCapacity => (
                    kind::OVER_CAPACITY,
                    format!(
                        "daemon capacity of {} outstanding jobs reached",
                        cfg.capacity
                    ),
                ),
                RejectReason::OverQuota => (
                    kind::OVER_QUOTA,
                    format!(
                        "tenant quota of {} outstanding jobs reached",
                        cfg.tenant_quota
                    ),
                ),
            };
            state.counters.errors += 1;
            state.counters.rejected += 1;
            let resp = protocol::render_error(Some(&req.id), kind, &msg);
            state.window.push((Slot::Ready(resp), None));
            state.ready += 1;
            continue;
        }

        let window_idx = state.window.len();
        let tenant = req.tenant.clone();
        match state.cells.get_mut(&key) {
            Some(Cell::InFlight {
                owner_tenant,
                waiters,
            }) => {
                // Coalesce: exactly one computation per cell, every
                // concurrent duplicate becomes a waiter.
                let cross = *owner_tenant != req.tenant;
                waiters.push(Waiter {
                    window_idx,
                    id: req.id.clone(),
                    tenant: req.tenant.clone(),
                });
                state.counters.cache_hits += 1;
                if cross {
                    state.counters.cross_tenant_hits += 1;
                }
                state.window.push((Slot::Waiting, Some(tenant)));
            }
            _ => {
                state.counters.distinct_cells += 1;
                state.cells.insert(
                    key,
                    Cell::InFlight {
                        owner_tenant: req.tenant.clone(),
                        waiters: Vec::new(),
                    },
                );
                state.window.push((Slot::Waiting, Some(tenant)));
                let priority = req.priority;
                state.queue.push(
                    priority,
                    WorkItem {
                        window_idx,
                        key,
                        req,
                        admitted_at: Instant::now(),
                    },
                );
                core.work.notify_one();
            }
        }
    }

    // End of input: final drain.
    let state = core.state.lock().unwrap();
    drop(drain(core, state, output)?);
    Ok(())
}

/// Waits for every window slot to become ready, emits all responses in
/// submission order, and releases the admission slots.
fn drain<'a>(
    core: &'a Core,
    mut state: std::sync::MutexGuard<'a, CoreState>,
    output: &mut impl Write,
) -> std::io::Result<std::sync::MutexGuard<'a, CoreState>> {
    while state.ready < state.window.len() {
        state = core.done.wait(state).unwrap();
    }
    let window = std::mem::take(&mut state.window);
    state.ready = 0;
    for (slot, tenant_slot) in window {
        if let Some(tenant) = tenant_slot {
            state.queue.release(&tenant);
        }
        match slot {
            Slot::Ready(resp) => writeln!(output, "{resp}")?,
            Slot::Waiting => unreachable!("drain woke with unready slots"),
        }
    }
    output.flush()?;
    Ok(state)
}

/// Serves TCP connections on `listener`, each through [`serve_lines`]
/// with the shared runner and store (cross-connection sharing flows
/// through the store). Handles at most `max_conns` connections when
/// given, forever otherwise.
///
/// # Errors
///
/// Propagates accept errors; per-connection I/O errors only tear down
/// that connection.
pub fn serve_tcp(
    cfg: &ServeConfig,
    runner: &(dyn JobRunner + Sync),
    store: &(dyn ResultStore + Sync),
    listener: &std::net::TcpListener,
    max_conns: Option<usize>,
) -> std::io::Result<()> {
    let mut served = 0usize;
    std::thread::scope(|scope| {
        for conn in listener.incoming() {
            let stream = conn?;
            scope.spawn(move || {
                let reader = std::io::BufReader::new(&stream);
                let _ = serve_lines(cfg, runner, store, reader, &stream);
            });
            served += 1;
            if max_conns.is_some_and(|m| served >= m) {
                break;
            }
        }
        Ok(())
    })
}
