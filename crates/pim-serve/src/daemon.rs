//! The daemon core: admission, the sharded worker pool, the shared
//! result store, and deterministic response emission.
//!
//! One [`serve_lines`] call services one connection (stdin or a TCP
//! socket): the calling thread parses and admits request lines while a
//! worker pool drains the priority queue concurrently. Responses are
//! buffered and emitted strictly in submission order at *drain
//! barriers* — a `stats` line or end-of-input — and admission slots are
//! released only there, so every admission decision, cache-hit flag,
//! and response byte is a pure function of the request sequence, no
//! matter how many workers run or how they interleave (the determinism
//! argument is spelled out in DESIGN.md §4.11). Wall-clock queue
//! latencies are collected out-of-band in [`DaemonStats`] and never
//! appear in the response stream.

use crate::breaker::{Admission, BreakerConfig, BreakerSet};
use crate::journal::{self, Journal};
use crate::protocol::{self, kind, Op, Request, ServiceCounters};
use crate::queue::{AdmissionQueue, RejectReason};
use pim_runtime::ExecutionReport;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Daemon-wide cap on outstanding (admitted, un-emitted) jobs.
    pub capacity: usize,
    /// Per-tenant cap on outstanding jobs.
    pub tenant_quota: usize,
    /// Worker threads; 0 picks `PIM_RUN_THREADS` or the machine's
    /// available parallelism.
    pub workers: usize,
    /// Upper bound on `steps` per request (admission-time sanity cap).
    pub max_steps: usize,
    /// Cap on buffered bytes per input line; a longer line is discarded
    /// to its newline and answered with a structured `malformed` error
    /// instead of buffering unbounded memory.
    pub max_line_bytes: usize,
    /// Per-tenant circuit-breaker tuning ([`BreakerConfig::disabled`] to
    /// switch breakers off).
    pub breaker: BreakerConfig,
    /// Write-ahead journal path for crash-safe recovery (stdin sessions
    /// only; [`serve_tcp`] clears it because concurrent connections
    /// cannot share one append stream). `None` — the default — journals
    /// nothing and recovers nothing.
    pub journal: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            capacity: 256,
            tenant_quota: 64,
            workers: 0,
            max_steps: 8,
            max_line_bytes: 1 << 20,
            breaker: BreakerConfig::default(),
            journal: None,
        }
    }
}

impl ServeConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::env::var("PIM_RUN_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
            })
    }
}

/// What a computed cell stores: the reports plus the degraded-preset
/// marker, exactly the result-bearing part of the engine's `RunOutput`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredResult {
    /// One report per workload (partitioned) or a single aggregate.
    pub reports: Vec<ExecutionReport>,
    /// Display name of the preset the run degraded to, if any.
    pub degraded: Option<String>,
}

/// A failed job: the protocol error kind plus a message.
#[derive(Debug, Clone, PartialEq)]
pub struct JobError {
    /// One of the [`kind`] constants (`bad_request` for requests the
    /// runner cannot map onto a simulation, `execution_failed` for
    /// simulation errors).
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl JobError {
    /// A `bad_request` error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        JobError {
            kind: kind::BAD_REQUEST,
            message: message.into(),
        }
    }

    /// An `execution_failed` error.
    pub fn execution(message: impl Into<String>) -> Self {
        JobError {
            kind: kind::EXECUTION_FAILED,
            message: message.into(),
        }
    }

    /// A `deadline_exceeded` error — the runner cut the simulation off
    /// at the request's `deadline_ms` budget.
    pub fn deadline(message: impl Into<String>) -> Self {
        JobError {
            kind: kind::DEADLINE_EXCEEDED,
            message: message.into(),
        }
    }
}

/// Maps requests onto simulations. The daemon core is runner-agnostic:
/// `pim-sim` provides the engine-backed implementation, the protocol
/// tests a synthetic one.
pub trait JobRunner: Sync {
    /// The content-addressed identity of the request's cell — for the
    /// engine runner, `RunRequest::fingerprint`. Also the semantic
    /// validation point: unknown models/presets fail here, before
    /// admission.
    ///
    /// # Errors
    ///
    /// A [`JobError`] (normally `bad_request`) when the request does
    /// not name a simulatable cell.
    fn cache_key(&self, req: &Request) -> Result<u64, JobError>;

    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// A [`JobError`] when the simulation fails.
    fn execute(&self, req: &Request) -> Result<StoredResult, JobError>;
}

/// The shared content-addressed result store.
pub trait ResultStore: Sync {
    /// Fetches a completed cell.
    fn get(&self, key: u64) -> Option<Arc<StoredResult>>;
    /// Publishes a completed cell.
    fn put(&self, key: u64, result: Arc<StoredResult>);
}

/// A process-local [`ResultStore`] for tests and standalone daemons.
#[derive(Default)]
pub struct MemStore {
    cells: Mutex<HashMap<u64, Arc<StoredResult>>>,
}

impl ResultStore for MemStore {
    fn get(&self, key: u64) -> Option<Arc<StoredResult>> {
        self.cells.lock().unwrap().get(&key).cloned()
    }
    fn put(&self, key: u64, result: Arc<StoredResult>) {
        self.cells.lock().unwrap().insert(key, result);
    }
}

/// Everything one [`serve_lines`] session measured.
#[derive(Debug, Clone, Default)]
pub struct DaemonStats {
    /// The deterministic service counters (also exposed by `stats`).
    pub counters: ServiceCounters,
    /// Wall-clock admit→dequeue latency of every computed job, in
    /// microseconds, in completion order. Out-of-band only.
    pub queue_latency_us: Vec<u64>,
}

impl DaemonStats {
    /// The `p`-th percentile (0..=100, nearest-rank) of the queue
    /// latencies, in microseconds; 0 when nothing was computed.
    pub fn latency_percentile_us(&self, p: f64) -> u64 {
        if self.queue_latency_us.is_empty() {
            return 0;
        }
        let mut sorted = self.queue_latency_us.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }
}

/// One queued computation.
struct WorkItem {
    window_idx: usize,
    key: u64,
    req: Request,
    admitted_at: Instant,
}

/// A job coalesced onto an in-flight cell, waiting for its result.
struct Waiter {
    window_idx: usize,
    id: String,
    tenant: String,
}

/// Per-cell bookkeeping for coalescing and cross-tenant accounting.
enum Cell {
    InFlight {
        owner_tenant: String,
        waiters: Vec<Waiter>,
    },
    Done {
        owner_tenant: String,
        result: Arc<StoredResult>,
    },
}

enum Slot {
    /// Response text already known (errors, rejections, cache hits).
    Ready(String),
    /// A worker will fill it (computations and their waiters).
    Waiting,
}

/// One response slot of the current drain window.
struct WindowSlot {
    slot: Slot,
    /// Tenant holding an admission slot until the next barrier, if any.
    tenant: Option<String>,
    /// Whether this run is its tenant's half-open breaker probe.
    probe: bool,
    /// Breaker-relevant terminal outcome: `Some(true)` success,
    /// `Some(false)` strike-worthy failure, `None` neutral.
    verdict: Option<bool>,
}

struct CoreState {
    queue: AdmissionQueue<WorkItem>,
    /// Response slots of the current drain window, in submission order.
    window: Vec<WindowSlot>,
    ready: usize,
    shutdown: bool,
    cells: HashMap<u64, Cell>,
    breakers: BreakerSet,
    counters: ServiceCounters,
    latencies_us: Vec<u64>,
}

impl CoreState {
    /// Pushes a slot whose response is already known (errors,
    /// rejections, cache hits) — it holds no admission slot.
    fn push_ready(&mut self, response: String) {
        self.window.push(WindowSlot {
            slot: Slot::Ready(response),
            tenant: None,
            probe: false,
            verdict: None,
        });
        self.ready += 1;
    }
}

struct Core {
    state: Mutex<CoreState>,
    /// Signals workers: work queued or shutdown.
    work: Condvar,
    /// Signals the drain loop: a response became ready.
    done: Condvar,
}

impl Core {
    fn new(cfg: &ServeConfig) -> Self {
        Core {
            state: Mutex::new(CoreState {
                queue: AdmissionQueue::new(cfg.capacity, cfg.tenant_quota),
                window: Vec::new(),
                ready: 0,
                shutdown: false,
                cells: HashMap::new(),
                breakers: BreakerSet::new(cfg.breaker),
                counters: ServiceCounters::default(),
                latencies_us: Vec::new(),
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }

    fn worker_loop(&self, runner: &dyn JobRunner, store: &dyn ResultStore) {
        loop {
            let item = {
                let mut state = self.state.lock().unwrap();
                loop {
                    if let Some(item) = state.queue.pop() {
                        break item;
                    }
                    if state.shutdown {
                        return;
                    }
                    state = self.work.wait(state).unwrap();
                }
            };
            let latency_us = u64::try_from(item.admitted_at.elapsed().as_micros()).unwrap_or(0);
            // A panicking runner must not take the worker down — a dead
            // worker leaves Waiting slots unfilled and wedges the drain
            // barrier. Panics become execution_failed responses instead.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                runner.execute(&item.req)
            }))
            .unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "runner panicked".to_string());
                Err(JobError::execution(format!("runner panicked: {msg}")))
            });

            let mut state = self.state.lock().unwrap();
            state.latencies_us.push(latency_us);
            let waiters = match state.cells.get_mut(&item.key) {
                Some(Cell::InFlight { waiters, .. }) => std::mem::take(waiters),
                _ => Vec::new(),
            };
            match outcome {
                Ok(result) => {
                    let result = Arc::new(result);
                    store.put(item.key, result.clone());
                    let owner = item.req.tenant.clone();
                    let ok = protocol::render_ok(
                        &item.req.id,
                        &item.req.tenant,
                        false,
                        &result.reports,
                        result.degraded.as_deref(),
                    );
                    fill(&mut state, item.window_idx, ok, Some(true));
                    state.counters.ok += 1;
                    for w in &waiters {
                        let resp = protocol::render_ok(
                            &w.id,
                            &w.tenant,
                            true,
                            &result.reports,
                            result.degraded.as_deref(),
                        );
                        // Waiter verdicts are neutral: whether a duplicate
                        // coalesces (waiter) or lands on a completed cell
                        // (plain cache hit) depends on worker timing, and
                        // only the former would be observed — so neither
                        // may touch the breaker.
                        fill(&mut state, w.window_idx, resp, None);
                        state.counters.ok += 1;
                    }
                    state.cells.insert(
                        item.key,
                        Cell::Done {
                            owner_tenant: owner,
                            result,
                        },
                    );
                }
                Err(e) => {
                    // Only terminal service failures strike the breaker;
                    // a bad_request is the client's fault, not the cell's.
                    let verdict = (e.kind == kind::EXECUTION_FAILED
                        || e.kind == kind::DEADLINE_EXCEEDED)
                        .then_some(false);
                    let resp = protocol::render_error(Some(&item.req.id), e.kind, &e.message);
                    fill(&mut state, item.window_idx, resp, verdict);
                    state.counters.errors += 1;
                    for w in &waiters {
                        let resp = protocol::render_error(Some(&w.id), e.kind, &e.message);
                        fill(&mut state, w.window_idx, resp, None);
                        state.counters.errors += 1;
                    }
                    // Failed cells are forgotten: a later submission
                    // recomputes instead of replaying the failure.
                    state.cells.remove(&item.key);
                }
            }
            self.done.notify_all();
        }
    }
}

/// Marks a waiting window slot ready, recording its breaker verdict.
fn fill(state: &mut CoreState, window_idx: usize, response: String, verdict: Option<bool>) {
    debug_assert!(matches!(state.window[window_idx].slot, Slot::Waiting));
    state.window[window_idx].slot = Slot::Ready(response);
    state.window[window_idx].verdict = verdict;
    state.ready += 1;
}

/// One classified line from the capped byte reader.
enum RawLine {
    /// A complete UTF-8 line (trailing `\n` / `\r\n` stripped).
    Line(String),
    /// Bytes up to the newline that are not valid UTF-8.
    NotUtf8(Vec<u8>),
    /// A line longer than the cap; its bytes were discarded up to the
    /// newline instead of being buffered.
    TooLong,
}

/// Reads one line from `input` without ever buffering more than `max`
/// bytes — the replacement for `BufRead::lines` that makes oversized and
/// non-UTF-8 lines survivable per-line protocol errors instead of an
/// unbounded allocation or a dead connection. Returns `None` at EOF.
fn read_raw_line(input: &mut impl BufRead, max: usize) -> std::io::Result<Option<RawLine>> {
    enum Step {
        Eof,
        Newline(usize),
        Partial(usize),
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut over = false;
    loop {
        let step = {
            let chunk = input.fill_buf()?;
            if chunk.is_empty() {
                Step::Eof
            } else if let Some(i) = chunk.iter().position(|&b| b == b'\n') {
                if !over {
                    if buf.len() + i > max {
                        over = true;
                        buf.clear();
                    } else {
                        buf.extend_from_slice(&chunk[..i]);
                    }
                }
                Step::Newline(i)
            } else {
                let n = chunk.len();
                if !over {
                    if buf.len() + n > max {
                        over = true;
                        buf.clear();
                    } else {
                        buf.extend_from_slice(chunk);
                    }
                }
                Step::Partial(n)
            }
        };
        match step {
            Step::Eof => {
                if over {
                    return Ok(Some(RawLine::TooLong));
                }
                if buf.is_empty() {
                    return Ok(None);
                }
                break;
            }
            Step::Newline(i) => {
                input.consume(i + 1);
                if over {
                    return Ok(Some(RawLine::TooLong));
                }
                break;
            }
            Step::Partial(n) => input.consume(n),
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(Some(RawLine::Line(s))),
        Err(e) => Ok(Some(RawLine::NotUtf8(e.into_bytes()))),
    }
}

/// Journal-input payload tags: a literal line vs. an oversized-line
/// marker (an oversized line's bytes are discarded at read time, but its
/// deterministic `malformed` response must still replay on recovery).
const REPLAY_LITERAL: u8 = b'l';
const REPLAY_OVERSIZE: u8 = b'o';

fn encode_replay(raw: &RawLine) -> Vec<u8> {
    let mut payload = vec![match raw {
        RawLine::Line(_) | RawLine::NotUtf8(_) => REPLAY_LITERAL,
        RawLine::TooLong => REPLAY_OVERSIZE,
    }];
    match raw {
        RawLine::Line(s) => payload.extend_from_slice(s.as_bytes()),
        RawLine::NotUtf8(b) => payload.extend_from_slice(b),
        RawLine::TooLong => {}
    }
    payload
}

fn decode_replay(payload: &[u8]) -> RawLine {
    match payload.split_first() {
        Some((&REPLAY_LITERAL, rest)) => match std::str::from_utf8(rest) {
            Ok(s) => RawLine::Line(s.to_string()),
            Err(_) => RawLine::NotUtf8(rest.to_vec()),
        },
        Some((&REPLAY_OVERSIZE, _)) => RawLine::TooLong,
        // A foreign or empty payload replays as malformed rather than
        // guessing at a request.
        _ => RawLine::NotUtf8(payload.to_vec()),
    }
}

/// The response sink every emission flows through: recovery suppression
/// first, then the journal (journal-before-write), then the client.
struct Emit<'a, W: Write> {
    out: &'a mut W,
    journal: Option<&'a mut Journal>,
    /// Responses still to suppress during recovery replay — already
    /// journaled and (at-least-once) already delivered.
    suppress: usize,
}

impl<W: Write> Emit<'_, W> {
    fn line(&mut self, resp: &str) -> std::io::Result<()> {
        if self.suppress > 0 {
            self.suppress -= 1;
            return Ok(());
        }
        if let Some(j) = self.journal.as_deref_mut() {
            j.response(resp)?;
        }
        writeln!(self.out, "{resp}")
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// Cross-connection drain coordination. Once a drain is requested —
/// by a `{"cmd":"shutdown"}` control line on any connection — no
/// connection admits new runs (they are rejected with `shutting_down`)
/// and the TCP accept loop stops accepting.
#[derive(Debug, Default)]
pub struct ServeControl {
    draining: AtomicBool,
}

impl ServeControl {
    /// A fresh, non-draining control block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a graceful drain (idempotent).
    pub fn drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }
}

/// Serves one connection: reads request lines from `input` until EOF,
/// writes response lines to `output`, returns the session stats.
///
/// Response order is submission order; responses are flushed at drain
/// barriers (`stats` lines, `{"cmd":"shutdown"}`, and end-of-input).
/// See the module docs for the determinism contract.
///
/// # Errors
///
/// Propagates I/O errors on the transport. Protocol and simulation
/// problems never error — they become in-stream error responses.
pub fn serve_lines(
    cfg: &ServeConfig,
    runner: &dyn JobRunner,
    store: &dyn ResultStore,
    input: impl BufRead,
    output: impl Write,
) -> std::io::Result<DaemonStats> {
    serve_session(cfg, runner, store, input, output, &ServeControl::new())
}

/// [`serve_lines`] with an explicit [`ServeControl`] so several
/// connections (or an accept loop) can coordinate a graceful drain.
/// When `cfg.journal` is set, first recovers the journal: its inputs are
/// replayed through the full daemon state machine ahead of `input` and
/// the already-journaled responses are suppressed, so the stream picks
/// up byte-exactly where the crashed session stopped delivering.
///
/// # Errors
///
/// Propagates I/O errors on the transport or the journal.
pub fn serve_session(
    cfg: &ServeConfig,
    runner: &dyn JobRunner,
    store: &dyn ResultStore,
    input: impl BufRead,
    mut output: impl Write,
    ctl: &ServeControl,
) -> std::io::Result<DaemonStats> {
    let mut replay = Vec::new();
    let mut journal = None;
    let mut suppress = 0usize;
    if let Some(path) = &cfg.journal {
        let recovered = journal::recover(path)?;
        if let Some(torn) = &recovered.torn {
            eprintln!("{torn}");
        }
        replay = recovered.inputs;
        suppress = recovered.responses.len();
        journal = Some(Journal::open(path)?);
    }

    let core = Core::new(cfg);
    let workers = cfg.resolved_workers().max(1);
    let mut io_result = Ok(());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| core.worker_loop(runner, store));
        }
        let mut emit = Emit {
            out: &mut output,
            journal: journal.as_mut(),
            suppress,
        };
        io_result = read_loop(cfg, &core, runner, store, replay, input, &mut emit, ctl);
        let mut state = core.state.lock().unwrap();
        state.shutdown = true;
        drop(state);
        core.work.notify_all();
    });
    io_result?;

    let state = core.state.into_inner().unwrap();
    Ok(DaemonStats {
        counters: state.counters,
        queue_latency_us: state.latencies_us,
    })
}

/// The reader/emitter half of [`serve_session`], run on the calling
/// thread. Recovery replay lines run first (never re-journaled), then
/// the live transport.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn read_loop(
    cfg: &ServeConfig,
    core: &Core,
    runner: &dyn JobRunner,
    store: &dyn ResultStore,
    replay: Vec<Vec<u8>>,
    mut input: impl BufRead,
    emit: &mut Emit<'_, impl Write>,
    ctl: &ServeControl,
) -> std::io::Result<()> {
    let mut replay_lines = replay.into_iter();
    loop {
        let (raw, live) = match replay_lines.next() {
            Some(payload) => (decode_replay(&payload), false),
            None => match read_raw_line(&mut input, cfg.max_line_bytes)? {
                None => break,
                Some(raw) => (raw, true),
            },
        };

        // Empty lines produce no response, so they are not journaled.
        if matches!(&raw, RawLine::Line(s) if s.trim().is_empty()) {
            continue;
        }
        if live {
            if let Some(j) = emit.journal.as_deref_mut() {
                j.input(&encode_replay(&raw))?;
            }
        }

        let line = match raw {
            RawLine::Line(s) => s,
            RawLine::TooLong => {
                let mut state = core.state.lock().unwrap();
                state.counters.jobs += 1;
                state.counters.errors += 1;
                let resp = protocol::render_error(
                    None,
                    kind::MALFORMED,
                    &format!(
                        "line exceeds the max-line-bytes cap of {} bytes",
                        cfg.max_line_bytes
                    ),
                );
                state.push_ready(resp);
                continue;
            }
            RawLine::NotUtf8(_) => {
                let mut state = core.state.lock().unwrap();
                state.counters.jobs += 1;
                state.counters.errors += 1;
                let resp = protocol::render_error(None, kind::MALFORMED, "line is not valid UTF-8");
                state.push_ready(resp);
                continue;
            }
        };

        let mut state = core.state.lock().unwrap();
        state.counters.jobs += 1;
        let req = match protocol::parse_request(&line) {
            Err(e) => {
                state.counters.errors += 1;
                let resp = protocol::render_error(e.id.as_deref(), e.kind, &e.message);
                state.push_ready(resp);
                continue;
            }
            Ok(req) => req,
        };

        if req.op == Op::Stats {
            // Barrier: drain every buffered response, then answer.
            // `ok` counts run successes only; a stats line shows up just
            // in `jobs`.
            let state = drain(core, state, emit)?;
            let resp = protocol::render_stats(&req.id, &state.counters);
            drop(state);
            emit.line(&resp)?;
            emit.flush()?;
            continue;
        }

        if req.op == Op::Shutdown {
            // Graceful drain: finish everything admitted, flush the
            // buffered responses in submission order, acknowledge, and
            // stop reading. The control block tells sibling connections
            // and the TCP accept loop to stop admitting.
            drop(drain(core, state, emit)?);
            ctl.drain();
            let id = (!req.id.is_empty()).then_some(req.id.as_str());
            emit.line(&protocol::render_shutdown_ack(id))?;
            emit.flush()?;
            return Ok(());
        }

        if ctl.is_draining() {
            state.counters.errors += 1;
            state.counters.rejected += 1;
            let resp = protocol::render_error(
                Some(&req.id),
                kind::SHUTTING_DOWN,
                "daemon is draining; no new work admitted",
            );
            state.push_ready(resp);
            continue;
        }

        if req.steps > cfg.max_steps {
            state.counters.errors += 1;
            let resp = protocol::render_error(
                Some(&req.id),
                kind::BAD_REQUEST,
                &format!("`steps` exceeds the service cap of {}", cfg.max_steps),
            );
            state.push_ready(resp);
            continue;
        }

        let key = match runner.cache_key(&req) {
            Err(e) => {
                state.counters.errors += 1;
                let resp = protocol::render_error(Some(&req.id), e.kind, &e.message);
                state.push_ready(resp);
                continue;
            }
            Ok(key) => key,
        };

        // Completed cell (this session, or a warm shared store): answer
        // immediately, no admission slot consumed.
        let done = match state.cells.get(&key) {
            Some(Cell::Done {
                owner_tenant,
                result,
            }) => Some((Some(owner_tenant.clone()), result.clone())),
            Some(Cell::InFlight { .. }) => None,
            None => store.get(key).map(|result| (None, result)),
        };
        if let Some((owner, result)) = done {
            state.counters.cache_hits += 1;
            if owner.as_deref().is_some_and(|o| o != req.tenant) {
                state.counters.cross_tenant_hits += 1;
            }
            state.counters.ok += 1;
            let resp = protocol::render_ok(
                &req.id,
                &req.tenant,
                true,
                &result.reports,
                result.degraded.as_deref(),
            );
            state.push_ready(resp);
            continue;
        }

        // Breaker: only lines that will *compute* consult it — after the
        // cache, and skipping coalescers, because whether a duplicate
        // becomes a waiter or a plain cache hit depends on worker timing
        // and the two must stay byte-identical. Checked before the queue
        // so a breaker rejection consumes no admission slot.
        let coalesce = matches!(state.cells.get(&key), Some(Cell::InFlight { .. }));
        let mut probe = false;
        if !coalesce {
            let admission = state.breakers.admit(&req.tenant);
            if admission == Admission::Reject {
                state.counters.errors += 1;
                state.counters.rejected += 1;
                let resp = protocol::render_error(
                    Some(&req.id),
                    kind::BREAKER_OPEN,
                    &format!("tenant `{}` circuit breaker is open", req.tenant),
                );
                state.push_ready(resp);
                continue;
            }
            probe = admission == Admission::AdmitProbe;
        }

        // Admission: computations and in-flight waiters both hold a
        // slot until the next barrier.
        if let Err(reason) = state.queue.admit(&req.tenant) {
            if probe {
                // The probe never ran; the next admission retries it.
                state.breakers.probe_aborted(&req.tenant);
            }
            let (kind, msg) = match reason {
                RejectReason::OverCapacity => (
                    kind::OVER_CAPACITY,
                    format!(
                        "daemon capacity of {} outstanding jobs reached",
                        cfg.capacity
                    ),
                ),
                RejectReason::OverQuota => (
                    kind::OVER_QUOTA,
                    format!(
                        "tenant quota of {} outstanding jobs reached",
                        cfg.tenant_quota
                    ),
                ),
            };
            state.counters.errors += 1;
            state.counters.rejected += 1;
            let resp = protocol::render_error(Some(&req.id), kind, &msg);
            state.push_ready(resp);
            continue;
        }

        let window_idx = state.window.len();
        let tenant = req.tenant.clone();
        match state.cells.get_mut(&key) {
            Some(Cell::InFlight {
                owner_tenant,
                waiters,
            }) => {
                // Coalesce: exactly one computation per cell, every
                // concurrent duplicate becomes a waiter.
                let cross = *owner_tenant != req.tenant;
                waiters.push(Waiter {
                    window_idx,
                    id: req.id.clone(),
                    tenant: req.tenant.clone(),
                });
                state.counters.cache_hits += 1;
                if cross {
                    state.counters.cross_tenant_hits += 1;
                }
                state.window.push(WindowSlot {
                    slot: Slot::Waiting,
                    tenant: Some(tenant),
                    probe,
                    verdict: None,
                });
            }
            _ => {
                state.counters.distinct_cells += 1;
                state.cells.insert(
                    key,
                    Cell::InFlight {
                        owner_tenant: req.tenant.clone(),
                        waiters: Vec::new(),
                    },
                );
                state.window.push(WindowSlot {
                    slot: Slot::Waiting,
                    tenant: Some(tenant),
                    probe,
                    verdict: None,
                });
                let priority = req.priority;
                state.queue.push(
                    priority,
                    WorkItem {
                        window_idx,
                        key,
                        req,
                        admitted_at: Instant::now(),
                    },
                );
                core.work.notify_one();
            }
        }
    }

    // End of input: final drain.
    let state = core.state.lock().unwrap();
    drop(drain(core, state, emit)?);
    Ok(())
}

/// Waits for every window slot to become ready, emits all responses in
/// submission order, releases the admission slots, and feeds terminal
/// outcomes to the breakers (also in submission order, which keeps the
/// breaker trajectory a pure function of the request sequence).
fn drain<'a>(
    core: &'a Core,
    mut state: std::sync::MutexGuard<'a, CoreState>,
    emit: &mut Emit<'_, impl Write>,
) -> std::io::Result<std::sync::MutexGuard<'a, CoreState>> {
    while state.ready < state.window.len() {
        state = core.done.wait(state).unwrap();
    }
    let window = std::mem::take(&mut state.window);
    state.ready = 0;
    for ws in window {
        if let Some(tenant) = ws.tenant {
            state.queue.release(&tenant);
            if let Some(ok) = ws.verdict {
                state.breakers.observe(&tenant, ok, ws.probe);
            }
        }
        match ws.slot {
            Slot::Ready(resp) => emit.line(&resp)?,
            Slot::Waiting => unreachable!("drain woke with unready slots"),
        }
    }
    emit.flush()?;
    Ok(state)
}

/// Serves TCP connections on `listener`, each through [`serve_session`]
/// with the shared runner, store, and control block (cross-connection
/// sharing flows through the store). Handles at most `max_conns`
/// connections when given; otherwise accepts until a drain is requested
/// by a `{"cmd":"shutdown"}` line on any connection. The journal, a
/// single-stream facility, is cleared for TCP sessions.
///
/// # Errors
///
/// Propagates accept errors; per-connection I/O errors only tear down
/// that connection.
pub fn serve_tcp(
    cfg: &ServeConfig,
    runner: &(dyn JobRunner + Sync),
    store: &(dyn ResultStore + Sync),
    listener: &std::net::TcpListener,
    max_conns: Option<usize>,
    ctl: &ServeControl,
) -> std::io::Result<()> {
    let cfg = &ServeConfig {
        journal: None,
        ..cfg.clone()
    };
    // Nonblocking accept with a short poll so a drain requested on one
    // connection stops the accept loop promptly.
    listener.set_nonblocking(true)?;
    let mut served = 0usize;
    std::thread::scope(|scope| loop {
        if ctl.is_draining() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                scope.spawn(move || {
                    let reader = std::io::BufReader::new(&stream);
                    let _ = serve_session(cfg, runner, store, reader, &stream, ctl);
                });
                served += 1;
                if max_conns.is_some_and(|m| served >= m) {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    })
}
