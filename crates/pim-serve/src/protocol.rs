//! The wire protocol: one JSON object per line, both directions.
//!
//! Requests parse with `pim_common::trace::parse_json` and responses
//! render with the same crate's `Json`/`json_string` emitters, so the
//! daemon stays dependency-free. The grammar is documented in
//! DESIGN.md §4.11; every field of a `run` request maps 1:1 onto a
//! field of the engine's `RunRequest`, which is what makes the wire
//! protocol, the in-process API, and the cache key the same object.
//!
//! Parsing is total: any line — malformed JSON, wrong types, unknown
//! fields — becomes either a [`Request`] or a [`ParseError`] carrying
//! the request id when one could be recovered. The daemon never
//! crashes on input.

use pim_common::trace::{json_string, parse_json, Json};
use pim_runtime::TieBreak;
use std::fmt::Write as _;

/// Protocol error kinds, also used verbatim as the `"error"` field of
/// error responses.
pub mod kind {
    /// The line is not a JSON object.
    pub const MALFORMED: &str = "malformed";
    /// The object is JSON but a field is missing, mistyped, or out of
    /// range.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The object carries a top-level field the protocol does not know.
    pub const UNKNOWN_FIELD: &str = "unknown_field";
    /// Admitting the job would exceed the daemon's outstanding-job
    /// capacity; retry after a `stats` barrier.
    pub const OVER_CAPACITY: &str = "over_capacity";
    /// Admitting the job would exceed the tenant's outstanding-job
    /// quota; retry after a `stats` barrier.
    pub const OVER_QUOTA: &str = "over_quota";
    /// The simulation itself failed.
    pub const EXECUTION_FAILED: &str = "execution_failed";
    /// The run exceeded its `deadline_ms` budget and was cut off at a
    /// deterministic engine check site.
    pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
    /// The tenant's circuit breaker is open after repeated failures; the
    /// request was rejected without queueing. The breaker closes again
    /// after a cooldown counted in rejected admissions (never wall
    /// clock), so rejection streams byte-replay.
    pub const BREAKER_OPEN: &str = "breaker_open";
    /// The daemon is draining for shutdown and admits no new runs.
    pub const SHUTTING_DOWN: &str = "shutting_down";
}

/// What a request line asks the daemon to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Simulate a cell.
    Run,
    /// Barrier: drain every outstanding job, emit all buffered responses
    /// in submission order, then report service counters.
    Stats,
    /// Control line `{"cmd":"shutdown"}`: drain like a `stats` barrier,
    /// acknowledge, then stop serving (graceful drain shutdown).
    Shutdown,
}

/// Seed + rate of a seeded fault plan; the horizon is derived by the
/// runner from the cell's zero-fault makespan, so two tenants asking for
/// the same `(seed, rate)` on the same cell share one result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Fault-plan seed.
    pub seed: u64,
    /// Mean fault events per workload-makespan.
    pub rate: f64,
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen id, echoed on the response.
    pub id: String,
    /// The verb.
    pub op: Op,
    /// Tenant the job is accounted to.
    pub tenant: String,
    /// Workload model names (`"model"` or `"models"` on the wire).
    pub models: Vec<String>,
    /// System preset name (`cpu`, `progr`, `fixed`, `hetero`, `bare`,
    /// `rc`).
    pub preset: String,
    /// Training steps per workload.
    pub steps: usize,
    /// Optional batch-size override.
    pub batch: Option<usize>,
    /// Queue priority, 0 (lowest) to 9; higher pops first.
    pub priority: u8,
    /// Tie-break policy.
    pub tie: TieBreak,
    /// Optional fault injection.
    pub faults: Option<FaultSpec>,
    /// Partitioned (each model gets the machine to itself) vs. shared
    /// co-run.
    pub partitioned: bool,
    /// Restrict workloads to CPU + programmable PIM.
    pub cpu_progr_only: bool,
    /// Optional deadline in *simulated* milliseconds-equivalents: the
    /// runner maps it to a deterministic engine budget, so whether a run
    /// is cut off is a pure function of the request, not of wall clock.
    pub deadline_ms: Option<u64>,
}

/// A rejected request line: the error kind, a human-readable message,
/// and the request id when the line parsed far enough to recover one.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Echoed id, when recoverable.
    pub id: Option<String>,
    /// One of the [`kind`] constants.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ParseError {
    fn new(id: Option<String>, kind: &'static str, message: impl Into<String>) -> Self {
        ParseError {
            id,
            kind,
            message: message.into(),
        }
    }
}

/// Every top-level field the protocol accepts.
const KNOWN_FIELDS: &[&str] = &[
    "id",
    "op",
    "tenant",
    "model",
    "models",
    "preset",
    "steps",
    "batch",
    "priority",
    "tie",
    "faults",
    "partitioned",
    "cpu_progr_only",
    "deadline_ms",
    "cmd",
];

fn as_usize(v: &Json) -> Option<usize> {
    let n = v.as_num()?;
    (n.fract() == 0.0 && n >= 0.0 && n <= f64::from(u32::MAX)).then_some(n as usize)
}

fn as_u64(v: &Json) -> Option<u64> {
    let n = v.as_num()?;
    (n.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&n)).then_some(n as u64)
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`ParseError`] (never panics) describing the first
/// problem: non-JSON input, a non-object document, an unknown field, or
/// a missing/mistyped/out-of-range field value.
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let doc = parse_json(line)
        .map_err(|e| ParseError::new(None, kind::MALFORMED, format!("invalid JSON: {e}")))?;
    let Json::Obj(fields) = &doc else {
        return Err(ParseError::new(
            None,
            kind::MALFORMED,
            "request must be a JSON object",
        ));
    };

    // Recover the id first so every later error can echo it.
    let id = doc.field("id").and_then(Json::as_str).map(str::to_string);
    let err = |kind, msg: String| ParseError::new(id.clone(), kind, msg);

    for (key, _) in fields {
        if !KNOWN_FIELDS.contains(&key.as_str()) {
            return Err(err(kind::UNKNOWN_FIELD, format!("unknown field `{key}`")));
        }
    }

    // Control lines: `{"cmd":"shutdown"}` with an optional id. They sit
    // outside the job grammar — no tenant, no models — so they parse
    // before the id requirement (the ack echoes null when absent).
    if let Some(v) = doc.field("cmd") {
        if v.as_str() != Some("shutdown") {
            return Err(err(
                kind::BAD_REQUEST,
                format!("`cmd` must be \"shutdown\", got {v}"),
            ));
        }
        for (key, _) in fields {
            if key != "cmd" && key != "id" {
                return Err(err(
                    kind::BAD_REQUEST,
                    format!("`{key}` is not valid on a control line"),
                ));
            }
        }
        return Ok(Request {
            id: id.unwrap_or_default(),
            op: Op::Shutdown,
            tenant: "public".to_string(),
            models: Vec::new(),
            preset: "hetero".to_string(),
            steps: 1,
            batch: None,
            priority: 4,
            tie: TieBreak::Stable,
            faults: None,
            partitioned: false,
            cpu_progr_only: false,
            deadline_ms: None,
        });
    }

    let Some(id) = id else {
        return Err(ParseError::new(
            None,
            kind::BAD_REQUEST,
            "missing required string field `id`",
        ));
    };
    let err = |kind, msg: String| ParseError::new(Some(id.clone()), kind, msg);

    let op = match doc.field("op").map(|v| (v, v.as_str())) {
        None => Op::Run,
        Some((_, Some("run"))) => Op::Run,
        Some((_, Some("stats"))) => Op::Stats,
        Some((v, _)) => {
            return Err(err(
                kind::BAD_REQUEST,
                format!("`op` must be \"run\" or \"stats\", got {v}"),
            ))
        }
    };

    let tenant = match doc.field("tenant") {
        None => "public".to_string(),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| err(kind::BAD_REQUEST, "`tenant` must be a string".into()))?,
    };

    let mut models = Vec::new();
    match (doc.field("model"), doc.field("models")) {
        (Some(_), Some(_)) => {
            return Err(err(
                kind::BAD_REQUEST,
                "give `model` or `models`, not both".into(),
            ))
        }
        (Some(v), None) => {
            let m = v
                .as_str()
                .ok_or_else(|| err(kind::BAD_REQUEST, "`model` must be a string".into()))?;
            models.push(m.to_string());
        }
        (None, Some(v)) => {
            let items = v.as_arr().ok_or_else(|| {
                err(
                    kind::BAD_REQUEST,
                    "`models` must be an array of strings".into(),
                )
            })?;
            for item in items {
                let m = item.as_str().ok_or_else(|| {
                    err(
                        kind::BAD_REQUEST,
                        "`models` must be an array of strings".into(),
                    )
                })?;
                models.push(m.to_string());
            }
        }
        (None, None) => {}
    }
    if op == Op::Run && models.is_empty() {
        return Err(err(
            kind::BAD_REQUEST,
            "a run request needs `model` or a non-empty `models`".into(),
        ));
    }

    let preset = match doc.field("preset") {
        None => "hetero".to_string(),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| err(kind::BAD_REQUEST, "`preset` must be a string".into()))?,
    };

    let steps = match doc.field("steps") {
        None => 1,
        Some(v) => as_usize(v).filter(|&n| n >= 1).ok_or_else(|| {
            err(
                kind::BAD_REQUEST,
                "`steps` must be a positive integer".into(),
            )
        })?,
    };

    let batch = match doc.field("batch") {
        None => None,
        Some(v) => Some(as_usize(v).filter(|&n| n >= 1).ok_or_else(|| {
            err(
                kind::BAD_REQUEST,
                "`batch` must be a positive integer".into(),
            )
        })?),
    };

    let priority = match doc.field("priority") {
        None => 4,
        Some(v) => as_usize(v).filter(|&n| n <= 9).ok_or_else(|| {
            err(
                kind::BAD_REQUEST,
                "`priority` must be an integer 0..=9".into(),
            )
        })? as u8,
    };

    let tie = match doc.field("tie") {
        None => TieBreak::Stable,
        Some(v) => match v {
            Json::Str(s) if s == "stable" => TieBreak::Stable,
            Json::Obj(fields) if fields.len() == 1 => {
                let (key, val) = &fields[0];
                let seed = as_u64(val).ok_or_else(|| {
                    err(
                        kind::BAD_REQUEST,
                        format!("`tie.{key}` must be an integer seed"),
                    )
                })?;
                match key.as_str() {
                    "permuted" => TieBreak::Permuted(seed),
                    "priority" => TieBreak::Priority(seed),
                    _ => {
                        return Err(err(
                            kind::BAD_REQUEST,
                            "`tie` must be \"stable\", {\"permuted\":N}, or {\"priority\":N}"
                                .into(),
                        ))
                    }
                }
            }
            _ => {
                return Err(err(
                    kind::BAD_REQUEST,
                    "`tie` must be \"stable\", {\"permuted\":N}, or {\"priority\":N}".into(),
                ))
            }
        },
    };

    let faults = match doc.field("faults") {
        None => None,
        Some(v) => {
            let bad = || {
                err(
                    kind::BAD_REQUEST,
                    "`faults` must be {\"seed\":N,\"rate\":X} with rate >= 0".into(),
                )
            };
            let Json::Obj(fields) = v else {
                return Err(bad());
            };
            for (key, _) in fields {
                if key != "seed" && key != "rate" {
                    return Err(bad());
                }
            }
            let seed = v.field("seed").and_then(as_u64).ok_or_else(bad)?;
            let rate = v
                .field("rate")
                .and_then(Json::as_num)
                .filter(|r| r.is_finite() && *r >= 0.0)
                .ok_or_else(bad)?;
            Some(FaultSpec { seed, rate })
        }
    };

    let flag = |name: &str| match doc.field(name) {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| err(kind::BAD_REQUEST, format!("`{name}` must be a boolean"))),
    };
    let partitioned = flag("partitioned")?;
    let cpu_progr_only = flag("cpu_progr_only")?;

    let deadline_ms = match doc.field("deadline_ms") {
        None => None,
        Some(v) => Some(as_u64(v).filter(|&n| n >= 1).ok_or_else(|| {
            err(
                kind::BAD_REQUEST,
                "`deadline_ms` must be a positive integer".into(),
            )
        })?),
    };

    Ok(Request {
        id,
        op,
        tenant,
        models,
        preset,
        steps,
        batch,
        priority,
        tie,
        faults,
        partitioned,
        cpu_progr_only,
        deadline_ms,
    })
}

/// Renders one execution report as a compact JSON object.
///
/// Every float uses Rust's shortest-round-trip `{}` formatting, so a
/// report rendered here is byte-identical to the same report rendered
/// anywhere else — the service-determinism tests compare daemon output
/// against direct `Engine` runs through this one function.
pub fn render_report(r: &pim_runtime::ExecutionReport) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"system\":{},\"steps\":{},\"makespan_s\":{},\"op_time_s\":{},\
         \"data_movement_s\":{},\"sync_s\":{},\"dynamic_energy_j\":{},\
         \"ff_utilization\":{},\"device_busy\":{{",
        json_string(&r.system),
        r.steps,
        r.makespan.seconds(),
        r.op_time.seconds(),
        r.data_movement_time.seconds(),
        r.sync_time.seconds(),
        r.dynamic_energy.joules(),
        r.ff_utilization,
    );
    for (i, (device, busy)) in r.device_busy.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(device), busy.seconds());
    }
    out.push_str("}}");
    out
}

/// Renders a successful `run` response.
pub fn render_ok(
    id: &str,
    tenant: &str,
    cache_hit: bool,
    reports: &[pim_runtime::ExecutionReport],
    degraded: Option<&str>,
) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"id\":{},\"status\":\"ok\",\"tenant\":{},\"cache\":\"{}\",\"degraded\":{},\"reports\":[",
        json_string(id),
        json_string(tenant),
        if cache_hit { "hit" } else { "miss" },
        degraded.map_or_else(|| "null".to_string(), json_string),
    );
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_report(r));
    }
    out.push_str("]}");
    out
}

/// Renders an error response ([`ParseError`] or an admission/execution
/// failure). `id` is `null` when the line never yielded one.
pub fn render_error(id: Option<&str>, kind: &str, message: &str) -> String {
    format!(
        "{{\"id\":{},\"status\":\"error\",\"error\":{},\"message\":{}}}",
        id.map_or_else(|| "null".to_string(), json_string),
        json_string(kind),
        json_string(message),
    )
}

/// Renders the acknowledgement of a `{"cmd":"shutdown"}` control line.
/// `id` is `None` when the control line carried no id.
pub fn render_shutdown_ack(id: Option<&str>) -> String {
    format!(
        "{{\"id\":{},\"status\":\"ok\",\"shutdown\":true}}",
        id.map_or_else(|| "null".to_string(), json_string),
    )
}

/// Deterministic service counters reported by the `stats` verb — no
/// wall-clock values, so stats lines byte-diff across replays just like
/// run responses (latency percentiles live in the out-of-band
/// [`crate::daemon::DaemonStats`] summary instead).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Lines received (any verb, including rejected ones).
    pub jobs: u64,
    /// Successful run responses.
    pub ok: u64,
    /// Error responses of any kind.
    pub errors: u64,
    /// Admission rejections (subset of `errors`).
    pub rejected: u64,
    /// Run responses served from the store or by coalescing onto an
    /// in-flight computation.
    pub cache_hits: u64,
    /// Cache hits whose cell was first computed for a *different*
    /// tenant — the cross-tenant sharing the shared store exists for.
    pub cross_tenant_hits: u64,
    /// Distinct cells computed by this daemon instance.
    pub distinct_cells: u64,
}

/// Renders a `stats` response.
pub fn render_stats(id: &str, c: &ServiceCounters) -> String {
    format!(
        "{{\"id\":{},\"status\":\"ok\",\"stats\":{{\"jobs\":{},\"ok\":{},\"errors\":{},\
         \"rejected\":{},\"cache_hits\":{},\"cross_tenant_hits\":{},\"distinct_cells\":{}}}}}",
        json_string(id),
        c.jobs,
        c.ok,
        c.errors,
        c.rejected,
        c.cache_hits,
        c.cross_tenant_hits,
        c.distinct_cells,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_run_request() {
        let req = parse_request(r#"{"id":"1","model":"alex"}"#).unwrap();
        assert_eq!(req.id, "1");
        assert_eq!(req.op, Op::Run);
        assert_eq!(req.tenant, "public");
        assert_eq!(req.models, vec!["alex"]);
        assert_eq!(req.preset, "hetero");
        assert_eq!(req.steps, 1);
        assert_eq!(req.priority, 4);
        assert_eq!(req.tie, TieBreak::Stable);
        assert!(req.faults.is_none() && !req.partitioned && !req.cpu_progr_only);
    }

    #[test]
    fn parses_every_field() {
        let req = parse_request(
            r#"{"id":"x","op":"run","tenant":"t0","models":["alex","lstm"],"preset":"cpu",
                "steps":3,"batch":64,"priority":9,"tie":{"permuted":7},
                "faults":{"seed":5,"rate":1.5},"partitioned":true,"cpu_progr_only":true}"#,
        )
        .unwrap();
        assert_eq!(req.models, vec!["alex", "lstm"]);
        assert_eq!(req.batch, Some(64));
        assert_eq!(req.priority, 9);
        assert_eq!(req.tie, TieBreak::Permuted(7));
        assert_eq!(req.faults, Some(FaultSpec { seed: 5, rate: 1.5 }));
        assert!(req.partitioned && req.cpu_progr_only);
    }

    #[test]
    fn malformed_lines_have_no_id() {
        for line in ["", "{", "not json", "[1,2]", "42"] {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.kind, kind::MALFORMED, "line {line:?}");
            assert_eq!(e.id, None);
        }
    }

    #[test]
    fn unknown_field_keeps_the_id() {
        let e = parse_request(r#"{"id":"7","model":"alex","models_":["x"]}"#).unwrap_err();
        assert_eq!(e.kind, kind::UNKNOWN_FIELD);
        assert_eq!(e.id.as_deref(), Some("7"));
        assert!(e.message.contains("models_"));
    }

    #[test]
    fn field_validation_errors_keep_the_id() {
        let cases = [
            r#"{"id":"a","model":"alex","steps":0}"#,
            r#"{"id":"a","model":"alex","steps":1.5}"#,
            r#"{"id":"a","model":"alex","priority":10}"#,
            r#"{"id":"a","model":"alex","tie":"sorted"}"#,
            r#"{"id":"a","model":"alex","tie":{"permuted":-1}}"#,
            r#"{"id":"a","model":"alex","faults":{"seed":1}}"#,
            r#"{"id":"a","model":"alex","faults":{"seed":1,"rate":-2}}"#,
            r#"{"id":"a","model":"alex","partitioned":"yes"}"#,
            r#"{"id":"a","model":"alex","models":["lstm"]}"#,
            r#"{"id":"a"}"#,
            r#"{"id":"a","op":"delete","model":"alex"}"#,
        ];
        for line in cases {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.kind, kind::BAD_REQUEST, "line {line:?}");
            assert_eq!(e.id.as_deref(), Some("a"), "line {line:?}");
        }
    }

    #[test]
    fn parses_deadline_ms() {
        let req = parse_request(r#"{"id":"1","model":"alex","deadline_ms":250}"#).unwrap();
        assert_eq!(req.deadline_ms, Some(250));
        for bad in [
            r#"{"id":"a","model":"alex","deadline_ms":0}"#,
            r#"{"id":"a","model":"alex","deadline_ms":1.5}"#,
            r#"{"id":"a","model":"alex","deadline_ms":"fast"}"#,
        ] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.kind, kind::BAD_REQUEST, "line {bad:?}");
            assert_eq!(e.id.as_deref(), Some("a"));
        }
    }

    #[test]
    fn parses_shutdown_control_lines() {
        let req = parse_request(r#"{"cmd":"shutdown"}"#).unwrap();
        assert_eq!(req.op, Op::Shutdown);
        assert_eq!(req.id, "");
        let req = parse_request(r#"{"id":"bye","cmd":"shutdown"}"#).unwrap();
        assert_eq!(req.op, Op::Shutdown);
        assert_eq!(req.id, "bye");
        // Unknown command verb and job fields on a control line both fail.
        let e = parse_request(r#"{"cmd":"restart"}"#).unwrap_err();
        assert_eq!(e.kind, kind::BAD_REQUEST);
        let e = parse_request(r#"{"cmd":"shutdown","model":"alex"}"#).unwrap_err();
        assert_eq!(e.kind, kind::BAD_REQUEST);
        assert!(e.message.contains("model"));
    }

    #[test]
    fn missing_id_is_bad_request_without_id() {
        let e = parse_request(r#"{"model":"alex"}"#).unwrap_err();
        assert_eq!(e.kind, kind::BAD_REQUEST);
        assert_eq!(e.id, None);
    }

    #[test]
    fn responses_are_single_json_lines() {
        let ok = render_ok("1", "t0", true, &[], Some("CPU"));
        assert!(ok.contains("\"cache\":\"hit\"") && ok.contains("\"degraded\":\"CPU\""));
        let err = render_error(None, kind::MALFORMED, "bad \"line\"");
        assert!(err.starts_with("{\"id\":null,"));
        for line in [ok, err, render_stats("s", &ServiceCounters::default())] {
            let doc = pim_common::trace::parse_json(&line).unwrap();
            assert!(matches!(doc, Json::Obj(_)));
            assert!(!line.contains('\n'));
        }
    }
}
