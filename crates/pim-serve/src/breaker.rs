//! Per-tenant circuit breakers whose transitions are pure functions of
//! the request sequence.
//!
//! A breaker guards one tenant: repeated terminal failures
//! (`execution_failed`, `deadline_exceeded`) trip it open, an open
//! breaker rejects admissions with `breaker_open` until a cooldown
//! elapses, then a single probe request is admitted and its outcome
//! decides between closing and re-opening. Unlike classical wall-clock
//! breakers, both the strike window and the cooldown are counted in
//! protocol events — terminal outcomes observed at drain barriers and
//! rejected admissions respectively — so the whole trajectory is a pure
//! function of the request sequence and rejection streams byte-replay
//! across processes and worker counts.
//!
//! The daemon integration has two call sites:
//!
//! * [`BreakerSet::admit`] at admission time, after the cache lookup
//!   and the coalescing check (cache hits and coalescers start no new
//!   computation, never strike, and are never rejected) and before the
//!   admission queue, and
//! * [`BreakerSet::observe`] at drain barriers, once per terminal
//!   outcome of a slot that held an admission slot, in submission order.
//!
//! Outcomes of runs admitted *before* a breaker opened can drain while
//! it is open or half-open; they are stale and ignored — only the probe
//! (marked at admission by [`Admission::AdmitProbe`]) resolves a
//! half-open breaker.

use std::collections::BTreeMap;

/// Breaker tuning. The defaults (5 strikes to open, 16 rejected
/// admissions to half-open) are loose enough that ordinary traffic —
/// including every fault-injecting test in the repo — never trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive terminal failures that open the breaker. `0` disables
    /// breakers entirely.
    pub threshold: u32,
    /// Rejected admissions an open breaker absorbs before admitting a
    /// probe.
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 5,
            cooldown: 16,
        }
    }
}

impl BreakerConfig {
    /// A configuration with breakers switched off.
    pub fn disabled() -> Self {
        BreakerConfig {
            threshold: 0,
            cooldown: 0,
        }
    }
}

/// One tenant's breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Admitting normally; `strikes` consecutive failures so far.
    Closed {
        /// Consecutive terminal failures since the last success.
        strikes: u32,
    },
    /// Rejecting; `remaining` more rejections until half-open.
    Open {
        /// Rejected admissions left before the breaker goes half-open.
        remaining: u32,
    },
    /// One probe decides: `probing` is true while it is in flight.
    HalfOpen {
        /// Whether the probe has been admitted and awaits its outcome.
        probing: bool,
    },
}

/// What the breaker decided about one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admit normally.
    Admit,
    /// Admit as the half-open probe; its terminal outcome must be
    /// reported via [`BreakerSet::observe`] with `probe = true`.
    AdmitProbe,
    /// Reject with `breaker_open`.
    Reject,
}

/// The per-tenant breaker map.
#[derive(Debug)]
pub struct BreakerSet {
    cfg: BreakerConfig,
    tenants: BTreeMap<String, BreakerState>,
}

impl BreakerSet {
    /// An empty set under `cfg`; tenants materialize on first admission.
    pub fn new(cfg: BreakerConfig) -> Self {
        BreakerSet {
            cfg,
            tenants: BTreeMap::new(),
        }
    }

    /// The current state of a tenant's breaker (closed with zero strikes
    /// if never seen).
    pub fn state(&self, tenant: &str) -> BreakerState {
        self.tenants
            .get(tenant)
            .copied()
            .unwrap_or(BreakerState::Closed { strikes: 0 })
    }

    /// Decides one admission attempt for `tenant`, advancing the cooldown
    /// of an open breaker.
    pub fn admit(&mut self, tenant: &str) -> Admission {
        if self.cfg.threshold == 0 {
            return Admission::Admit;
        }
        let state = self
            .tenants
            .entry(tenant.to_string())
            .or_insert(BreakerState::Closed { strikes: 0 });
        match *state {
            BreakerState::Closed { .. } => Admission::Admit,
            BreakerState::Open { remaining } => {
                *state = if remaining <= 1 {
                    BreakerState::HalfOpen { probing: false }
                } else {
                    BreakerState::Open {
                        remaining: remaining - 1,
                    }
                };
                Admission::Reject
            }
            BreakerState::HalfOpen { probing: false } => {
                *state = BreakerState::HalfOpen { probing: true };
                Admission::AdmitProbe
            }
            BreakerState::HalfOpen { probing: true } => Admission::Reject,
        }
    }

    /// Un-marks an in-flight probe that was never actually admitted
    /// (e.g. the admission queue rejected it after the breaker said
    /// [`Admission::AdmitProbe`]); the next admission retries the probe.
    pub fn probe_aborted(&mut self, tenant: &str) {
        if let Some(state) = self.tenants.get_mut(tenant) {
            if *state == (BreakerState::HalfOpen { probing: true }) {
                *state = BreakerState::HalfOpen { probing: false };
            }
        }
    }

    /// Reports the terminal outcome of an admitted run, observed at a
    /// drain barrier. `probe` marks the run admitted via
    /// [`Admission::AdmitProbe`]. Non-probe outcomes are ignored unless
    /// the breaker is closed — they belong to runs admitted before it
    /// opened.
    pub fn observe(&mut self, tenant: &str, ok: bool, probe: bool) {
        if self.cfg.threshold == 0 {
            return;
        }
        let Some(state) = self.tenants.get_mut(tenant) else {
            return;
        };
        match *state {
            BreakerState::Closed { strikes } => {
                *state = if ok {
                    BreakerState::Closed { strikes: 0 }
                } else if strikes + 1 >= self.cfg.threshold {
                    BreakerState::Open {
                        remaining: self.cfg.cooldown,
                    }
                } else {
                    BreakerState::Closed {
                        strikes: strikes + 1,
                    }
                };
            }
            BreakerState::HalfOpen { probing: true } if probe => {
                *state = if ok {
                    BreakerState::Closed { strikes: 0 }
                } else {
                    BreakerState::Open {
                        remaining: self.cfg.cooldown,
                    }
                };
            }
            // Stale outcomes (admitted before the breaker opened) and
            // anything else: no transition.
            BreakerState::Open { .. } | BreakerState::HalfOpen { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BreakerSet {
        BreakerSet::new(BreakerConfig {
            threshold: 2,
            cooldown: 3,
        })
    }

    #[test]
    fn stays_closed_under_successes_and_scattered_failures() {
        let mut b = tiny();
        for _ in 0..10 {
            assert_eq!(b.admit("t"), Admission::Admit);
            b.observe("t", false, false);
            assert_eq!(b.admit("t"), Admission::Admit);
            b.observe("t", true, false); // success resets the strike count
        }
        assert_eq!(b.state("t"), BreakerState::Closed { strikes: 0 });
    }

    #[test]
    fn consecutive_failures_open_then_cooldown_then_probe() {
        let mut b = tiny();
        for _ in 0..2 {
            assert_eq!(b.admit("t"), Admission::Admit);
            b.observe("t", false, false);
        }
        assert_eq!(b.state("t"), BreakerState::Open { remaining: 3 });
        // Cooldown counts rejected admissions, not wall clock.
        for _ in 0..3 {
            assert_eq!(b.admit("t"), Admission::Reject);
        }
        assert_eq!(b.state("t"), BreakerState::HalfOpen { probing: false });
        assert_eq!(b.admit("t"), Admission::AdmitProbe);
        // While the probe is out, everyone else is rejected.
        assert_eq!(b.admit("t"), Admission::Reject);
        b.observe("t", true, true);
        assert_eq!(b.state("t"), BreakerState::Closed { strikes: 0 });
        assert_eq!(b.admit("t"), Admission::Admit);
    }

    #[test]
    fn failed_probe_reopens_with_a_full_cooldown() {
        let mut b = tiny();
        for _ in 0..2 {
            b.admit("t");
            b.observe("t", false, false);
        }
        for _ in 0..3 {
            b.admit("t");
        }
        assert_eq!(b.admit("t"), Admission::AdmitProbe);
        b.observe("t", false, true);
        assert_eq!(b.state("t"), BreakerState::Open { remaining: 3 });
    }

    #[test]
    fn stale_outcomes_do_not_resolve_an_open_or_halfopen_breaker() {
        let mut b = tiny();
        for _ in 0..2 {
            b.admit("t");
            b.observe("t", false, false);
        }
        // A pre-open run draining now must not touch the cooldown.
        b.observe("t", true, false);
        assert_eq!(b.state("t"), BreakerState::Open { remaining: 3 });
        for _ in 0..3 {
            b.admit("t");
        }
        b.admit("t"); // probe out
        b.observe("t", true, false); // stale non-probe success: ignored
        assert_eq!(b.state("t"), BreakerState::HalfOpen { probing: true });
    }

    #[test]
    fn aborted_probe_is_retried_on_the_next_admission() {
        let mut b = tiny();
        for _ in 0..2 {
            b.admit("t");
            b.observe("t", false, false);
        }
        for _ in 0..3 {
            b.admit("t");
        }
        assert_eq!(b.admit("t"), Admission::AdmitProbe);
        b.probe_aborted("t");
        assert_eq!(b.admit("t"), Admission::AdmitProbe);
        b.observe("t", true, true);
        assert_eq!(b.state("t"), BreakerState::Closed { strikes: 0 });
    }

    #[test]
    fn tenants_are_independent() {
        let mut b = tiny();
        for _ in 0..2 {
            b.admit("bad");
            b.observe("bad", false, false);
        }
        assert_eq!(b.admit("bad"), Admission::Reject);
        assert_eq!(b.admit("good"), Admission::Admit);
    }

    #[test]
    fn zero_threshold_disables_everything() {
        let mut b = BreakerSet::new(BreakerConfig::disabled());
        for _ in 0..100 {
            assert_eq!(b.admit("t"), Admission::Admit);
            b.observe("t", false, false);
        }
        assert_eq!(b.state("t"), BreakerState::Closed { strikes: 0 });
    }
}
