//! The seeded chaos/soak harness behind `repro chaos`.
//!
//! One [`run_chaos`] call drives a full adversarial schedule against an
//! in-process daemon and checks the resilience invariants end to end:
//!
//! 1. **Exactly-once terminal responses** — every admitted request id
//!    appears exactly once in the output; every malformed, oversized,
//!    or non-UTF-8 line yields exactly one null-id error.
//! 2. **Worker-count unobservability** — the same stream byte-replays
//!    under 1, 2, and 4 workers (and whatever `PIM_RUN_THREADS` says).
//! 3. **Breaker fidelity** — an independently-replayed reference
//!    breaker state machine must agree with every `breaker_open`
//!    rejection and every admission the daemon made.
//! 4. **Crash-safe recovery** — the journaled session is truncated at
//!    seeded record boundaries (and once mid-record, a torn tail);
//!    stitching the already-delivered responses to the recovered
//!    session's output must reproduce the uncrashed stream byte for
//!    byte.
//! 5. **Mid-line disconnect** — a stream cut inside a line still
//!    terminates cleanly and deterministically.
//!
//! Everything is a pure function of `(seed, ops)`: the schedule comes
//! from a xorshift64* generator, the synthetic runner fails by model
//! name rather than by timing, and deadlines are request fields, never
//! wall clock — so the summary (and the whole response stream) can be
//! byte-diffed across runs, machines, and thread counts.

use crate::breaker::{Admission, BreakerConfig, BreakerSet};
use crate::daemon::{serve_lines, JobError, JobRunner, MemStore, ServeConfig, StoredResult};
use crate::journal;
use crate::protocol::Request;
use pim_common::units::Seconds;
use pim_runtime::stats::ReportBuilder;
use std::collections::HashMap;
use std::fmt;

/// Models the chaos runner accepts. `boom` panics in the runner (the
/// worker's `catch_unwind` turns that into `execution_failed`); `slow`
/// blows any `deadline_ms` budget it is given but succeeds without one;
/// the rest succeed.
const GOOD_MODELS: [&str; 3] = ["alex", "dcgan", "lstm"];
const TENANTS: [&str; 3] = ["acme", "bolt", "carl"];

/// Chaos breaker tuning: tight enough that `boom`-heavy tenants
/// actually trip, open, probe, and close within a few hundred ops.
const CHAOS_BREAKER: BreakerConfig = BreakerConfig {
    threshold: 3,
    cooldown: 4,
};
/// Small line cap so oversized-line handling is cheap to exercise.
const CHAOS_LINE_CAP: usize = 512;

/// The deterministic synthetic [`JobRunner`] the harness serves with.
pub struct ChaosRunner;

impl JobRunner for ChaosRunner {
    fn cache_key(&self, req: &Request) -> Result<u64, JobError> {
        for m in &req.models {
            if !GOOD_MODELS.contains(&m.as_str()) && m != "boom" && m != "slow" {
                return Err(JobError::bad_request(format!("unknown model `{m}`")));
            }
        }
        // Like the engine runner: identity excludes id and tenant,
        // includes the deadline (a deadlined cell must not coalesce
        // with an undeadlined one).
        Ok(pim_common::fingerprint::debug_hash(&(
            &req.models,
            &req.preset,
            req.steps,
            req.batch,
            req.deadline_ms,
        )))
    }

    fn execute(&self, req: &Request) -> Result<StoredResult, JobError> {
        assert!(
            !req.models.iter().any(|m| m == "boom"),
            "chaos: injected runner panic"
        );
        if req.models.iter().any(|m| m == "slow") {
            if let Some(ms) = req.deadline_ms {
                return Err(JobError::deadline(format!(
                    "run exceeded its deadline of {ms} ms"
                )));
            }
        }
        let reports = req
            .models
            .iter()
            .map(|m| {
                ReportBuilder::new(format!("{}/{m}", req.preset), req.steps)
                    .makespan(Seconds::new(1e-3 * (1 + m.len()) as f64 * req.steps as f64))
                    .build()
            })
            .collect();
        Ok(StoredResult {
            reports,
            degraded: None,
        })
    }
}

/// xorshift64* — the repo's standard seeded generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// What one generated line is, for the invariant checks.
enum LineMeta {
    /// A run request with a unique id, accounted to `tenant`.
    Run { id: String, tenant: String },
    /// A `stats` barrier line with a unique id.
    Stats { id: String },
    /// Malformed / oversized / non-UTF-8: exactly one null-id error.
    Invalid,
    /// Blank: no response at all.
    Empty,
}

struct GeneratedStream {
    /// The raw connection bytes, newline-terminated lines.
    bytes: Vec<u8>,
    /// One meta entry per line, in order.
    meta: Vec<LineMeta>,
    /// The non-empty lines in order — exactly what the daemon journals,
    /// so recovery cycles can index "remaining live input" by journaled
    /// input count.
    nonempty: Vec<Vec<u8>>,
    counts: LineCounts,
}

#[derive(Default)]
struct LineCounts {
    runs: usize,
    dups: usize,
    stats: usize,
    malformed: usize,
    oversize: usize,
    notutf8: usize,
    empty: usize,
}

/// Fields a run line is built from, kept so duplicates can re-render
/// the same cell under a fresh id (and possibly another tenant).
#[derive(Clone)]
struct RunFields {
    model: String,
    steps: usize,
    priority: u64,
    deadline_ms: Option<u64>,
    /// Failing lines carry a unique batch so their cells never collide:
    /// a failed cell is forgotten, and whether a colliding later line
    /// coalesces with it or recomputes would depend on worker timing.
    batch: Option<usize>,
}

fn render_run(id: &str, tenant: &str, f: &RunFields) -> String {
    use std::fmt::Write as _;
    let mut s = format!(
        "{{\"id\":\"{id}\",\"tenant\":\"{tenant}\",\"model\":\"{}\",\"steps\":{},\"priority\":{}",
        f.model, f.steps, f.priority
    );
    if let Some(ms) = f.deadline_ms {
        let _ = write!(s, ",\"deadline_ms\":{ms}");
    }
    if let Some(b) = f.batch {
        let _ = write!(s, ",\"batch\":{b}");
    }
    s.push('}');
    s
}

fn generate(seed: u64, ops: usize) -> GeneratedStream {
    let mut rng = Rng::new(seed);
    let mut out = GeneratedStream {
        bytes: Vec::new(),
        meta: Vec::new(),
        nonempty: Vec::new(),
        counts: LineCounts::default(),
    };
    // Good (always-succeeding) run lines, for cache-hitting duplicates.
    let mut good: Vec<RunFields> = Vec::new();
    let malformed_pool: [&[u8]; 4] = [
        b"not json at all",
        b"[\"x\",2]",
        b"{\"id\":",
        b"{\"id\":\"zz\",\"steps\":}",
    ];

    for i in 0..ops {
        let roll = rng.below(100);
        let (line, meta): (Vec<u8>, LineMeta) = if roll < 55 {
            // A fresh run request; model mix drives failures and
            // therefore the breakers.
            let id = format!("r{i}");
            let tenant = (*rng.pick(&TENANTS)).to_string();
            let kind = rng.below(100);
            let fields = if kind < 20 {
                RunFields {
                    model: "boom".to_string(),
                    steps: 1 + rng.below(4) as usize,
                    priority: rng.below(10),
                    deadline_ms: None,
                    batch: Some(1 + i),
                }
            } else if kind < 35 {
                RunFields {
                    model: "slow".to_string(),
                    steps: 1 + rng.below(4) as usize,
                    priority: rng.below(10),
                    deadline_ms: Some(1 + rng.below(50)),
                    batch: Some(1 + i),
                }
            } else {
                RunFields {
                    model: (*rng.pick(&GOOD_MODELS)).to_string(),
                    steps: 1 + rng.below(4) as usize,
                    priority: rng.below(10),
                    deadline_ms: (rng.below(100) < 30).then(|| 1 + rng.below(50)),
                    batch: None,
                }
            };
            if fields.model != "boom" && !(fields.model == "slow" && fields.deadline_ms.is_some()) {
                good.push(fields.clone());
            }
            out.counts.runs += 1;
            (
                render_run(&id, &tenant, &fields).into_bytes(),
                LineMeta::Run { id, tenant },
            )
        } else if roll < 65 && !good.is_empty() {
            // A duplicate of a known-good earlier cell under a fresh id
            // (and possibly another tenant): exercises coalescing and
            // cross-tenant cache hits. Only good cells are duplicated —
            // a failed cell is forgotten, so whether its duplicate
            // coalesces or recomputes would depend on worker timing.
            let id = format!("d{i}");
            let tenant = (*rng.pick(&TENANTS)).to_string();
            let fields = rng.pick(&good).clone();
            out.counts.dups += 1;
            (
                render_run(&id, &tenant, &fields).into_bytes(),
                LineMeta::Run { id, tenant },
            )
        } else if roll < 75 {
            let id = format!("s{i}");
            out.counts.stats += 1;
            (
                format!("{{\"id\":\"{id}\",\"op\":\"stats\"}}").into_bytes(),
                LineMeta::Stats { id },
            )
        } else if roll < 84 {
            out.counts.malformed += 1;
            ((*rng.pick(&malformed_pool)).to_vec(), LineMeta::Invalid)
        } else if roll < 89 {
            out.counts.oversize += 1;
            (vec![b'x'; CHAOS_LINE_CAP + 88], LineMeta::Invalid)
        } else if roll < 95 {
            out.counts.notutf8 += 1;
            (vec![0xff, 0xfe, 0x80, b'{', b'x'], LineMeta::Invalid)
        } else {
            out.counts.empty += 1;
            (b"   ".to_vec(), LineMeta::Empty)
        };
        if !matches!(meta, LineMeta::Empty) {
            out.nonempty.push(line.clone());
        }
        out.bytes.extend_from_slice(&line);
        out.bytes.push(b'\n');
        out.meta.push(meta);
    }

    // Always end on a stats barrier so the final counters land in the
    // stream (EOF would drain anyway, but this pins the counter bytes).
    let id = format!("s{ops}");
    let line = format!("{{\"id\":\"{id}\",\"op\":\"stats\"}}").into_bytes();
    out.counts.stats += 1;
    out.nonempty.push(line.clone());
    out.bytes.extend_from_slice(&line);
    out.bytes.push(b'\n');
    out.meta.push(LineMeta::Stats { id });
    out
}

fn chaos_cfg(workers: usize, journal: Option<std::path::PathBuf>) -> ServeConfig {
    ServeConfig {
        capacity: 1 << 16,
        tenant_quota: 1 << 16,
        workers,
        max_steps: 8,
        max_line_bytes: CHAOS_LINE_CAP,
        breaker: CHAOS_BREAKER,
        journal,
    }
}

/// One full daemon session over `input` with a fresh store.
fn serve_bytes(cfg: &ServeConfig, input: &[u8]) -> Result<String, String> {
    let store = MemStore::default();
    let mut out = Vec::new();
    serve_lines(cfg, &ChaosRunner, &store, input, &mut out)
        .map_err(|e| format!("daemon I/O failed: {e}"))?;
    String::from_utf8(out).map_err(|_| "daemon emitted non-UTF-8 output".to_string())
}

/// Extracts the echoed id of a rendered response (`None` for `null`).
fn response_id(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("{\"id\":")?;
    rest.strip_prefix('"')?.split('"').next()
}

/// Extracts the error kind of a rendered error response.
fn error_kind(line: &str) -> Option<&str> {
    line.split("\"error\":\"").nth(1)?.split('"').next()
}

/// Invariant 1: every id exactly once, every invalid line one null-id
/// error, nothing extra.
fn check_exactly_once(gen: &GeneratedStream, output: &str) -> Result<(), String> {
    let mut id_counts: HashMap<&str, usize> = HashMap::new();
    let mut nulls = 0usize;
    let mut total = 0usize;
    for line in output.lines() {
        total += 1;
        match response_id(line) {
            Some(id) => *id_counts.entry(id).or_insert(0) += 1,
            None => nulls += 1,
        }
    }
    let mut expected_nulls = 0usize;
    let mut expected_total = 0usize;
    for meta in &gen.meta {
        match meta {
            LineMeta::Run { id, .. } | LineMeta::Stats { id } => {
                expected_total += 1;
                if id_counts.get(id.as_str()) != Some(&1) {
                    return Err(format!(
                        "id `{id}` got {} responses, expected exactly 1",
                        id_counts.get(id.as_str()).copied().unwrap_or(0)
                    ));
                }
            }
            LineMeta::Invalid => {
                expected_total += 1;
                expected_nulls += 1;
            }
            LineMeta::Empty => {}
        }
    }
    if nulls != expected_nulls {
        return Err(format!(
            "{nulls} null-id responses, expected {expected_nulls}"
        ));
    }
    if total != expected_total {
        return Err(format!("{total} responses, expected {expected_total}"));
    }
    Ok(())
}

/// Invariant 3: replay the response stream through a reference breaker
/// and confirm every admission/rejection the daemon made. Works because
/// responses are emitted in submission order with `stats` responses
/// marking the drain barriers where outcomes are observed.
fn check_breaker_reference(gen: &GeneratedStream, output: &str) -> Result<(), String> {
    let tenant_of: HashMap<&str, &str> = gen
        .meta
        .iter()
        .filter_map(|m| match m {
            LineMeta::Run { id, tenant } => Some((id.as_str(), tenant.as_str())),
            _ => None,
        })
        .collect();
    let mut reference = BreakerSet::new(CHAOS_BREAKER);
    // Outcomes awaiting the next barrier: (tenant, ok, probe).
    let mut pending: Vec<(String, bool, bool)> = Vec::new();
    for line in output.lines() {
        if line.contains("\"stats\":{") {
            for (t, ok, probe) in pending.drain(..) {
                reference.observe(&t, ok, probe);
            }
            continue;
        }
        let Some(id) = response_id(line) else {
            continue; // null-id protocol errors never reach the breaker
        };
        let Some(&tenant) = tenant_of.get(id) else {
            return Err(format!("response for unknown id `{id}`"));
        };
        if line.contains("\"status\":\"ok\"") {
            if line.contains("\"cache\":\"hit\"") {
                continue; // hits and coalescers bypass the breaker
            }
            match reference.admit(tenant) {
                Admission::Reject => {
                    return Err(format!(
                        "daemon computed `{id}` but the reference breaker rejects"
                    ))
                }
                adm => pending.push((tenant.to_string(), true, adm == Admission::AdmitProbe)),
            }
            continue;
        }
        match error_kind(line) {
            Some("breaker_open") => {
                if reference.admit(tenant) != Admission::Reject {
                    return Err(format!(
                        "daemon rejected `{id}` with breaker_open but the reference admits"
                    ));
                }
            }
            Some("execution_failed" | "deadline_exceeded") => match reference.admit(tenant) {
                Admission::Reject => {
                    return Err(format!(
                        "daemon ran `{id}` to failure but the reference breaker rejects"
                    ))
                }
                adm => pending.push((tenant.to_string(), false, adm == Admission::AdmitProbe)),
            },
            Some("bad_request" | "malformed" | "unknown_field") => {}
            Some("over_capacity" | "over_quota") => {
                // Chaos capacity is unbounded; reaching here means the
                // schedule changed — still mirror the daemon faithfully.
                match reference.admit(tenant) {
                    Admission::Reject => {
                        return Err(format!(
                            "daemon queue-rejected `{id}` but the reference breaker rejects"
                        ))
                    }
                    Admission::AdmitProbe => reference.probe_aborted(tenant),
                    Admission::Admit => {}
                }
            }
            other => return Err(format!("unclassifiable response for `{id}`: {other:?}")),
        }
    }
    for (t, ok, probe) in pending {
        reference.observe(&t, ok, probe);
    }
    Ok(())
}

/// Byte offsets of complete journal-record boundaries, in order.
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut offs = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if len == 0 || bytes.len() - pos - 8 < len {
            break;
        }
        pos += 8 + len;
        offs.push(pos);
    }
    offs
}

/// Invariant 4, one cycle: truncate the full journal at `cut` bytes
/// (simulating a crash at that write), recover, serve the remaining
/// live input, and demand `delivered ++ recovered-output` equals the
/// uncrashed stream.
fn recovery_cycle(
    full_journal: &[u8],
    cut: usize,
    gen: &GeneratedStream,
    expect: &str,
    tag: &str,
    seed: u64,
) -> Result<(), String> {
    let path = journal::scratch_path(tag, seed);
    let result = (|| {
        std::fs::write(&path, &full_journal[..cut])
            .map_err(|e| format!("writing truncated journal: {e}"))?;
        let rec =
            journal::recover(&path).map_err(|e| format!("recovering truncated journal: {e}"))?;
        let consumed = rec.inputs.len();
        let mut live = Vec::new();
        for line in &gen.nonempty[consumed..] {
            live.extend_from_slice(line);
            live.push(b'\n');
        }
        let out2 = serve_bytes(&chaos_cfg(0, Some(path.clone())), &live)?;
        let mut stitched = String::new();
        for r in &rec.responses {
            stitched.push_str(r);
            stitched.push('\n');
        }
        stitched.push_str(&out2);
        if stitched != expect {
            return Err(format!(
                "cycle {tag} (cut {cut}): delivered ++ recovered output diverges from the \
                 uncrashed stream"
            ));
        }
        // After recovery the journal is complete again: it must replay
        // the whole session on its own.
        let full = journal::recover(&path).map_err(|e| format!("re-reading journal: {e}"))?;
        let replayed: String = full
            .responses
            .iter()
            .flat_map(|r| [r.as_str(), "\n"])
            .collect();
        if replayed != expect {
            return Err(format!(
                "cycle {tag}: completed journal does not replay the uncrashed stream"
            ));
        }
        Ok(())
    })();
    let _ = std::fs::remove_file(&path);
    result
}

/// Everything one chaos run measured; [`fmt::Display`] renders the
/// deterministic summary `repro chaos` prints (and CI byte-diffs).
pub struct ChaosSummary {
    /// The seed the schedule was generated from.
    pub seed: u64,
    /// Requested op count (lines before the closing stats barrier).
    pub ops: usize,
    /// Generated lines: fresh runs / duplicates / stats barriers.
    pub runs: usize,
    /// Duplicated run lines (cache-hit / coalescing pressure).
    pub dups: usize,
    /// Stats barrier lines (including the closing one).
    pub stats: usize,
    /// Malformed, oversized, and non-UTF-8 lines.
    pub invalid: usize,
    /// Blank lines (no response expected).
    pub empty: usize,
    /// Total response lines in the uncrashed stream.
    pub responses: usize,
    /// Successful run responses / cache hits among them.
    pub ok: usize,
    /// Cache-hit responses.
    pub cache_hits: usize,
    /// `execution_failed` responses (runner panics).
    pub execution_failed: usize,
    /// `deadline_exceeded` responses.
    pub deadline_exceeded: usize,
    /// `breaker_open` rejections.
    pub breaker_open: usize,
    /// Kill-restart recovery cycles verified (last one torn mid-record).
    pub recovery_cycles: usize,
}

impl fmt::Display for ChaosSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "chaos seed={} ops={}", self.seed, self.ops)?;
        writeln!(
            f,
            "lines: runs={} dups={} stats={} invalid={} empty={}",
            self.runs, self.dups, self.stats, self.invalid, self.empty
        )?;
        writeln!(
            f,
            "responses: total={} ok={} cache_hits={} execution_failed={} deadline_exceeded={} \
             breaker_open={}",
            self.responses,
            self.ok,
            self.cache_hits,
            self.execution_failed,
            self.deadline_exceeded,
            self.breaker_open
        )?;
        writeln!(
            f,
            "verified: exactly-once, breaker-reference, workers 1/2/4 byte-identical, \
             {} recovery cycles (1 torn), mid-line disconnect",
            self.recovery_cycles
        )?;
        write!(f, "chaos ok")
    }
}

/// Runs the whole harness for `(seed, ops)`.
///
/// # Errors
///
/// A description of the first invariant violation found.
pub fn run_chaos(seed: u64, ops: usize) -> Result<ChaosSummary, String> {
    let gen = generate(seed, ops.max(1));
    let mut rng = Rng::new(seed ^ 0x9e37_79b9_7f4a_7c15);

    // Baseline (workers from the environment, like production).
    let baseline = serve_bytes(&chaos_cfg(0, None), &gen.bytes)?;
    check_exactly_once(&gen, &baseline)?;
    check_breaker_reference(&gen, &baseline)?;

    // Invariant 2: explicit worker counts must not show through.
    for workers in [1usize, 2, 4] {
        let out = serve_bytes(&chaos_cfg(workers, None), &gen.bytes)?;
        if out != baseline {
            return Err(format!(
                "output under {workers} workers diverges from the baseline"
            ));
        }
    }

    // Uncrashed journaled session: same bytes out, full journal on disk.
    let full_path = journal::scratch_path("chaos-full", seed);
    let _ = std::fs::remove_file(&full_path);
    let journaled = serve_bytes(&chaos_cfg(0, Some(full_path.clone())), &gen.bytes)?;
    let full_journal = std::fs::read(&full_path).map_err(|e| format!("reading journal: {e}"));
    let _ = std::fs::remove_file(&full_path);
    let full_journal = full_journal?;
    if journaled != baseline {
        return Err("journaling changed the response stream".to_string());
    }

    // Invariant 4: kill-restart at seeded record boundaries, plus one
    // torn (mid-record) tail.
    let boundaries = record_boundaries(&full_journal);
    if boundaries.is_empty() {
        return Err("journal recorded nothing".to_string());
    }
    let mut cycles = 0usize;
    for c in 0..3usize {
        let cut = boundaries[rng.below(boundaries.len() as u64) as usize];
        recovery_cycle(
            &full_journal,
            cut,
            &gen,
            &baseline,
            &format!("cut{c}"),
            seed,
        )?;
        cycles += 1;
    }
    let torn_base = boundaries[rng.below(boundaries.len() as u64) as usize];
    let torn_cut = (torn_base + 1 + rng.below(6) as usize).min(full_journal.len());
    recovery_cycle(&full_journal, torn_cut, &gen, &baseline, "torn", seed)?;
    cycles += 1;

    // Invariant 5: a connection dying mid-line still drains cleanly and
    // deterministically.
    let cut = 1 + rng.below(gen.bytes.len() as u64 - 1) as usize;
    let partial_a = serve_bytes(&chaos_cfg(0, None), &gen.bytes[..cut])?;
    let partial_b = serve_bytes(&chaos_cfg(0, None), &gen.bytes[..cut])?;
    if partial_a != partial_b {
        return Err("mid-line disconnect replay diverged".to_string());
    }

    // Deterministic tallies for the printed summary.
    let mut summary = ChaosSummary {
        seed,
        ops: ops.max(1),
        runs: gen.counts.runs,
        dups: gen.counts.dups,
        stats: gen.counts.stats,
        invalid: gen.counts.malformed + gen.counts.oversize + gen.counts.notutf8,
        empty: gen.counts.empty,
        responses: baseline.lines().count(),
        ok: 0,
        cache_hits: 0,
        execution_failed: 0,
        deadline_exceeded: 0,
        breaker_open: 0,
        recovery_cycles: cycles,
    };
    for line in baseline.lines() {
        if line.contains("\"status\":\"ok\"") && !line.contains("\"stats\":{") {
            summary.ok += 1;
            if line.contains("\"cache\":\"hit\"") {
                summary.cache_hits += 1;
            }
        }
        match error_kind(line) {
            Some("execution_failed") => summary.execution_failed += 1,
            Some("deadline_exceeded") => summary.deadline_exceeded += 1,
            Some("breaker_open") => summary.breaker_open += 1,
            _ => {}
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_chaos_run_upholds_every_invariant() {
        let summary = run_chaos(7, 80).expect("chaos invariants");
        assert!(summary.responses > 0);
        assert!(
            summary.execution_failed > 0,
            "schedule should panic runners"
        );
        assert!(summary.recovery_cycles == 4);
    }

    #[test]
    fn chaos_summaries_are_deterministic() {
        let a = run_chaos(3, 60).expect("chaos a").to_string();
        let b = run_chaos(3, 60).expect("chaos b").to_string();
        assert_eq!(a, b);
    }

    #[test]
    fn chaos_schedules_trip_breakers_given_enough_ops() {
        // With threshold 3 and a 20% panic mix, a few hundred ops are
        // plenty to open a breaker; this pins that `breaker_open`
        // rejections actually occur and still satisfy the reference.
        let summary = run_chaos(1, 400).expect("chaos invariants");
        assert!(summary.breaker_open > 0, "no breaker ever opened");
        assert!(summary.deadline_exceeded > 0, "no deadline ever tripped");
    }
}
