//! Deterministic load generator for the daemon.
//!
//! [`generate`] expands a seed into a mixed multi-tenant request trace:
//! a few cheap models across all six presets, occasional fault plans,
//! permuted tie-breaks, and multi-model partitioned sweeps, with a
//! `stats` barrier inserted every [`BARRIER_EVERY`] lines. The barrier
//! cadence is chosen so the default [`crate::daemon::ServeConfig`]
//! never rejects a trace job (at most `BARRIER_EVERY` admission slots
//! can be held between barriers, and `BARRIER_EVERY` ≤ the per-tenant
//! quota ≤ the capacity), which is what lets `repro serve --load` and
//! the CI smoke demand zero failed jobs. Same seed, same trace, byte
//! for byte — replaying a trace twice through a cold daemon must
//! byte-diff clean.

use std::fmt::Write as _;

/// Lines between `stats` barriers (also the bound on admission slots a
/// trace can hold at once).
pub const BARRIER_EVERY: usize = 64;

/// Models the generator draws from — the cheap end of the evaluation
/// set, so thousand-job traces stay fast.
pub const MODELS: [&str; 3] = ["alex", "dcgan", "lstm"];

/// Preset names the generator draws from (the full §VI grid).
pub const PRESETS: [&str; 6] = ["cpu", "progr", "fixed", "hetero", "bare", "rc"];

/// xorshift64* step — the same splittable-PRNG recipe the fuzz harness
/// uses; good enough to decorrelate trace fields, and dependency-free.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Draws uniformly from `0..n`.
fn pick(state: &mut u64, n: usize) -> usize {
    (next(state) % n as u64) as usize
}

/// Generates a deterministic trace of `jobs` run requests spread over
/// `tenants` tenants, with a `stats` barrier every [`BARRIER_EVERY`]
/// lines and a final one, as protocol request lines.
pub fn generate(jobs: usize, seed: u64, tenants: usize) -> Vec<String> {
    let tenants = tenants.max(1);
    let mut rng = seed ^ 0x9E37_79B9_7F4A_7C15;
    // Avoid the xorshift fixed point at zero.
    if rng == 0 {
        rng = 0x853C_49E6_748F_EA9B;
    }
    let mut lines = Vec::with_capacity(jobs + jobs / BARRIER_EVERY + 1);
    let mut barriers = 0usize;
    for j in 0..jobs {
        if j > 0 && j % BARRIER_EVERY == 0 {
            lines.push(format!("{{\"id\":\"b{barriers}\",\"op\":\"stats\"}}"));
            barriers += 1;
        }
        let mut line = String::from("{");
        let _ = write!(
            line,
            "\"id\":\"j{j}\",\"tenant\":\"t{}\",\"preset\":\"{}\",\"steps\":{}",
            pick(&mut rng, tenants),
            PRESETS[pick(&mut rng, PRESETS.len())],
            1 + pick(&mut rng, 2),
        );
        // ~15% of jobs are two-model sweeps, half of them partitioned.
        if pick(&mut rng, 100) < 15 {
            let a = pick(&mut rng, MODELS.len());
            let b = pick(&mut rng, MODELS.len());
            let _ = write!(line, ",\"models\":[\"{}\",\"{}\"]", MODELS[a], MODELS[b]);
            if pick(&mut rng, 2) == 1 {
                line.push_str(",\"partitioned\":true");
            }
        } else {
            let _ = write!(
                line,
                ",\"model\":\"{}\"",
                MODELS[pick(&mut rng, MODELS.len())]
            );
        }
        let _ = write!(line, ",\"priority\":{}", pick(&mut rng, 10));
        // ~10% run under a seeded fault plan.
        if pick(&mut rng, 100) < 10 {
            let _ = write!(
                line,
                ",\"faults\":{{\"seed\":{},\"rate\":{}}}",
                pick(&mut rng, 4),
                [0.5, 1.0][pick(&mut rng, 2)],
            );
        }
        // ~10% use a permuted tie-break order.
        if pick(&mut rng, 100) < 10 {
            let _ = write!(line, ",\"tie\":{{\"permuted\":{}}}", pick(&mut rng, 3));
        }
        line.push('}');
        lines.push(line);
    }
    lines.push(format!("{{\"id\":\"b{barriers}\",\"op\":\"stats\"}}"));
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, Op};

    #[test]
    fn traces_are_deterministic_and_parse() {
        let a = generate(300, 42, 3);
        let b = generate(300, 42, 3);
        assert_eq!(a, b);
        assert_ne!(a, generate(300, 43, 3));
        let mut runs = 0;
        let mut barriers = 0;
        for line in &a {
            let req = parse_request(line).expect("trace lines parse");
            match req.op {
                Op::Run => runs += 1,
                Op::Stats => barriers += 1,
                Op::Shutdown => panic!("loadgen never emits control lines"),
            }
        }
        assert_eq!(runs, 300);
        assert_eq!(barriers, 300 / BARRIER_EVERY + 1);
        assert!(a.last().unwrap().contains("stats"));
    }

    #[test]
    fn barrier_cadence_never_overruns_default_quota() {
        let cfg = crate::daemon::ServeConfig::default();
        assert!(BARRIER_EVERY <= cfg.tenant_quota);
        assert!(BARRIER_EVERY <= cfg.capacity);
    }

    #[test]
    fn traces_mix_tenants_and_features() {
        let text = generate(400, 7, 3).join("\n");
        for needle in [
            "\"tenant\":\"t0\"",
            "\"tenant\":\"t2\"",
            "\"faults\":",
            "\"tie\":{\"permuted\":",
            "\"models\":[",
            "\"partitioned\":true",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
