//! Eager executor: runs a training-step graph with real numeric kernels.
//!
//! The simulator never needs numeric values — only shapes — but a credible
//! TensorFlow substitute must actually train. The executor interprets the
//! graph in topological order, holds parameters (and Adam moments) across
//! steps, and is exercised by the functional-training examples and tests.

use crate::graph::Graph;
use crate::node::{OpKind, OpNode, TensorRole};
use pim_common::ids::TensorId;
use pim_common::{PimError, Result};
use pim_tensor::init::{glorot_uniform, seeded_rng};
use pim_tensor::ops::optimizer::{apply_adam, apply_sgd, AdamParams, AdamState};
use pim_tensor::ops::{
    activation, bias, conv, elementwise, embedding, matmul, norm, pool, softmax,
};
use pim_tensor::{Shape, Tensor};
use std::collections::HashMap;

/// A runtime value flowing through the executor.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A dense tensor.
    Tensor(Tensor),
    /// Integer indices (labels, pooling argmax, embedding ids).
    Indices(Vec<usize>),
    /// A scalar (loss, update-done tokens).
    Scalar(f32),
}

impl Value {
    /// Unwraps a tensor value.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::InvalidArgument`] for non-tensor values.
    pub fn as_tensor(&self) -> Result<&Tensor> {
        match self {
            Value::Tensor(t) => Ok(t),
            other => Err(PimError::invalid(
                "Value::as_tensor",
                format!("expected tensor, got {other:?}"),
            )),
        }
    }

    /// Unwraps an index list.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::InvalidArgument`] for non-index values.
    pub fn as_indices(&self) -> Result<&[usize]> {
        match self {
            Value::Indices(v) => Ok(v),
            other => Err(PimError::invalid(
                "Value::as_indices",
                format!("expected indices, got {other:?}"),
            )),
        }
    }

    /// Unwraps a scalar.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::InvalidArgument`] for non-scalar values.
    pub fn as_scalar(&self) -> Result<f32> {
        match self {
            Value::Scalar(s) => Ok(*s),
            other => Err(PimError::invalid(
                "Value::as_scalar",
                format!("expected scalar, got {other:?}"),
            )),
        }
    }
}

/// Outputs of one executed step.
#[derive(Debug)]
pub struct StepResult {
    env: HashMap<TensorId, Value>,
}

impl StepResult {
    /// The value a tensor took during the step.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::UnknownId`] when the tensor was never produced.
    pub fn value(&self, id: TensorId) -> Result<&Value> {
        self.env.get(&id).ok_or(PimError::UnknownId {
            kind: "tensor",
            index: id.index(),
        })
    }

    /// The first scalar-role tensor named `*loss*`, if any — convenience for
    /// training loops.
    pub fn loss(&self, graph: &Graph) -> Option<f32> {
        graph
            .tensors()
            .iter()
            .find(|t| t.role == TensorRole::Scalar && t.name.contains("loss"))
            .and_then(|t| self.env.get(&t.id))
            .and_then(|v| v.as_scalar().ok())
    }
}

/// The eager executor holding persistent training state.
///
/// # Examples
///
/// See `examples/train_mnist_cnn.rs` for an end-to-end training loop.
#[derive(Debug)]
pub struct Executor {
    params: HashMap<TensorId, Tensor>,
    adam: HashMap<TensorId, AdamState>,
    hyper: AdamParams,
    sgd_learning_rate: f32,
}

impl Executor {
    /// Creates an executor for `graph`, initializing every parameter tensor
    /// with Glorot-uniform values from a deterministic seed.
    ///
    /// # Panics
    ///
    /// In debug builds — or with the `verify` feature enabled — panics if
    /// the graph fails [`Graph::validate`]: an ill-formed graph would
    /// otherwise only surface as a confusing mid-step execution error.
    pub fn new(graph: &Graph, seed: u64) -> Self {
        #[cfg(any(debug_assertions, feature = "verify"))]
        if let Err(err) = graph.validate() {
            panic!("executor given an ill-formed graph: {err}");
        }
        let mut rng = seeded_rng(seed);
        let mut params = HashMap::new();
        for info in graph.tensors() {
            if info.role == TensorRole::Parameter {
                let dims = info.shape.dims();
                let (fan_in, fan_out) = match dims {
                    [f, c, kh, kw] => (c * kh * kw, f * kh * kw),
                    [i, o] => (*i, *o),
                    _ => (info.shape.numel(), info.shape.numel()),
                };
                params.insert(
                    info.id,
                    glorot_uniform(info.shape.clone(), fan_in.max(1), fan_out.max(1), &mut rng),
                );
            }
        }
        Executor {
            params,
            adam: HashMap::new(),
            hyper: AdamParams::default(),
            sgd_learning_rate: 0.05,
        }
    }

    /// Overrides the Adam hyperparameters.
    pub fn set_adam(&mut self, hyper: AdamParams) {
        self.hyper = hyper;
    }

    /// Overrides the SGD learning rate.
    pub fn set_sgd_learning_rate(&mut self, lr: f32) {
        self.sgd_learning_rate = lr;
    }

    /// Reads a parameter's current value.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::UnknownId`] for tensors that are not parameters.
    pub fn parameter(&self, id: TensorId) -> Result<&Tensor> {
        self.params.get(&id).ok_or(PimError::UnknownId {
            kind: "parameter",
            index: id.index(),
        })
    }

    /// Runs one training step: executes every op in topological order with
    /// the given feeds (inputs, labels, dropout masks).
    ///
    /// # Errors
    ///
    /// Returns the first kernel failure, or a missing-feed error.
    pub fn run_step(
        &mut self,
        graph: &Graph,
        feeds: HashMap<TensorId, Value>,
    ) -> Result<StepResult> {
        let mut env = feeds;
        for (&id, tensor) in &self.params {
            env.insert(id, Value::Tensor(tensor.clone()));
        }
        for op_id in graph.topo_order()? {
            let op = graph.op(op_id)?;
            self.execute_op(graph, op, &mut env)?;
        }
        Ok(StepResult { env })
    }

    fn fetch<'e>(env: &'e HashMap<TensorId, Value>, op: &OpNode, idx: usize) -> Result<&'e Value> {
        let tid = *op.inputs.get(idx).ok_or_else(|| {
            PimError::invalid(
                "Executor",
                format!("{} missing input {idx}", op.kind.tf_name()),
            )
        })?;
        env.get(&tid).ok_or_else(|| {
            PimError::invalid(
                "Executor",
                format!("{} input {tid} not yet produced", op.kind.tf_name()),
            )
        })
    }

    fn store(
        env: &mut HashMap<TensorId, Value>,
        op: &OpNode,
        idx: usize,
        value: Value,
    ) -> Result<()> {
        let tid = *op.outputs.get(idx).ok_or_else(|| {
            PimError::invalid(
                "Executor",
                format!("{} missing output {idx}", op.kind.tf_name()),
            )
        })?;
        env.insert(tid, value);
        Ok(())
    }

    fn output_shape(graph: &Graph, op: &OpNode, idx: usize) -> Result<Shape> {
        Ok(graph.tensor(op.outputs[idx])?.shape.clone())
    }

    #[allow(clippy::too_many_lines)]
    fn execute_op(
        &mut self,
        graph: &Graph,
        op: &OpNode,
        env: &mut HashMap<TensorId, Value>,
    ) -> Result<()> {
        match op.kind {
            OpKind::Conv2D(geom) => {
                let out = conv::conv2d(
                    Self::fetch(env, op, 0)?.as_tensor()?,
                    Self::fetch(env, op, 1)?.as_tensor()?,
                    geom,
                )?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::Conv2DBackpropFilter(geom) => {
                let filter_shape = Self::output_shape(graph, op, 0)?;
                let out = conv::conv2d_backprop_filter(
                    Self::fetch(env, op, 0)?.as_tensor()?,
                    Self::fetch(env, op, 1)?.as_tensor()?,
                    &filter_shape,
                    geom,
                )?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::Conv2DBackpropInput(geom) => {
                let input_shape = Self::output_shape(graph, op, 0)?;
                let out = conv::conv2d_backprop_input(
                    &input_shape,
                    Self::fetch(env, op, 0)?.as_tensor()?,
                    Self::fetch(env, op, 1)?.as_tensor()?,
                    geom,
                )?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::Conv2DTranspose(geom) => {
                let out = conv::conv2d_transpose(
                    Self::fetch(env, op, 0)?.as_tensor()?,
                    Self::fetch(env, op, 1)?.as_tensor()?,
                    geom,
                )?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::MatMul(t) => {
                let out = matmul::matmul(
                    Self::fetch(env, op, 0)?.as_tensor()?,
                    Self::fetch(env, op, 1)?.as_tensor()?,
                    t,
                )?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::BiasAdd => {
                let out = bias::bias_add(
                    Self::fetch(env, op, 0)?.as_tensor()?,
                    Self::fetch(env, op, 1)?.as_tensor()?,
                )?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::BiasAddGrad => {
                let out = bias::bias_add_grad(Self::fetch(env, op, 0)?.as_tensor()?)?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::Activation(a) => {
                let out = activation::activate(Self::fetch(env, op, 0)?.as_tensor()?, a)?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::ActivationGrad(a) => {
                let out = activation::activate_grad(
                    Self::fetch(env, op, 0)?.as_tensor()?,
                    Self::fetch(env, op, 1)?.as_tensor()?,
                    Self::fetch(env, op, 2)?.as_tensor()?,
                    a,
                )?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::MaxPool(geom) => {
                let (out, argmax) = pool::max_pool(Self::fetch(env, op, 0)?.as_tensor()?, geom)?;
                Self::store(env, op, 0, Value::Tensor(out))?;
                Self::store(env, op, 1, Value::Indices(argmax))
            }
            OpKind::MaxPoolGrad(_) => {
                let input_shape = Self::output_shape(graph, op, 0)?;
                let grad = Self::fetch(env, op, 0)?.as_tensor()?.clone();
                let argmax = Self::fetch(env, op, 1)?.as_indices()?.to_vec();
                let out = pool::max_pool_grad(&input_shape, &grad, &argmax)?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::AvgPool(geom) => {
                let out = pool::avg_pool(Self::fetch(env, op, 0)?.as_tensor()?, geom)?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::AvgPoolGrad(geom) => {
                let input_shape = Self::output_shape(graph, op, 0)?;
                let grad = Self::fetch(env, op, 0)?.as_tensor()?;
                let out = avg_pool_grad(&input_shape, grad, geom)?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::SoftmaxXent => {
                let logits = Self::fetch(env, op, 0)?.as_tensor()?;
                let labels = Self::fetch(env, op, 1)?.as_indices()?;
                let (loss, grad) = softmax::softmax_cross_entropy(logits, labels)?;
                Self::store(env, op, 0, Value::Scalar(loss))?;
                Self::store(env, op, 1, Value::Tensor(grad))
            }
            OpKind::ApplyAdam => {
                let param_id = op.inputs[0];
                let grad = Self::fetch(env, op, 1)?.as_tensor()?.clone();
                let param = self.params.get_mut(&param_id).ok_or(PimError::UnknownId {
                    kind: "parameter",
                    index: param_id.index(),
                })?;
                let state = self
                    .adam
                    .entry(param_id)
                    .or_insert_with(|| AdamState::new(param.shape().clone()));
                apply_adam(param, &grad, state, self.hyper)?;
                Self::store(env, op, 0, Value::Scalar(0.0))
            }
            OpKind::ApplySgd => {
                let param_id = op.inputs[0];
                let grad = Self::fetch(env, op, 1)?.as_tensor()?.clone();
                let param = self.params.get_mut(&param_id).ok_or(PimError::UnknownId {
                    kind: "parameter",
                    index: param_id.index(),
                })?;
                apply_sgd(param, &grad, self.sgd_learning_rate)?;
                Self::store(env, op, 0, Value::Scalar(0.0))
            }
            OpKind::Binary(b) => {
                let out = elementwise::binary(
                    Self::fetch(env, op, 0)?.as_tensor()?,
                    Self::fetch(env, op, 1)?.as_tensor()?,
                    b,
                )?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::Slice { start, len } => {
                let out = elementwise::slice(Self::fetch(env, op, 0)?.as_tensor()?, start, len)?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::Concat => {
                let mut parts = Vec::with_capacity(op.inputs.len());
                for i in 0..op.inputs.len() {
                    parts.push(Self::fetch(env, op, i)?.as_tensor()?.clone());
                }
                let refs: Vec<&Tensor> = parts.iter().collect();
                Self::store(env, op, 0, Value::Tensor(elementwise::concat(&refs)))
            }
            OpKind::Dropout => {
                let out = elementwise::dropout_apply(
                    Self::fetch(env, op, 0)?.as_tensor()?,
                    Self::fetch(env, op, 1)?.as_tensor()?,
                )?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::BatchNorm => {
                let (out, mean, var) =
                    norm::batch_norm(Self::fetch(env, op, 0)?.as_tensor()?, 1e-5)?;
                Self::store(env, op, 0, Value::Tensor(out))?;
                let c = mean.len();
                Self::store(
                    env,
                    op,
                    1,
                    Value::Tensor(Tensor::from_vec(Shape::new(vec![c]), mean)?),
                )?;
                Self::store(
                    env,
                    op,
                    2,
                    Value::Tensor(Tensor::from_vec(Shape::new(vec![c]), var)?),
                )
            }
            OpKind::BatchNormGrad => {
                let grad = Self::fetch(env, op, 0)?.as_tensor()?;
                let input = Self::fetch(env, op, 1)?.as_tensor()?;
                let out = batch_norm_grad(grad, input, 1e-5)?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::Lrn => {
                let out = norm::lrn(Self::fetch(env, op, 0)?.as_tensor()?)?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::LrnGrad => {
                // Approximation: the dominant diagonal term of the LRN
                // Jacobian (grad scaled by the same denominator as the
                // forward pass); the cross-channel terms are dropped.
                let grad = Self::fetch(env, op, 0)?.as_tensor()?;
                let input = Self::fetch(env, op, 1)?.as_tensor()?;
                let fwd = norm::lrn(input)?;
                let out = Tensor::from_fn(grad.shape().clone(), |i| {
                    let x = input.data()[i];
                    if x.abs() < 1e-12 {
                        grad.data()[i]
                    } else {
                        grad.data()[i] * (fwd.data()[i] / x)
                    }
                });
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::EmbeddingLookup => {
                let table = Self::fetch(env, op, 0)?.as_tensor()?;
                let indices = Self::fetch(env, op, 1)?.as_indices()?;
                let out = embedding::embedding_lookup(table, indices)?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::EmbeddingGrad => {
                let table_shape = Self::output_shape(graph, op, 0)?;
                let grad = Self::fetch(env, op, 0)?.as_tensor()?.clone();
                let indices = Self::fetch(env, op, 1)?.as_indices()?.to_vec();
                let out = embedding::embedding_grad(&table_shape, &grad, &indices)?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
            OpKind::Reshape => {
                let shape = Self::output_shape(graph, op, 0)?;
                let out = Self::fetch(env, op, 0)?
                    .as_tensor()?
                    .clone()
                    .reshaped(shape)?;
                Self::store(env, op, 0, Value::Tensor(out))
            }
        }
    }
}

/// Distributes each output gradient uniformly over its pooling window.
fn avg_pool_grad(
    input_shape: &Shape,
    grad_output: &Tensor,
    geom: pim_tensor::ConvGeometry,
) -> Result<Tensor> {
    let (n, c, h, w) = input_shape.as_nchw()?;
    let (gn, gc, oh, ow) = grad_output.shape().as_nchw()?;
    if gn != n || gc != c {
        return Err(PimError::ShapeMismatch {
            context: "avg_pool_grad",
            expected: vec![n, c],
            actual: vec![gn, gc],
        });
    }
    let window = geom.window_len() as f32;
    let mut grad_input = Tensor::zeros(input_shape.clone());
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let share = grad_output.at4(ni, ci, oy, ox) / window;
                    for ky in 0..geom.kernel_h {
                        for kx in 0..geom.kernel_w {
                            let iy = (oy * geom.stride_h + ky) as isize - geom.pad_h as isize;
                            let ix = (ox * geom.stride_w + kx) as isize - geom.pad_w as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                grad_input.add4(ni, ci, iy as usize, ix as usize, share);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(grad_input)
}

/// Batch-normalization input gradient (no scale/shift parameters):
/// `dx = inv_std/N * (N*dy - sum(dy) - x_hat * sum(dy * x_hat))` per channel.
fn batch_norm_grad(grad_output: &Tensor, input: &Tensor, epsilon: f32) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let count = (n * h * w) as f32;
    let (_, mean, var) = norm::batch_norm(input, epsilon)?;
    let mut out = Tensor::zeros(input.shape().clone());
    for ci in 0..c {
        let inv_std = 1.0 / (var[ci] + epsilon).sqrt();
        let mut sum_dy = 0.0f32;
        let mut sum_dy_xhat = 0.0f32;
        for ni in 0..n {
            for hi in 0..h {
                for wi in 0..w {
                    let dy = grad_output.at4(ni, ci, hi, wi);
                    let xhat = (input.at4(ni, ci, hi, wi) - mean[ci]) * inv_std;
                    sum_dy += dy;
                    sum_dy_xhat += dy * xhat;
                }
            }
        }
        for ni in 0..n {
            for hi in 0..h {
                for wi in 0..w {
                    let dy = grad_output.at4(ni, ci, hi, wi);
                    let xhat = (input.at4(ni, ci, hi, wi) - mean[ci]) * inv_std;
                    let dx = inv_std / count * (count * dy - sum_dy - xhat * sum_dy_xhat);
                    out.set4(ni, ci, hi, wi, dx);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{NetBuilder, OptimizerKind};
    use pim_tensor::init::seeded_rng;
    use rand::RngExt;

    /// Builds a tiny CNN classifier and runs real training steps on a
    /// synthetic separable problem; the loss must drop.
    #[test]
    fn tiny_cnn_training_reduces_loss() {
        let mut net = NetBuilder::new("cnn");
        let input_id = net.input(8, 1, 6, 6);
        let x = net.conv2d(input_id, 4, 3, 1, 1).unwrap();
        let x = net.bias(x).unwrap();
        let x = net.relu(x).unwrap();
        let x = net.max_pool(x, 2, 2, 0).unwrap();
        let x = net.flatten(x).unwrap();
        let logits = net.dense(x, 2).unwrap();
        let graph = net.finish_classifier(logits, OptimizerKind::Adam).unwrap();

        let labels_id = graph
            .tensors()
            .iter()
            .find(|t| t.role == TensorRole::Labels)
            .unwrap()
            .id;
        let input_info = graph.tensor(input_id).unwrap().clone();

        let mut exec = Executor::new(&graph, 42);
        exec.set_adam(pim_tensor::ops::optimizer::AdamParams {
            learning_rate: 0.02,
            ..Default::default()
        });
        let mut rng = seeded_rng(7);
        let mut first_loss = None;
        let mut last_loss = 0.0f32;
        for _ in 0..40 {
            // Class 0: bright top half; class 1: bright bottom half.
            let labels: Vec<usize> = (0..8).map(|_| rng.random_range(0..2usize)).collect();
            let mut images = Tensor::zeros(input_info.shape.clone());
            for (i, &lab) in labels.iter().enumerate() {
                for hh in 0..6 {
                    for ww in 0..6 {
                        let bright = if lab == 0 { hh < 3 } else { hh >= 3 };
                        images.set4(i, 0, hh, ww, if bright { 1.0 } else { 0.0 });
                    }
                }
            }
            let mut feeds = HashMap::new();
            feeds.insert(input_id, Value::Tensor(images));
            feeds.insert(labels_id, Value::Indices(labels));
            let result = exec.run_step(&graph, feeds).unwrap();
            let loss = result.loss(&graph).unwrap();
            if first_loss.is_none() {
                first_loss = Some(loss);
            }
            last_loss = loss;
        }
        let first = first_loss.unwrap();
        assert!(
            last_loss < first * 0.6,
            "loss did not drop: {first} -> {last_loss}"
        );
    }

    #[test]
    fn missing_feed_is_reported() {
        let mut net = NetBuilder::new("m");
        let x = net.input_matrix(2, 4);
        let logits = net.dense(x, 2).unwrap();
        let graph = net.finish_classifier(logits, OptimizerKind::Sgd).unwrap();
        let mut exec = Executor::new(&graph, 0);
        let err = exec.run_step(&graph, HashMap::new());
        assert!(err.is_err());
    }

    #[test]
    fn value_accessors_enforce_kinds() {
        let v = Value::Scalar(1.0);
        assert!(v.as_tensor().is_err());
        assert!(v.as_indices().is_err());
        assert_eq!(v.as_scalar().unwrap(), 1.0);
    }

    #[test]
    fn batch_norm_grad_matches_finite_differences() {
        let input = Tensor::from_fn(Shape::new(vec![2, 1, 2, 2]), |i| ((i * 3) % 7) as f32 * 0.4);
        // Loss = sum(bn(x) * w) with w varying, so grad_out = w.
        let weights = Tensor::from_fn(input.shape().clone(), |i| ((i % 3) as f32) - 1.0);
        let analytic = batch_norm_grad(&weights, &input, 1e-5).unwrap();
        let eps = 1e-2f32;
        let loss = |x: &Tensor| -> f64 {
            let (y, _, _) = norm::batch_norm(x, 1e-5).unwrap();
            y.data()
                .iter()
                .zip(weights.data())
                .map(|(&a, &b)| f64::from(a * b))
                .sum()
        };
        for idx in 0..input.numel() {
            let mut plus = input.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = input.clone();
            minus.data_mut()[idx] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * f64::from(eps));
            let got = f64::from(analytic.data()[idx]);
            assert!(
                (numeric - got).abs() < 0.05,
                "bn grad[{idx}]: numeric {numeric} analytic {got}"
            );
        }
    }

    #[test]
    fn avg_pool_grad_spreads_uniformly() {
        let geom = pim_tensor::ConvGeometry::square(2, 2, 0);
        let grad_out = Tensor::full(Shape::new(vec![1, 1, 1, 1]), 4.0);
        let g = avg_pool_grad(&Shape::new(vec![1, 1, 2, 2]), &grad_out, geom).unwrap();
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }
}
