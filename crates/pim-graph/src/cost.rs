//! Cost dispatch: from a graph node to its analytic [`CostProfile`].

use crate::graph::Graph;
use crate::node::{OpKind, OpNode};
use pim_common::{PimError, Result};
use pim_tensor::cost::CostProfile;
use pim_tensor::ops::{
    activation, bias, conv, elementwise, embedding, matmul, norm, optimizer, pool, softmax,
};
use pim_tensor::{ConvGeometry, Shape};

fn input_shape<'g>(graph: &'g Graph, op: &OpNode, idx: usize) -> Result<&'g Shape> {
    let tid = *op.inputs.get(idx).ok_or_else(|| {
        PimError::invalid(
            "op_cost",
            format!("{} is missing input {idx}", op.kind.tf_name()),
        )
    })?;
    Ok(&graph.tensor(tid)?.shape)
}

fn output_shape<'g>(graph: &'g Graph, op: &OpNode, idx: usize) -> Result<&'g Shape> {
    let tid = *op.outputs.get(idx).ok_or_else(|| {
        PimError::invalid(
            "op_cost",
            format!("{} is missing output {idx}", op.kind.tf_name()),
        )
    })?;
    Ok(&graph.tensor(tid)?.shape)
}

/// Filter shape implied by a backprop-filter node: output channels from the
/// gradient, input channels from the input, spatial extent from the geometry.
fn implied_filter_shape(input: &Shape, grad_output: &Shape, geom: ConvGeometry) -> Result<Shape> {
    let (_, c, _, _) = input.as_nchw()?;
    let (_, f, _, _) = grad_output.as_nchw()?;
    Ok(Shape::new(vec![f, c, geom.kernel_h, geom.kernel_w]))
}

/// Input shape implied by a backprop-input node.
fn implied_input_shape(filter: &Shape, grad_output: &Shape, geom: ConvGeometry) -> Result<Shape> {
    let (_, c, _, _) = filter.as_nchw()?;
    let (n, _, oh, ow) = grad_output.as_nchw()?;
    let h = (oh - 1) * geom.stride_h + geom.kernel_h - 2 * geom.pad_h;
    let w = (ow - 1) * geom.stride_w + geom.kernel_w - 2 * geom.pad_w;
    Ok(Shape::new(vec![n, c, h, w]))
}

/// Computes the analytic cost profile of one graph node.
///
/// # Examples
///
/// ```
/// use pim_graph::cost::op_cost;
/// use pim_graph::graph::Graph;
/// use pim_graph::node::{OpKind, TensorRole};
/// use pim_tensor::ops::matmul::Transpose;
/// use pim_tensor::Shape;
///
/// # fn main() -> pim_common::Result<()> {
/// let mut g = Graph::new();
/// let a = g.add_tensor(Shape::new(vec![4, 8]), TensorRole::Input, "a");
/// let b = g.add_tensor(Shape::new(vec![8, 2]), TensorRole::Parameter, "b");
/// let c = g.add_tensor(Shape::new(vec![4, 2]), TensorRole::Activation, "c");
/// let id = g.add_op(OpKind::MatMul(Transpose::NONE), vec![a, b], vec![c])?;
/// let cost = op_cost(&g, g.op(id)?)?;
/// assert_eq!(cost.muls, (4 * 8 * 2) as f64);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns a shape or argument error when the node is malformed.
pub fn op_cost(graph: &Graph, op: &OpNode) -> Result<CostProfile> {
    match op.kind {
        OpKind::Conv2D(geom) => {
            conv::conv2d_cost(input_shape(graph, op, 0)?, input_shape(graph, op, 1)?, geom)
        }
        OpKind::Conv2DBackpropFilter(geom) => {
            let input = input_shape(graph, op, 0)?;
            let grad_out = input_shape(graph, op, 1)?;
            let filter = implied_filter_shape(input, grad_out, geom)?;
            conv::conv2d_backprop_filter_cost(input, &filter, geom)
        }
        OpKind::Conv2DBackpropInput(geom) => {
            let filter = input_shape(graph, op, 0)?;
            let grad_out = input_shape(graph, op, 1)?;
            let input = implied_input_shape(filter, grad_out, geom)?;
            conv::conv2d_backprop_input_cost(&input, filter, geom)
        }
        OpKind::Conv2DTranspose(geom) => conv::conv2d_transpose_cost(
            input_shape(graph, op, 0)?,
            input_shape(graph, op, 1)?,
            geom,
        ),
        OpKind::MatMul(t) => {
            matmul::matmul_cost(input_shape(graph, op, 0)?, input_shape(graph, op, 1)?, t)
        }
        OpKind::BiasAdd => bias::bias_add_cost(input_shape(graph, op, 0)?),
        OpKind::BiasAddGrad => bias::bias_add_grad_cost(input_shape(graph, op, 0)?),
        OpKind::Activation(a) => Ok(activation::activation_cost(input_shape(graph, op, 0)?, a)),
        OpKind::ActivationGrad(a) => Ok(activation::activation_grad_cost(
            input_shape(graph, op, 0)?,
            a,
        )),
        OpKind::MaxPool(geom) => pool::max_pool_cost(input_shape(graph, op, 0)?, geom),
        OpKind::MaxPoolGrad(geom) => pool::max_pool_grad_cost(output_shape(graph, op, 0)?, geom),
        OpKind::AvgPool(geom) => pool::avg_pool_cost(input_shape(graph, op, 0)?, geom),
        OpKind::AvgPoolGrad(geom) => {
            // Same scatter shape as the max-pool gradient, but the divide by
            // the window size keeps a multiply/add core.
            let mut c = pool::max_pool_grad_cost(output_shape(graph, op, 0)?, geom)?;
            c.muls += c.adds;
            Ok(c)
        }
        OpKind::SoftmaxXent => softmax::softmax_xent_cost(input_shape(graph, op, 0)?),
        OpKind::ApplyAdam => Ok(optimizer::apply_adam_cost(input_shape(graph, op, 0)?)),
        OpKind::ApplySgd => Ok(optimizer::apply_sgd_cost(input_shape(graph, op, 0)?)),
        OpKind::Binary(b) => Ok(elementwise::binary_cost(input_shape(graph, op, 0)?, b)),
        OpKind::Slice { len, .. } => Ok(elementwise::slice_cost(len)),
        OpKind::Concat => {
            let mut lens = Vec::with_capacity(op.inputs.len());
            for i in 0..op.inputs.len() {
                lens.push(input_shape(graph, op, i)?.numel());
            }
            Ok(elementwise::concat_cost(&lens))
        }
        OpKind::Dropout => Ok(elementwise::dropout_cost(input_shape(graph, op, 0)?)),
        OpKind::BatchNorm => norm::batch_norm_cost(input_shape(graph, op, 0)?),
        OpKind::BatchNormGrad => norm::batch_norm_grad_cost(input_shape(graph, op, 0)?),
        OpKind::Lrn => norm::lrn_cost(input_shape(graph, op, 0)?),
        OpKind::LrnGrad => {
            // The LRN gradient re-traverses the squared window with extra
            // chain-rule multiplies: model as 1.5x the forward cost.
            let mut c = norm::lrn_cost(input_shape(graph, op, 0)?)?;
            c.muls *= 1.5;
            c.adds *= 1.5;
            c.other_flops *= 1.5;
            Ok(c)
        }
        OpKind::EmbeddingLookup => {
            let table = input_shape(graph, op, 0)?;
            let indices = input_shape(graph, op, 1)?;
            let (_, dim) = table.as_matrix()?;
            Ok(embedding::embedding_lookup_cost(dim, indices.numel()))
        }
        OpKind::EmbeddingGrad => {
            let grad = input_shape(graph, op, 0)?;
            let (batch, dim) = grad.as_matrix()?;
            Ok(embedding::embedding_grad_cost(dim, batch))
        }
        OpKind::Reshape => Ok(CostProfile::empty()),
    }
}

/// Computes the cost of every op in the graph, in op-id order.
///
/// # Errors
///
/// Returns the first per-op failure.
pub fn graph_costs(graph: &Graph) -> Result<Vec<CostProfile>> {
    graph.ops().iter().map(|op| op_cost(graph, op)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TensorRole;
    use pim_tensor::cost::OffloadClass;
    use pim_tensor::ops::matmul::Transpose;

    #[test]
    fn backprop_filter_cost_from_implied_shapes() {
        let geom = ConvGeometry::square(3, 1, 1);
        let mut g = Graph::new();
        let input = g.add_tensor(Shape::new(vec![8, 16, 28, 28]), TensorRole::Activation, "x");
        let grad_out = g.add_tensor(
            Shape::new(vec![8, 32, 28, 28]),
            TensorRole::Activation,
            "dy",
        );
        let grad_filter =
            g.add_tensor(Shape::new(vec![32, 16, 3, 3]), TensorRole::Activation, "dw");
        let id = g
            .add_op(
                OpKind::Conv2DBackpropFilter(geom),
                vec![input, grad_out],
                vec![grad_filter],
            )
            .unwrap();
        let cost = op_cost(&g, g.op(id).unwrap()).unwrap();
        assert!(matches!(cost.class, OffloadClass::PartiallyMulAdd { .. }));
        // Same MAC volume as the equivalent forward conv.
        let fwd = conv::conv2d_cost(
            &Shape::new(vec![8, 16, 28, 28]),
            &Shape::new(vec![32, 16, 3, 3]),
            geom,
        )
        .unwrap();
        assert_eq!(cost.muls, fwd.muls);
    }

    #[test]
    fn backprop_input_reconstructs_shape() {
        let geom = ConvGeometry::square(2, 2, 0);
        // input 8x8 stride 2 kernel 2 -> output 4x4; reconstruct 8x8.
        let filter = Shape::new(vec![4, 3, 2, 2]);
        let grad = Shape::new(vec![1, 4, 4, 4]);
        let implied = implied_input_shape(&filter, &grad, geom).unwrap();
        assert_eq!(implied.dims(), &[1, 3, 8, 8]);
    }

    #[test]
    fn reshape_is_free() {
        let mut g = Graph::new();
        let a = g.add_tensor(Shape::new(vec![2, 8]), TensorRole::Activation, "a");
        let b = g.add_tensor(Shape::new(vec![16]), TensorRole::Activation, "b");
        let id = g.add_op(OpKind::Reshape, vec![a], vec![b]).unwrap();
        let cost = op_cost(&g, g.op(id).unwrap()).unwrap();
        assert_eq!(cost.total_flops(), 0.0);
        assert_eq!(cost.memory_accesses(), 0);
    }

    #[test]
    fn missing_input_is_reported() {
        let mut g = Graph::new();
        let a = g.add_tensor(Shape::new(vec![2, 2]), TensorRole::Activation, "a");
        let id = g
            .add_op(OpKind::MatMul(Transpose::default()), vec![a], vec![])
            .unwrap();
        assert!(op_cost(&g, g.op(id).unwrap()).is_err());
    }

    #[test]
    fn graph_costs_covers_every_op() {
        let mut g = Graph::new();
        let a = g.add_tensor(Shape::new(vec![4, 4]), TensorRole::Input, "a");
        let b = g.add_tensor(Shape::new(vec![4, 4]), TensorRole::Activation, "b");
        let c = g.add_tensor(Shape::new(vec![4, 4]), TensorRole::Activation, "c");
        g.add_op(
            OpKind::Activation(pim_tensor::ops::activation::Activation::Relu),
            vec![a],
            vec![b],
        )
        .unwrap();
        g.add_op(OpKind::MatMul(Transpose::default()), vec![b, b], vec![c])
            .unwrap();
        let costs = graph_costs(&g).unwrap();
        assert_eq!(costs.len(), 2);
        assert!(costs.iter().all(pim_tensor::CostProfile::is_well_formed));
    }
}
