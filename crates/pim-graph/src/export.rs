//! Graph inspection utilities: Graphviz DOT export and summary statistics.
//!
//! Useful for auditing the training-step graphs the model zoo emits (the
//! TensorBoard role in the paper's profiling framework, Fig. 1).

use crate::graph::Graph;
use crate::node::TensorRole;
use pim_common::Result;
use serde::Serialize;
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT format: ops as boxes, tensors as
/// edges labeled with their shapes.
///
/// # Examples
///
/// ```
/// use pim_graph::builder::{NetBuilder, OptimizerKind};
/// use pim_graph::export::to_dot;
///
/// # fn main() -> pim_common::Result<()> {
/// let mut net = NetBuilder::new("d");
/// let x = net.input_matrix(2, 4);
/// let logits = net.dense(x, 2)?;
/// let graph = net.finish_classifier(logits, OptimizerKind::Sgd)?;
/// let dot = to_dot(&graph)?;
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("MatMul"));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates graph-consistency failures.
pub fn to_dot(graph: &Graph) -> Result<String> {
    let mut out = String::from("digraph training_step {\n  rankdir=TB;\n  node [shape=box];\n");
    for op in graph.ops() {
        writeln!(
            out,
            "  op{} [label=\"{}\"];",
            op.id.index(),
            op.kind.tf_name()
        )
        .ok();
    }
    let producers = graph.producers();
    for op in graph.ops() {
        for tid in &op.inputs {
            if let Some(producer) = producers.get(tid) {
                let shape = &graph.tensor(*tid)?.shape;
                writeln!(
                    out,
                    "  op{} -> op{} [label=\"{shape}\"];",
                    producer.index(),
                    op.id.index()
                )
                .ok();
            }
        }
    }
    out.push_str("}\n");
    Ok(out)
}

/// Structural summary of a training-step graph.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GraphStats {
    /// Operation count.
    pub ops: usize,
    /// Tensor count.
    pub tensors: usize,
    /// Trainable parameter elements.
    pub parameters: usize,
    /// Bytes of activation tensors (one step's intermediates).
    pub activation_bytes: usize,
    /// Longest dependency chain (graph depth).
    pub depth: usize,
    /// Maximum operations simultaneously ready under infinite resources
    /// (graph width — the available operation-level parallelism).
    pub max_width: usize,
}

/// Computes the summary statistics.
///
/// # Errors
///
/// Propagates topological-sort failures.
pub fn stats(graph: &Graph) -> Result<GraphStats> {
    let order = graph.topo_order()?;
    let all_deps = graph.all_dependencies();
    let mut depth_of = vec![0usize; graph.op_count()];
    let mut depth = 0;
    for id in &order {
        let d = all_deps[id.index()]
            .iter()
            .map(|dep| depth_of[dep.index()] + 1)
            .max()
            .unwrap_or(1);
        depth_of[id.index()] = d;
        depth = depth.max(d);
    }
    let mut width_at = vec![0usize; depth + 1];
    for d in &depth_of {
        width_at[*d] += 1;
    }
    let parameters = graph
        .tensors()
        .iter()
        .filter(|t| t.role == TensorRole::Parameter)
        .map(|t| t.shape.numel())
        .sum();
    let activation_bytes = graph
        .tensors()
        .iter()
        .filter(|t| t.role == TensorRole::Activation)
        .map(|t| t.shape.size_bytes())
        .sum();
    Ok(GraphStats {
        ops: graph.op_count(),
        tensors: graph.tensors().len(),
        parameters,
        activation_bytes,
        depth,
        max_width: width_at.into_iter().max().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{NetBuilder, OptimizerKind};

    fn tiny() -> Graph {
        let mut net = NetBuilder::new("t");
        let x = net.input(1, 1, 8, 8);
        let x = net.conv2d(x, 2, 3, 1, 1).unwrap();
        let x = net.relu(x).unwrap();
        let x = net.flatten(x).unwrap();
        let logits = net.dense(x, 2).unwrap();
        net.finish_classifier(logits, OptimizerKind::Sgd).unwrap()
    }

    #[test]
    fn dot_lists_every_op_once() {
        let g = tiny();
        let dot = to_dot(&g).unwrap();
        let boxes = dot
            .lines()
            .filter(|l| l.contains("[label=") && !l.contains("->"))
            .count();
        assert_eq!(boxes, g.op_count());
        assert!(dot.contains("Conv2D"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn stats_report_chain_structure() {
        let g = tiny();
        let s = stats(&g).unwrap();
        assert_eq!(s.ops, g.op_count());
        assert!(s.depth >= 5, "depth {}", s.depth);
        assert!(s.max_width >= 1);
        assert!(s.parameters > 0);
        assert!(s.activation_bytes > 0);
    }

    #[test]
    fn branching_increases_width() {
        let mut net = NetBuilder::new("w");
        let x = net.input(1, 2, 8, 8);
        let a = net.conv2d(x, 2, 3, 1, 1).unwrap();
        let b = net.conv2d(x, 2, 3, 1, 1).unwrap();
        let m = net.add(a, b).unwrap();
        let f = net.flatten(m).unwrap();
        let logits = net.dense(f, 2).unwrap();
        let g = net.finish_classifier(logits, OptimizerKind::Sgd).unwrap();
        assert!(stats(&g).unwrap().max_width >= 2);
    }
}
