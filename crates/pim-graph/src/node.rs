//! Operation kinds and graph nodes.
//!
//! [`OpKind`] enumerates every TensorFlow operation the paper profiles
//! (Table I) plus the ones its seven workloads need. Display names match the
//! TensorFlow names used in the paper so the reproduced profiling tables read
//! the same.

use pim_common::ids::{OpId, TensorId};
use pim_tensor::ops::activation::Activation;
use pim_tensor::ops::elementwise::BinaryOp;
use pim_tensor::ops::matmul::Transpose;
use pim_tensor::ConvGeometry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Every operation kind the workloads use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// Forward 2-D convolution. Inputs: `[input, filter]`.
    Conv2D(ConvGeometry),
    /// Filter gradient. Inputs: `[input, grad_output]`.
    Conv2DBackpropFilter(ConvGeometry),
    /// Input gradient. Inputs: `[filter, grad_output]`.
    Conv2DBackpropInput(ConvGeometry),
    /// Transposed convolution (DCGAN generator). Inputs: `[input, filter]`.
    Conv2DTranspose(ConvGeometry),
    /// Matrix multiply. Inputs: `[a, b]`.
    MatMul(Transpose),
    /// Per-channel bias add. Inputs: `[input, bias]`.
    BiasAdd,
    /// Bias gradient (reduction). Inputs: `[grad_output]`.
    BiasAddGrad,
    /// Activation forward. Inputs: `[input]`.
    Activation(Activation),
    /// Activation gradient. Inputs: `[grad_output, input, output]`.
    ActivationGrad(Activation),
    /// Max pooling. Inputs: `[input]`; outputs: `[values, argmax]`.
    MaxPool(ConvGeometry),
    /// Max pooling gradient. Inputs: `[grad_output, argmax]`.
    MaxPoolGrad(ConvGeometry),
    /// Average pooling. Inputs: `[input]`.
    AvgPool(ConvGeometry),
    /// Average pooling gradient. Inputs: `[grad_output]`.
    AvgPoolGrad(ConvGeometry),
    /// Fused softmax + cross-entropy + gradient. Inputs: `[logits, labels]`;
    /// outputs: `[loss, grad_logits]`.
    SoftmaxXent,
    /// Adam parameter update. Inputs: `[param, grad]`; output: `[done]`.
    ApplyAdam,
    /// SGD parameter update. Inputs: `[param, grad]`; output: `[done]`.
    ApplySgd,
    /// Elementwise binary op. Inputs: `[a, b]`.
    Binary(BinaryOp),
    /// Flat slice. Inputs: `[input]`.
    Slice {
        /// First element of the slice.
        start: usize,
        /// Number of elements.
        len: usize,
    },
    /// Flat concatenation. Inputs: the parts.
    Concat,
    /// Inverted dropout with a supplied mask. Inputs: `[input, mask]`.
    Dropout,
    /// Batch normalization forward. Inputs: `[input]`.
    BatchNorm,
    /// Batch normalization gradient. Inputs: `[grad_output, input]`.
    BatchNormGrad,
    /// Local response normalization (AlexNet). Inputs: `[input]`.
    Lrn,
    /// LRN gradient. Inputs: `[grad_output, input]`.
    LrnGrad,
    /// Embedding gather. Inputs: `[table, indices]`.
    EmbeddingLookup,
    /// Embedding scatter gradient. Inputs: `[grad_output, indices]`.
    EmbeddingGrad,
    /// Metadata-only reshape. Inputs: `[input]`.
    Reshape,
}

impl OpKind {
    /// The TensorFlow-style display name used in the paper's tables.
    pub fn tf_name(&self) -> &'static str {
        match self {
            OpKind::Conv2D(_) => "Conv2D",
            OpKind::Conv2DBackpropFilter(_) => "Conv2DBackpropFilter",
            OpKind::Conv2DBackpropInput(_) => "Conv2DBackpropInput",
            OpKind::Conv2DTranspose(_) => "Conv2DTranspose",
            OpKind::MatMul(_) => "MatMul",
            OpKind::BiasAdd => "BiasAdd",
            OpKind::BiasAddGrad => "BiasAddGrad",
            OpKind::Activation(Activation::Relu) => "Relu",
            OpKind::Activation(Activation::LeakyRelu) => "LeakyRelu",
            OpKind::Activation(Activation::Sigmoid) => "Sigmoid",
            OpKind::Activation(Activation::Tanh) => "Tanh",
            OpKind::ActivationGrad(Activation::Relu) => "ReluGrad",
            OpKind::ActivationGrad(Activation::LeakyRelu) => "LeakyReluGrad",
            OpKind::ActivationGrad(Activation::Sigmoid) => "SigmoidGrad",
            OpKind::ActivationGrad(Activation::Tanh) => "TanhGrad",
            OpKind::MaxPool(_) => "MaxPool",
            OpKind::MaxPoolGrad(_) => "MaxPoolGrad",
            OpKind::AvgPool(_) => "AvgPool",
            OpKind::AvgPoolGrad(_) => "AvgPoolGrad",
            OpKind::SoftmaxXent => "SoftmaxCrossEntropyWithLogits",
            OpKind::ApplyAdam => "ApplyAdam",
            OpKind::ApplySgd => "ApplyGradientDescent",
            OpKind::Binary(BinaryOp::Add) => "Add",
            OpKind::Binary(BinaryOp::Sub) => "Sub",
            OpKind::Binary(BinaryOp::Mul) => "Mul",
            OpKind::Slice { .. } => "Slice",
            OpKind::Concat => "ConcatV2",
            OpKind::Dropout => "Dropout",
            OpKind::BatchNorm => "FusedBatchNorm",
            OpKind::BatchNormGrad => "FusedBatchNormGrad",
            OpKind::Lrn => "LRN",
            OpKind::LrnGrad => "LRNGrad",
            OpKind::EmbeddingLookup => "GatherV2",
            OpKind::EmbeddingGrad => "ScatterAdd",
            OpKind::Reshape => "Reshape",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tf_name())
    }
}

/// The role a tensor plays across training steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorRole {
    /// Minibatch input, refreshed every step.
    Input,
    /// Trainable parameter, persistent across steps.
    Parameter,
    /// Intermediate activation or gradient, local to one step.
    Activation,
    /// Class labels or other integer side data.
    Labels,
    /// Argmax indices or similar integer side outputs.
    Indices,
    /// Scalar outputs such as the loss.
    Scalar,
}

/// Static description of one tensor in the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorInfo {
    /// The tensor's identifier.
    pub id: TensorId,
    /// Shape of the value (element count for index tensors).
    pub shape: pim_tensor::Shape,
    /// Cross-step role.
    pub role: TensorRole,
    /// Human-readable name for reports ("conv1/filter").
    pub name: String,
}

/// One operation node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpNode {
    /// The node's identifier.
    pub id: OpId,
    /// What the node computes.
    pub kind: OpKind,
    /// Tensors read (order is kind-specific; see [`OpKind`] docs).
    pub inputs: Vec<TensorId>,
    /// Tensors produced.
    pub outputs: Vec<TensorId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tf_names_match_paper_tables() {
        assert_eq!(
            OpKind::Conv2DBackpropFilter(ConvGeometry::square(3, 1, 1)).tf_name(),
            "Conv2DBackpropFilter"
        );
        assert_eq!(OpKind::Activation(Activation::Relu).tf_name(), "Relu");
        assert_eq!(OpKind::ApplyAdam.tf_name(), "ApplyAdam");
        assert_eq!(OpKind::Binary(BinaryOp::Mul).tf_name(), "Mul");
        assert_eq!(OpKind::Slice { start: 0, len: 1 }.tf_name(), "Slice");
    }

    #[test]
    fn display_matches_tf_name() {
        let kind = OpKind::BiasAddGrad;
        assert_eq!(kind.to_string(), kind.tf_name());
    }
}
