//! The dataflow graph of one training step.

use crate::node::{OpKind, OpNode, TensorInfo, TensorRole};
use pim_common::ids::{OpId, TensorId};
use pim_common::{PimError, Result};
use pim_tensor::Shape;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// A directed acyclic graph of operations over tensors, representing one
/// training step of a model.
///
/// Operation dependencies are implied by tensor production/consumption, the
/// same convention TensorFlow uses and the paper relies on for its
/// scheduling principle 3 ("scheduling needs to respect data dependency
/// across operations ... each operation has explicit input and output data
/// objects").
///
/// # Examples
///
/// ```
/// use pim_graph::graph::Graph;
/// use pim_graph::node::{OpKind, TensorRole};
/// use pim_tensor::Shape;
///
/// # fn main() -> pim_common::Result<()> {
/// let mut g = Graph::new();
/// let x = g.add_tensor(Shape::new(vec![4, 8]), TensorRole::Input, "x");
/// let y = g.add_tensor(Shape::new(vec![4, 8]), TensorRole::Activation, "y");
/// g.add_op(OpKind::Activation(pim_tensor::ops::activation::Activation::Relu), vec![x], vec![y])?;
/// assert_eq!(g.topo_order()?.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    tensors: Vec<TensorInfo>,
    ops: Vec<OpNode>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Registers a tensor and returns its id.
    pub fn add_tensor(
        &mut self,
        shape: Shape,
        role: TensorRole,
        name: impl Into<String>,
    ) -> TensorId {
        let id = TensorId::new(self.tensors.len());
        self.tensors.push(TensorInfo {
            id,
            shape,
            role,
            name: name.into(),
        });
        id
    }

    /// Registers an operation consuming `inputs` and producing `outputs`.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::UnknownId`] when any referenced tensor does not
    /// exist, and [`PimError::InvalidArgument`] when an output tensor
    /// already has a producer (tensors are single-assignment).
    pub fn add_op(
        &mut self,
        kind: OpKind,
        inputs: Vec<TensorId>,
        outputs: Vec<TensorId>,
    ) -> Result<OpId> {
        for &tid in inputs.iter().chain(&outputs) {
            if tid.index() >= self.tensors.len() {
                return Err(PimError::UnknownId {
                    kind: "tensor",
                    index: tid.index(),
                });
            }
        }
        for &out in &outputs {
            if self.ops.iter().any(|op| op.outputs.contains(&out)) {
                return Err(PimError::invalid(
                    "Graph::add_op",
                    format!("tensor {out} already has a producer"),
                ));
            }
        }
        let id = OpId::new(self.ops.len());
        self.ops.push(OpNode {
            id,
            kind,
            inputs,
            outputs,
        });
        Ok(id)
    }

    /// All tensors in id order.
    pub fn tensors(&self) -> &[TensorInfo] {
        &self.tensors
    }

    /// All operations in insertion order.
    pub fn ops(&self) -> &[OpNode] {
        &self.ops
    }

    /// Looks up a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::UnknownId`] for unknown ids.
    pub fn tensor(&self, id: TensorId) -> Result<&TensorInfo> {
        self.tensors.get(id.index()).ok_or(PimError::UnknownId {
            kind: "tensor",
            index: id.index(),
        })
    }

    /// Looks up an operation.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::UnknownId`] for unknown ids.
    pub fn op(&self, id: OpId) -> Result<&OpNode> {
        self.ops.get(id.index()).ok_or(PimError::UnknownId {
            kind: "op",
            index: id.index(),
        })
    }

    /// Number of operations.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Map from tensor to the op that produces it.
    pub fn producers(&self) -> HashMap<TensorId, OpId> {
        let mut map = HashMap::new();
        for op in &self.ops {
            for &out in &op.outputs {
                map.insert(out, op.id);
            }
        }
        map
    }

    /// The ops whose outputs this op consumes — its dependencies.
    pub fn dependencies(&self, id: OpId) -> Result<Vec<OpId>> {
        let producers = self.producers();
        let op = self.op(id)?;
        let mut deps: Vec<OpId> = op
            .inputs
            .iter()
            .filter_map(|tid| producers.get(tid).copied())
            .collect();
        deps.sort_unstable();
        deps.dedup();
        Ok(deps)
    }

    /// Per-op dependency lists for the whole graph, indexed by op id.
    ///
    /// Entry `i` equals `dependencies(OpId::new(i))`, but the producer map
    /// is built once for the whole graph instead of once per op, so
    /// preparing an `n`-op graph costs O(n + e) rather than O(n·e).
    pub fn all_dependencies(&self) -> Vec<Vec<OpId>> {
        let producers = self.producers();
        self.ops
            .iter()
            .map(|op| {
                let mut deps: Vec<OpId> = op
                    .inputs
                    .iter()
                    .filter_map(|tid| producers.get(tid).copied())
                    .collect();
                deps.sort_unstable();
                deps.dedup();
                deps
            })
            .collect()
    }

    /// Adjacency: for each op, the ops that consume its outputs.
    pub fn consumers(&self) -> HashMap<OpId, Vec<OpId>> {
        let producers = self.producers();
        let mut map: HashMap<OpId, Vec<OpId>> = HashMap::new();
        for op in &self.ops {
            for tid in &op.inputs {
                if let Some(&producer) = producers.get(tid) {
                    map.entry(producer).or_default().push(op.id);
                }
            }
        }
        for list in map.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
        map
    }

    /// Kahn topological sort of the operations.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::GraphCycle`] when the graph is cyclic.
    pub fn topo_order(&self) -> Result<Vec<OpId>> {
        let mut in_degree = vec![0usize; self.ops.len()];
        let consumers = self.consumers();
        for (producer, users) in &consumers {
            let _ = producer;
            for user in users {
                in_degree[user.index()] += 1;
            }
        }
        let mut queue: VecDeque<OpId> = self
            .ops
            .iter()
            .filter(|op| in_degree[op.id.index()] == 0)
            .map(|op| op.id)
            .collect();
        let mut order = Vec::with_capacity(self.ops.len());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            if let Some(users) = consumers.get(&id) {
                for &user in users {
                    in_degree[user.index()] -= 1;
                    if in_degree[user.index()] == 0 {
                        queue.push_back(user);
                    }
                }
            }
        }
        if order.len() != self.ops.len() {
            let members = (0..self.ops.len()).filter(|&i| in_degree[i] > 0).collect();
            return Err(PimError::GraphCycle { members });
        }
        Ok(order)
    }

    /// Validates the whole graph: referenced ids exist, output tensors have
    /// unique producers (enforced at insertion), and the graph is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<()> {
        self.topo_order().map(|_| ())
    }

    /// A deterministic fingerprint of the graph's complete structure:
    /// every tensor (shape, role, name) and every op (kind, operands) in
    /// id order. Two graphs built by the same sequence of `add_tensor` /
    /// `add_op` calls fingerprint identically, within and across
    /// processes — the key the profiler's step cache and other sweep-level
    /// memoizations rely on.
    pub fn structural_hash(&self) -> u64 {
        pim_common::fingerprint::debug_hash(&(&self.tensors, &self.ops))
    }

    /// Total bytes of parameter tensors (a rough model size).
    pub fn parameter_bytes(&self) -> usize {
        self.tensors
            .iter()
            .filter(|t| t.role == TensorRole::Parameter)
            .map(|t| t.shape.size_bytes())
            .sum()
    }

    /// Counts op instances by TF name, for the invocation-count columns of
    /// Table I.
    pub fn invocation_counts(&self) -> HashMap<&'static str, usize> {
        let mut counts = HashMap::new();
        for op in &self.ops {
            *counts.entry(op.kind.tf_name()).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_tensor::ops::activation::Activation;

    fn relu() -> OpKind {
        OpKind::Activation(Activation::Relu)
    }

    fn chain(n: usize) -> Graph {
        let mut g = Graph::new();
        let mut prev = g.add_tensor(Shape::new(vec![4]), TensorRole::Input, "t0");
        for i in 0..n {
            let next = g.add_tensor(
                Shape::new(vec![4]),
                TensorRole::Activation,
                format!("t{}", i + 1),
            );
            g.add_op(relu(), vec![prev], vec![next]).unwrap();
            prev = next;
        }
        g
    }

    #[test]
    fn topo_order_respects_chain() {
        let g = chain(5);
        let order = g.topo_order().unwrap();
        assert_eq!(order.len(), 5);
        for (pos, id) in order.iter().enumerate() {
            assert_eq!(id.index(), pos);
        }
    }

    #[test]
    fn unknown_tensor_is_rejected() {
        let mut g = Graph::new();
        let err = g.add_op(relu(), vec![TensorId::new(9)], vec![]);
        assert!(matches!(err, Err(PimError::UnknownId { .. })));
    }

    #[test]
    fn double_producer_is_rejected() {
        let mut g = Graph::new();
        let a = g.add_tensor(Shape::new(vec![1]), TensorRole::Input, "a");
        let b = g.add_tensor(Shape::new(vec![1]), TensorRole::Activation, "b");
        g.add_op(relu(), vec![a], vec![b]).unwrap();
        assert!(g.add_op(relu(), vec![a], vec![b]).is_err());
    }

    #[test]
    fn dependencies_follow_tensor_flow() {
        let g = chain(3);
        assert!(g.dependencies(OpId::new(0)).unwrap().is_empty());
        assert_eq!(g.dependencies(OpId::new(2)).unwrap(), vec![OpId::new(1)]);
    }

    #[test]
    fn diamond_topology_sorts() {
        // a -> (b, c) -> d
        let mut g = Graph::new();
        let t_in = g.add_tensor(Shape::new(vec![4]), TensorRole::Input, "in");
        let t_a = g.add_tensor(Shape::new(vec![4]), TensorRole::Activation, "a");
        let t_b = g.add_tensor(Shape::new(vec![4]), TensorRole::Activation, "b");
        let t_c = g.add_tensor(Shape::new(vec![4]), TensorRole::Activation, "c");
        let t_d = g.add_tensor(Shape::new(vec![4]), TensorRole::Activation, "d");
        let a = g.add_op(relu(), vec![t_in], vec![t_a]).unwrap();
        let b = g.add_op(relu(), vec![t_a], vec![t_b]).unwrap();
        let c = g.add_op(relu(), vec![t_a], vec![t_c]).unwrap();
        let d = g
            .add_op(
                OpKind::Binary(pim_tensor::ops::elementwise::BinaryOp::Add),
                vec![t_b, t_c],
                vec![t_d],
            )
            .unwrap();
        let order = g.topo_order().unwrap();
        let pos = |id: OpId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
        assert_eq!(g.dependencies(d).unwrap(), vec![b, c]);
    }

    #[test]
    fn invocation_counts_group_by_name() {
        let g = chain(4);
        assert_eq!(g.invocation_counts()["Relu"], 4);
    }

    #[test]
    fn validate_passes_for_dag() {
        assert!(chain(10).validate().is_ok());
    }
}
