//! Dataflow graphs of NN training steps — the TensorFlow substitute.
//!
//! A [`graph::Graph`] holds the operations of one training step with
//! dependencies implied by tensor production/consumption, exactly the
//! information the paper's runtime scheduler consumes. The crate provides:
//!
//! * [`node`] — operation kinds with the paper's TensorFlow display names,
//! * [`graph`] — the DAG with validation, topological ordering, and
//!   dependency queries,
//! * [`builder`] — a layer-level API that also auto-generates the backward
//!   pass and optimizer updates,
//! * [`cost`] — per-node analytic cost dispatch,
//! * [`export`] — DOT rendering and structural statistics,
//! * [`liveness`] — peak-live-memory analysis of a step,
//! * [`executor`] — an eager interpreter that really trains (used by the
//!   functional examples).
//!
//! # Examples
//!
//! ```
//! use pim_graph::builder::{NetBuilder, OptimizerKind};
//! use pim_graph::cost::graph_costs;
//!
//! # fn main() -> pim_common::Result<()> {
//! let mut net = NetBuilder::new("demo");
//! let x = net.input(4, 3, 16, 16);
//! let x = net.conv2d(x, 8, 3, 1, 1)?;
//! let x = net.relu(x)?;
//! let x = net.flatten(x)?;
//! let logits = net.dense(x, 10)?;
//! let graph = net.finish_classifier(logits, OptimizerKind::Adam)?;
//!
//! // Every op has an analytic cost profile the scheduler can consume.
//! let costs = graph_costs(&graph)?;
//! assert_eq!(costs.len(), graph.op_count());
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

pub mod builder;
pub mod cost;
pub mod executor;
pub mod export;
pub mod gen;
pub mod graph;
pub mod liveness;
pub mod node;

pub use builder::{NetBuilder, OptimizerKind};
pub use graph::Graph;
pub use node::{OpKind, OpNode, TensorInfo, TensorRole};
