//! Tensor liveness analysis: peak live memory of one training step.
//!
//! The GPU baseline's working-set spill (the reason ResNet-50 favors the
//! PIM, §VI-A) needs an estimate of how much memory a step keeps live. A
//! topological sweep with last-use tracking gives the schedule-dependent
//! peak: a tensor becomes live when produced and dies after its last
//! consumer.

use crate::graph::Graph;
use crate::node::TensorRole;
use pim_common::ids::{OpId, TensorId};
use pim_common::Result;
use serde::Serialize;
use std::collections::HashMap;

/// Result of the liveness sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LivenessReport {
    /// Peak bytes of simultaneously live activation tensors.
    pub peak_activation_bytes: usize,
    /// Sum of all activation tensor sizes (the no-reuse upper bound).
    pub total_activation_bytes: usize,
    /// Bytes of parameters (always live).
    pub parameter_bytes: usize,
    /// The op at which the activation peak occurs.
    pub peak_at: Option<OpId>,
}

impl LivenessReport {
    /// Fraction of the no-reuse footprint that buffer reuse eliminates —
    /// the measured counterpart of the GPU model's activation-reuse
    /// constant.
    pub fn reuse_fraction(&self) -> f64 {
        if self.total_activation_bytes == 0 {
            0.0
        } else {
            1.0 - self.peak_activation_bytes as f64 / self.total_activation_bytes as f64
        }
    }

    /// Peak training footprint: live activations plus parameters with
    /// gradient and two optimizer moments.
    pub fn training_footprint_bytes(&self) -> usize {
        self.peak_activation_bytes + 4 * self.parameter_bytes
    }
}

/// Runs the liveness sweep in topological order.
///
/// # Examples
///
/// ```
/// use pim_graph::builder::{NetBuilder, OptimizerKind};
/// use pim_graph::liveness::analyze;
///
/// # fn main() -> pim_common::Result<()> {
/// let mut net = NetBuilder::new("l");
/// let x = net.input(2, 1, 8, 8);
/// let x = net.conv2d(x, 4, 3, 1, 1)?;
/// let x = net.flatten(x)?;
/// let logits = net.dense(x, 2)?;
/// let graph = net.finish_classifier(logits, OptimizerKind::Sgd)?;
/// let report = analyze(&graph)?;
/// assert!(report.peak_activation_bytes <= report.total_activation_bytes);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates topological-sort failures.
pub fn analyze(graph: &Graph) -> Result<LivenessReport> {
    let order = graph.topo_order()?;
    let mut position = HashMap::new();
    for (i, id) in order.iter().enumerate() {
        position.insert(*id, i);
    }
    // Last use of each activation tensor, by topological position.
    let mut last_use: HashMap<TensorId, usize> = HashMap::new();
    for op in graph.ops() {
        let pos = position[&op.id];
        for tid in &op.inputs {
            let slot = last_use.entry(*tid).or_insert(pos);
            *slot = (*slot).max(pos);
        }
    }
    let is_activation = |tid: TensorId| -> Result<Option<usize>> {
        let info = graph.tensor(tid)?;
        Ok((info.role == TensorRole::Activation).then(|| info.shape.size_bytes()))
    };

    let mut live = 0usize;
    let mut peak = 0usize;
    let mut peak_at = None;
    // Tensors die after their last consumer, grouped by position.
    let mut deaths: HashMap<usize, Vec<TensorId>> = HashMap::new();
    for (&tid, &pos) in &last_use {
        deaths.entry(pos).or_default().push(tid);
    }
    for (pos, id) in order.iter().enumerate() {
        let op = graph.op(*id)?;
        for &out in &op.outputs {
            if let Some(bytes) = is_activation(out)? {
                live += bytes;
            }
        }
        if live > peak {
            peak = live;
            peak_at = Some(*id);
        }
        if let Some(dying) = deaths.get(&pos) {
            for &tid in dying {
                if let Some(bytes) = is_activation(tid)? {
                    live = live.saturating_sub(bytes);
                }
            }
        }
    }
    let total_activation_bytes = graph
        .tensors()
        .iter()
        .filter(|t| t.role == TensorRole::Activation)
        .map(|t| t.shape.size_bytes())
        .sum();
    Ok(LivenessReport {
        peak_activation_bytes: peak,
        total_activation_bytes,
        parameter_bytes: graph.parameter_bytes(),
        peak_at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{NetBuilder, OptimizerKind};

    fn cnn(convs: usize) -> Graph {
        let mut net = NetBuilder::new("lv");
        let mut x = net.input(2, 2, 16, 16);
        for _ in 0..convs {
            x = net.conv2d(x, 2, 3, 1, 1).unwrap();
            x = net.relu(x).unwrap();
        }
        let x = net.flatten(x).unwrap();
        let logits = net.dense(x, 2).unwrap();
        net.finish_classifier(logits, OptimizerKind::Sgd).unwrap()
    }

    #[test]
    fn peak_is_bounded_by_total() {
        let g = cnn(4);
        let r = analyze(&g).unwrap();
        assert!(r.peak_activation_bytes > 0);
        assert!(r.peak_activation_bytes <= r.total_activation_bytes);
        assert!(r.peak_at.is_some());
    }

    #[test]
    fn deeper_networks_reuse_more() {
        // In a chain, buffers die quickly: the reuse fraction grows with
        // depth while the peak grows sublinearly.
        let shallow = analyze(&cnn(2)).unwrap();
        let deep = analyze(&cnn(10)).unwrap();
        assert!(deep.reuse_fraction() > shallow.reuse_fraction());
        assert!((deep.peak_activation_bytes as f64) < shallow.peak_activation_bytes as f64 * 5.0);
    }

    #[test]
    fn footprint_includes_optimizer_state() {
        let g = cnn(2);
        let r = analyze(&g).unwrap();
        assert_eq!(
            r.training_footprint_bytes(),
            r.peak_activation_bytes + 4 * r.parameter_bytes
        );
    }
}
