//! Layer-level network builder with automatic backward-pass generation.
//!
//! [`NetBuilder`] records a tape of layers as the forward pass is described,
//! then [`NetBuilder::finish_classifier`] replays the tape in reverse —
//! accumulating gradients across branches (residual adds, inception towers)
//! — to emit gradient and optimizer operations, producing the complete
//! training-step graph that TensorFlow would hand the paper's runtime.

use crate::graph::Graph;
use crate::node::{OpKind, TensorRole};
use pim_common::ids::TensorId;
use pim_common::{PimError, Result};
use pim_tensor::ops::activation::Activation;
use pim_tensor::ops::elementwise::BinaryOp;
use pim_tensor::ops::matmul::Transpose;
use pim_tensor::{ConvGeometry, Shape};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which parameter-update operation the training step uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// `ApplyAdam` (the paper's running example).
    Adam,
    /// `ApplyGradientDescent`.
    Sgd,
}

impl OptimizerKind {
    fn op_kind(self) -> OpKind {
        match self {
            OptimizerKind::Adam => OpKind::ApplyAdam,
            OptimizerKind::Sgd => OpKind::ApplySgd,
        }
    }
}

#[derive(Debug, Clone)]
enum Layer {
    Conv {
        geom: ConvGeometry,
        input: TensorId,
        filter: TensorId,
        output: TensorId,
    },
    ConvTranspose {
        geom: ConvGeometry,
        input: TensorId,
        filter: TensorId,
        output: TensorId,
    },
    Dense {
        input: TensorId,
        weight: TensorId,
        output: TensorId,
    },
    Bias {
        input: TensorId,
        bias: TensorId,
        output: TensorId,
    },
    Activation {
        kind: Activation,
        input: TensorId,
        output: TensorId,
    },
    MaxPool {
        geom: ConvGeometry,
        input: TensorId,
        argmax: TensorId,
        output: TensorId,
    },
    AvgPool {
        geom: ConvGeometry,
        input: TensorId,
        output: TensorId,
    },
    BatchNorm {
        input: TensorId,
        output: TensorId,
    },
    Lrn {
        input: TensorId,
        output: TensorId,
    },
    Dropout {
        input: TensorId,
        mask: TensorId,
        output: TensorId,
    },
    Flatten {
        input: TensorId,
        output: TensorId,
    },
    Add {
        a: TensorId,
        b: TensorId,
        output: TensorId,
    },
    ConcatChannels {
        parts: Vec<TensorId>,
        output: TensorId,
    },
}

impl Layer {
    fn output(&self) -> TensorId {
        match *self {
            Layer::Conv { output, .. }
            | Layer::ConvTranspose { output, .. }
            | Layer::Dense { output, .. }
            | Layer::Bias { output, .. }
            | Layer::Activation { output, .. }
            | Layer::MaxPool { output, .. }
            | Layer::AvgPool { output, .. }
            | Layer::BatchNorm { output, .. }
            | Layer::Lrn { output, .. }
            | Layer::Dropout { output, .. }
            | Layer::Flatten { output, .. }
            | Layer::Add { output, .. }
            | Layer::ConcatChannels { output, .. } => output,
        }
    }
}

/// Builder of a complete training-step graph from a layer description.
///
/// # Examples
///
/// ```
/// use pim_graph::builder::{NetBuilder, OptimizerKind};
///
/// # fn main() -> pim_common::Result<()> {
/// let mut net = NetBuilder::new("tiny");
/// let x = net.input(1, 1, 8, 8);
/// let x = net.conv2d(x, 4, 3, 1, 1)?;
/// let x = net.relu(x)?;
/// let x = net.flatten(x)?;
/// let x = net.dense(x, 10)?;
/// let graph = net.finish_classifier(x, OptimizerKind::Adam)?;
/// assert!(graph.op_count() > 5);
/// graph.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetBuilder {
    graph: Graph,
    layers: Vec<Layer>,
    prefix: String,
    batch: usize,
}

impl NetBuilder {
    /// Starts a new network named `prefix`.
    pub fn new(prefix: impl Into<String>) -> Self {
        NetBuilder {
            graph: Graph::new(),
            layers: Vec::new(),
            prefix: prefix.into(),
            batch: 0,
        }
    }

    fn name(&self, layer: &str, suffix: &str) -> String {
        format!("{}/{}{}/{}", self.prefix, layer, self.layers.len(), suffix)
    }

    fn shape_of(&self, id: TensorId) -> Result<Shape> {
        Ok(self.graph.tensor(id)?.shape.clone())
    }

    /// The minibatch size declared by the first input.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Declares the minibatch image input `[n, c, h, w]`.
    pub fn input(&mut self, n: usize, c: usize, h: usize, w: usize) -> TensorId {
        self.batch = n;
        self.graph.add_tensor(
            Shape::new(vec![n, c, h, w]),
            TensorRole::Input,
            format!("{}/input", self.prefix),
        )
    }

    /// Declares a flat `[n, features]` input (MLPs, LSTM slices).
    pub fn input_matrix(&mut self, n: usize, features: usize) -> TensorId {
        self.batch = n;
        self.graph.add_tensor(
            Shape::new(vec![n, features]),
            TensorRole::Input,
            format!("{}/input", self.prefix),
        )
    }

    /// Appends `Conv2D` with a fresh filter parameter; returns the output.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the input tensor.
    pub fn conv2d(
        &mut self,
        x: TensorId,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<TensorId> {
        let geom = ConvGeometry::square(kernel, stride, pad);
        let (n, c, h, w) = self.shape_of(x)?.as_nchw()?;
        let (oh, ow) = geom.output_hw(h, w);
        let filter = self.graph.add_tensor(
            Shape::new(vec![out_channels, c, kernel, kernel]),
            TensorRole::Parameter,
            self.name("conv", "filter"),
        );
        let output = self.graph.add_tensor(
            Shape::new(vec![n, out_channels, oh, ow]),
            TensorRole::Activation,
            self.name("conv", "out"),
        );
        self.graph
            .add_op(OpKind::Conv2D(geom), vec![x, filter], vec![output])?;
        self.layers.push(Layer::Conv {
            geom,
            input: x,
            filter,
            output,
        });
        Ok(output)
    }

    /// Appends `Conv2DTranspose` (DCGAN generator upsampling).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the input tensor.
    pub fn conv2d_transpose(
        &mut self,
        x: TensorId,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<TensorId> {
        let geom = ConvGeometry::square(kernel, stride, pad);
        let (n, c, h, w) = self.shape_of(x)?.as_nchw()?;
        let (oh, ow) = geom.transpose_output_hw(h, w);
        let filter = self.graph.add_tensor(
            Shape::new(vec![c, out_channels, kernel, kernel]),
            TensorRole::Parameter,
            self.name("deconv", "filter"),
        );
        let output = self.graph.add_tensor(
            Shape::new(vec![n, out_channels, oh, ow]),
            TensorRole::Activation,
            self.name("deconv", "out"),
        );
        self.graph
            .add_op(OpKind::Conv2DTranspose(geom), vec![x, filter], vec![output])?;
        self.layers.push(Layer::ConvTranspose {
            geom,
            input: x,
            filter,
            output,
        });
        Ok(output)
    }

    /// Appends a fully connected `MatMul` with a fresh weight parameter.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the input tensor.
    pub fn dense(&mut self, x: TensorId, units: usize) -> Result<TensorId> {
        let (n, features) = self.shape_of(x)?.as_matrix()?;
        let weight = self.graph.add_tensor(
            Shape::new(vec![features, units]),
            TensorRole::Parameter,
            self.name("fc", "weight"),
        );
        let output = self.graph.add_tensor(
            Shape::new(vec![n, units]),
            TensorRole::Activation,
            self.name("fc", "out"),
        );
        self.graph.add_op(
            OpKind::MatMul(Transpose::NONE),
            vec![x, weight],
            vec![output],
        )?;
        self.layers.push(Layer::Dense {
            input: x,
            weight,
            output,
        });
        Ok(output)
    }

    /// Appends `BiasAdd` with a fresh bias parameter.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the input tensor.
    pub fn bias(&mut self, x: TensorId) -> Result<TensorId> {
        let shape = self.shape_of(x)?;
        let channels = match *shape.dims() {
            [_, c, _, _] => c,
            [_, c] => c,
            _ => {
                return Err(PimError::ShapeMismatch {
                    context: "NetBuilder::bias",
                    expected: vec![2, 4],
                    actual: vec![shape.rank()],
                })
            }
        };
        let bias = self.graph.add_tensor(
            Shape::new(vec![channels]),
            TensorRole::Parameter,
            self.name("bias", "b"),
        );
        let output = self
            .graph
            .add_tensor(shape, TensorRole::Activation, self.name("bias", "out"));
        self.graph
            .add_op(OpKind::BiasAdd, vec![x, bias], vec![output])?;
        self.layers.push(Layer::Bias {
            input: x,
            bias,
            output,
        });
        Ok(output)
    }

    fn activation(&mut self, x: TensorId, kind: Activation) -> Result<TensorId> {
        let shape = self.shape_of(x)?;
        let output = self
            .graph
            .add_tensor(shape, TensorRole::Activation, self.name("act", "out"));
        self.graph
            .add_op(OpKind::Activation(kind), vec![x], vec![output])?;
        self.layers.push(Layer::Activation {
            kind,
            input: x,
            output,
        });
        Ok(output)
    }

    /// Appends `Relu`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the input tensor.
    pub fn relu(&mut self, x: TensorId) -> Result<TensorId> {
        self.activation(x, Activation::Relu)
    }

    /// Appends `LeakyRelu` (DCGAN discriminator).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the input tensor.
    pub fn leaky_relu(&mut self, x: TensorId) -> Result<TensorId> {
        self.activation(x, Activation::LeakyRelu)
    }

    /// Appends `Tanh` (DCGAN generator output).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the input tensor.
    pub fn tanh(&mut self, x: TensorId) -> Result<TensorId> {
        self.activation(x, Activation::Tanh)
    }

    /// Appends `Sigmoid`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the input tensor.
    pub fn sigmoid(&mut self, x: TensorId) -> Result<TensorId> {
        self.activation(x, Activation::Sigmoid)
    }

    /// Appends a rectangular `Conv2D` (Inception's 1x7/7x1 factorization).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the input tensor.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d_rect(
        &mut self,
        x: TensorId,
        out_channels: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        pad_h: usize,
        pad_w: usize,
    ) -> Result<TensorId> {
        let geom = ConvGeometry {
            kernel_h,
            kernel_w,
            stride_h: stride,
            stride_w: stride,
            pad_h,
            pad_w,
        };
        let (n, c, h, w) = self.shape_of(x)?.as_nchw()?;
        let (oh, ow) = geom.output_hw(h, w);
        let filter = self.graph.add_tensor(
            Shape::new(vec![out_channels, c, kernel_h, kernel_w]),
            TensorRole::Parameter,
            self.name("conv", "filter"),
        );
        let output = self.graph.add_tensor(
            Shape::new(vec![n, out_channels, oh, ow]),
            TensorRole::Activation,
            self.name("conv", "out"),
        );
        self.graph
            .add_op(OpKind::Conv2D(geom), vec![x, filter], vec![output])?;
        self.layers.push(Layer::Conv {
            geom,
            input: x,
            filter,
            output,
        });
        Ok(output)
    }

    /// Reinterprets an activation under a new shape with equal element
    /// count (e.g. `[n, c*h*w]` to `[n, c, h, w]` in DCGAN's generator).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::ShapeMismatch`] when element counts differ.
    pub fn reshape(&mut self, x: TensorId, dims: Vec<usize>) -> Result<TensorId> {
        let input_shape = self.shape_of(x)?;
        let shape = Shape::new(dims);
        if shape.numel() != input_shape.numel() {
            return Err(PimError::ShapeMismatch {
                context: "NetBuilder::reshape",
                expected: vec![input_shape.numel()],
                actual: vec![shape.numel()],
            });
        }
        let output =
            self.graph
                .add_tensor(shape, TensorRole::Activation, self.name("reshape", "out"));
        self.graph.add_op(OpKind::Reshape, vec![x], vec![output])?;
        self.layers.push(Layer::Flatten { input: x, output });
        Ok(output)
    }

    /// Appends `MaxPool`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the input tensor.
    pub fn max_pool(
        &mut self,
        x: TensorId,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<TensorId> {
        let geom = ConvGeometry::square(kernel, stride, pad);
        let (n, c, h, w) = self.shape_of(x)?.as_nchw()?;
        let (oh, ow) = geom.output_hw(h, w);
        let output = self.graph.add_tensor(
            Shape::new(vec![n, c, oh, ow]),
            TensorRole::Activation,
            self.name("pool", "out"),
        );
        let argmax = self.graph.add_tensor(
            Shape::new(vec![n * c * oh * ow]),
            TensorRole::Indices,
            self.name("pool", "argmax"),
        );
        self.graph
            .add_op(OpKind::MaxPool(geom), vec![x], vec![output, argmax])?;
        self.layers.push(Layer::MaxPool {
            geom,
            input: x,
            argmax,
            output,
        });
        Ok(output)
    }

    /// Appends `AvgPool`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the input tensor.
    pub fn avg_pool(
        &mut self,
        x: TensorId,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<TensorId> {
        let geom = ConvGeometry::square(kernel, stride, pad);
        let (n, c, h, w) = self.shape_of(x)?.as_nchw()?;
        let (oh, ow) = geom.output_hw(h, w);
        let output = self.graph.add_tensor(
            Shape::new(vec![n, c, oh, ow]),
            TensorRole::Activation,
            self.name("avgpool", "out"),
        );
        self.graph
            .add_op(OpKind::AvgPool(geom), vec![x], vec![output])?;
        self.layers.push(Layer::AvgPool {
            geom,
            input: x,
            output,
        });
        Ok(output)
    }

    /// Appends `FusedBatchNorm` (ResNet/Inception/DCGAN).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the input tensor.
    pub fn batch_norm(&mut self, x: TensorId) -> Result<TensorId> {
        let shape = self.shape_of(x)?;
        let (_, c, _, _) = shape.as_nchw()?;
        let output = self
            .graph
            .add_tensor(shape, TensorRole::Activation, self.name("bn", "out"));
        let mean = self.graph.add_tensor(
            Shape::new(vec![c]),
            TensorRole::Activation,
            self.name("bn", "mean"),
        );
        let var = self.graph.add_tensor(
            Shape::new(vec![c]),
            TensorRole::Activation,
            self.name("bn", "var"),
        );
        self.graph
            .add_op(OpKind::BatchNorm, vec![x], vec![output, mean, var])?;
        self.layers.push(Layer::BatchNorm { input: x, output });
        Ok(output)
    }

    /// Appends `LRN` (AlexNet).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the input tensor.
    pub fn lrn(&mut self, x: TensorId) -> Result<TensorId> {
        let shape = self.shape_of(x)?;
        let output = self
            .graph
            .add_tensor(shape, TensorRole::Activation, self.name("lrn", "out"));
        self.graph.add_op(OpKind::Lrn, vec![x], vec![output])?;
        self.layers.push(Layer::Lrn { input: x, output });
        Ok(output)
    }

    /// Appends `Dropout`; the keep mask is an input tensor refreshed per
    /// step.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the input tensor.
    pub fn dropout(&mut self, x: TensorId) -> Result<TensorId> {
        let shape = self.shape_of(x)?;
        let mask = self.graph.add_tensor(
            shape.clone(),
            TensorRole::Input,
            self.name("dropout", "mask"),
        );
        let output =
            self.graph
                .add_tensor(shape, TensorRole::Activation, self.name("dropout", "out"));
        self.graph
            .add_op(OpKind::Dropout, vec![x, mask], vec![output])?;
        self.layers.push(Layer::Dropout {
            input: x,
            mask,
            output,
        });
        Ok(output)
    }

    /// Flattens an NCHW activation into `[n, c*h*w]`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the input tensor.
    pub fn flatten(&mut self, x: TensorId) -> Result<TensorId> {
        let (n, c, h, w) = self.shape_of(x)?.as_nchw()?;
        let output = self.graph.add_tensor(
            Shape::new(vec![n, c * h * w]),
            TensorRole::Activation,
            self.name("flatten", "out"),
        );
        self.graph.add_op(OpKind::Reshape, vec![x], vec![output])?;
        self.layers.push(Layer::Flatten { input: x, output });
        Ok(output)
    }

    /// Appends an elementwise residual `Add` of two same-shaped activations
    /// (ResNet shortcut).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::ShapeMismatch`] when the operands differ in shape.
    pub fn add(&mut self, a: TensorId, b: TensorId) -> Result<TensorId> {
        let sa = self.shape_of(a)?;
        let sb = self.shape_of(b)?;
        if sa != sb {
            return Err(PimError::ShapeMismatch {
                context: "NetBuilder::add",
                expected: sa.dims().to_vec(),
                actual: sb.dims().to_vec(),
            });
        }
        let output =
            self.graph
                .add_tensor(sa, TensorRole::Activation, self.name("residual", "out"));
        self.graph
            .add_op(OpKind::Binary(BinaryOp::Add), vec![a, b], vec![output])?;
        self.layers.push(Layer::Add { a, b, output });
        Ok(output)
    }

    /// Appends a channel-axis `Concat` of NCHW activations with identical
    /// batch and spatial extents (Inception tower merge).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::ShapeMismatch`] when parts disagree on batch or
    /// spatial dimensions.
    pub fn concat_channels(&mut self, parts: &[TensorId]) -> Result<TensorId> {
        if parts.is_empty() {
            return Err(PimError::invalid(
                "NetBuilder::concat_channels",
                "at least one part required",
            ));
        }
        let (n, mut c_total, h, w) = self.shape_of(parts[0])?.as_nchw()?;
        for &p in &parts[1..] {
            let (pn, pc, ph, pw) = self.shape_of(p)?.as_nchw()?;
            if (pn, ph, pw) != (n, h, w) {
                return Err(PimError::ShapeMismatch {
                    context: "NetBuilder::concat_channels",
                    expected: vec![n, h, w],
                    actual: vec![pn, ph, pw],
                });
            }
            c_total += pc;
        }
        let output = self.graph.add_tensor(
            Shape::new(vec![n, c_total, h, w]),
            TensorRole::Activation,
            self.name("concat", "out"),
        );
        self.graph
            .add_op(OpKind::Concat, parts.to_vec(), vec![output])?;
        self.layers.push(Layer::ConcatChannels {
            parts: parts.to_vec(),
            output,
        });
        Ok(output)
    }

    /// Access to the graph under construction (for model builders that need
    /// raw ops).
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// Seals the network as a classifier: appends the fused
    /// softmax-cross-entropy loss on `logits`, then emits the full backward
    /// pass and one optimizer update per parameter.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the recorded layers.
    pub fn finish_classifier(mut self, logits: TensorId, opt: OptimizerKind) -> Result<Graph> {
        let (n, _) = self.shape_of(logits)?.as_matrix()?;
        let labels = self.graph.add_tensor(
            Shape::new(vec![n]),
            TensorRole::Labels,
            format!("{}/labels", self.prefix),
        );
        let loss = self.graph.add_tensor(
            Shape::scalar(),
            TensorRole::Scalar,
            format!("{}/loss", self.prefix),
        );
        let grad_logits = self.graph.add_tensor(
            self.shape_of(logits)?,
            TensorRole::Activation,
            format!("{}/grad_logits", self.prefix),
        );
        self.graph.add_op(
            OpKind::SoftmaxXent,
            vec![logits, labels],
            vec![loss, grad_logits],
        )?;
        self.emit_backward(logits, grad_logits, opt)?;
        self.graph.validate()?;
        Ok(self.graph)
    }

    /// Seals the network with an externally supplied loss gradient (used by
    /// GAN-style models where the loss is not a plain classifier).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the recorded layers.
    pub fn finish_with_gradient(
        mut self,
        output: TensorId,
        grad: TensorId,
        opt: OptimizerKind,
    ) -> Result<Graph> {
        self.emit_backward(output, grad, opt)?;
        self.graph.validate()?;
        Ok(self.graph)
    }

    /// True when a tensor should receive a gradient (activations only;
    /// inputs, labels, masks and parameters are handled elsewhere).
    fn wants_grad(&self, id: TensorId) -> Result<bool> {
        Ok(self.graph.tensor(id)?.role == TensorRole::Activation)
    }

    /// Sums a list of gradient contributions, emitting `Add` ops as needed.
    fn sum_grads(&mut self, like: TensorId, contributions: Vec<TensorId>) -> Result<TensorId> {
        let mut iter = contributions.into_iter();
        let mut acc = iter
            .next()
            .ok_or_else(|| PimError::internal("sum_grads called with no contributions"))?;
        for next in iter {
            let out = self.grad_tensor(like, "accum")?;
            self.graph
                .add_op(OpKind::Binary(BinaryOp::Add), vec![acc, next], vec![out])?;
            acc = out;
        }
        Ok(acc)
    }

    /// Emits backward + optimizer ops for the recorded tape, starting from
    /// `grad` as the gradient of `output`.
    fn emit_backward(
        &mut self,
        output: TensorId,
        grad: TensorId,
        opt: OptimizerKind,
    ) -> Result<()> {
        let mut grads: HashMap<TensorId, Vec<TensorId>> = HashMap::new();
        grads.insert(output, vec![grad]);
        let layers = std::mem::take(&mut self.layers);
        for layer in layers.iter().rev() {
            let Some(contributions) = grads.remove(&layer.output()) else {
                continue; // dead branch: nothing downstream used this output
            };
            let g = self.sum_grads(layer.output(), contributions)?;
            self.emit_layer_backward(layer, g, &mut grads, opt)?;
        }
        Ok(())
    }

    fn grad_tensor(&mut self, like: TensorId, label: &str) -> Result<TensorId> {
        let shape = self.shape_of(like)?;
        let name = format!("grad/{}/{}", label, self.graph.tensor(like)?.name);
        Ok(self.graph.add_tensor(shape, TensorRole::Activation, name))
    }

    fn emit_update(&mut self, param: TensorId, grad: TensorId, opt: OptimizerKind) -> Result<()> {
        let done = self.graph.add_tensor(
            Shape::scalar(),
            TensorRole::Scalar,
            format!("update/{}", self.graph.tensor(param)?.name),
        );
        self.graph
            .add_op(opt.op_kind(), vec![param, grad], vec![done])?;
        Ok(())
    }

    /// Records `g` as a gradient contribution for forward tensor `input`,
    /// if that tensor wants one.
    fn contribute(
        &self,
        grads: &mut HashMap<TensorId, Vec<TensorId>>,
        input: TensorId,
        g: TensorId,
    ) -> Result<()> {
        if self.wants_grad(input)? {
            grads.entry(input).or_default().push(g);
        }
        Ok(())
    }

    fn emit_layer_backward(
        &mut self,
        layer: &Layer,
        grad_out: TensorId,
        grads: &mut HashMap<TensorId, Vec<TensorId>>,
        opt: OptimizerKind,
    ) -> Result<()> {
        match *layer {
            Layer::Conv {
                geom,
                input,
                filter,
                ..
            }
            | Layer::ConvTranspose {
                geom,
                input,
                filter,
                ..
            } => {
                // For the transposed convolution the gradient w.r.t. the
                // filter has the same conv-like cost, and the gradient
                // w.r.t. the input is a forward-convolution shape; both are
                // modeled by the standard backprop kinds.
                let grad_filter = self.grad_tensor(filter, "filter")?;
                self.graph.add_op(
                    OpKind::Conv2DBackpropFilter(geom),
                    vec![input, grad_out],
                    vec![grad_filter],
                )?;
                self.emit_update(filter, grad_filter, opt)?;
                if self.wants_grad(input)? {
                    let grad_input = self.grad_tensor(input, "input")?;
                    self.graph.add_op(
                        OpKind::Conv2DBackpropInput(geom),
                        vec![filter, grad_out],
                        vec![grad_input],
                    )?;
                    self.contribute(grads, input, grad_input)?;
                }
            }
            Layer::Dense { input, weight, .. } => {
                let grad_weight = self.grad_tensor(weight, "weight")?;
                self.graph.add_op(
                    OpKind::MatMul(Transpose { a: true, b: false }),
                    vec![input, grad_out],
                    vec![grad_weight],
                )?;
                self.emit_update(weight, grad_weight, opt)?;
                if self.wants_grad(input)? {
                    let grad_input = self.grad_tensor(input, "input")?;
                    self.graph.add_op(
                        OpKind::MatMul(Transpose { a: false, b: true }),
                        vec![grad_out, weight],
                        vec![grad_input],
                    )?;
                    self.contribute(grads, input, grad_input)?;
                }
            }
            Layer::Bias { input, bias, .. } => {
                let grad_bias = self.grad_tensor(bias, "bias")?;
                self.graph
                    .add_op(OpKind::BiasAddGrad, vec![grad_out], vec![grad_bias])?;
                self.emit_update(bias, grad_bias, opt)?;
                // The input gradient of BiasAdd is the output gradient
                // unchanged — no op is emitted (TensorFlow does the same).
                self.contribute(grads, input, grad_out)?;
            }
            Layer::Activation {
                kind,
                input,
                output,
            } => {
                if self.wants_grad(input)? {
                    let grad_input = self.grad_tensor(input, "act")?;
                    self.graph.add_op(
                        OpKind::ActivationGrad(kind),
                        vec![grad_out, input, output],
                        vec![grad_input],
                    )?;
                    self.contribute(grads, input, grad_input)?;
                }
            }
            Layer::MaxPool {
                geom,
                input,
                argmax,
                ..
            } => {
                if self.wants_grad(input)? {
                    let grad_input = self.grad_tensor(input, "pool")?;
                    self.graph.add_op(
                        OpKind::MaxPoolGrad(geom),
                        vec![grad_out, argmax],
                        vec![grad_input],
                    )?;
                    self.contribute(grads, input, grad_input)?;
                }
            }
            Layer::AvgPool { geom, input, .. } => {
                if self.wants_grad(input)? {
                    let grad_input = self.grad_tensor(input, "avgpool")?;
                    self.graph.add_op(
                        OpKind::AvgPoolGrad(geom),
                        vec![grad_out],
                        vec![grad_input],
                    )?;
                    self.contribute(grads, input, grad_input)?;
                }
            }
            Layer::BatchNorm { input, .. } => {
                if self.wants_grad(input)? {
                    let grad_input = self.grad_tensor(input, "bn")?;
                    self.graph.add_op(
                        OpKind::BatchNormGrad,
                        vec![grad_out, input],
                        vec![grad_input],
                    )?;
                    self.contribute(grads, input, grad_input)?;
                }
            }
            Layer::Lrn { input, .. } => {
                if self.wants_grad(input)? {
                    let grad_input = self.grad_tensor(input, "lrn")?;
                    self.graph
                        .add_op(OpKind::LrnGrad, vec![grad_out, input], vec![grad_input])?;
                    self.contribute(grads, input, grad_input)?;
                }
            }
            Layer::Dropout { input, mask, .. } => {
                if self.wants_grad(input)? {
                    let grad_input = self.grad_tensor(input, "dropout")?;
                    self.graph.add_op(
                        OpKind::Binary(BinaryOp::Mul),
                        vec![grad_out, mask],
                        vec![grad_input],
                    )?;
                    self.contribute(grads, input, grad_input)?;
                }
            }
            Layer::Flatten { input, .. } => {
                if self.wants_grad(input)? {
                    let grad_input = self.grad_tensor(input, "flatten")?;
                    self.graph
                        .add_op(OpKind::Reshape, vec![grad_out], vec![grad_input])?;
                    self.contribute(grads, input, grad_input)?;
                }
            }
            Layer::Add { a, b, .. } => {
                // The gradient of an add flows unchanged into both branches.
                self.contribute(grads, a, grad_out)?;
                self.contribute(grads, b, grad_out)?;
            }
            Layer::ConcatChannels { ref parts, .. } => {
                let mut offset = 0usize;
                for &part in parts {
                    let len = self.shape_of(part)?.numel();
                    if self.wants_grad(part)? {
                        let grad_part = self.grad_tensor(part, "concat")?;
                        self.graph.add_op(
                            OpKind::Slice { start: offset, len },
                            vec![grad_out],
                            vec![grad_part],
                        )?;
                        self.contribute(grads, part, grad_part)?;
                    }
                    offset += len;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cnn() -> Graph {
        let mut net = NetBuilder::new("t");
        let x = net.input(2, 1, 8, 8);
        let x = net.conv2d(x, 4, 3, 1, 1).unwrap();
        let x = net.bias(x).unwrap();
        let x = net.relu(x).unwrap();
        let x = net.max_pool(x, 2, 2, 0).unwrap();
        let x = net.flatten(x).unwrap();
        let x = net.dense(x, 10).unwrap();
        net.finish_classifier(x, OptimizerKind::Adam).unwrap()
    }

    #[test]
    fn classifier_graph_validates() {
        let g = tiny_cnn();
        g.validate().unwrap();
    }

    #[test]
    fn backward_ops_are_present() {
        let g = tiny_cnn();
        let counts = g.invocation_counts();
        assert_eq!(counts["Conv2D"], 1);
        assert_eq!(counts["Conv2DBackpropFilter"], 1);
        // conv is the first layer: no input gradient (the paper's VGG shows
        // 16 convs but only 15 backprop-input ops).
        assert!(!counts.contains_key("Conv2DBackpropInput"));
        assert_eq!(counts["BiasAddGrad"], 1);
        assert_eq!(counts["ReluGrad"], 1);
        assert_eq!(counts["MaxPoolGrad"], 1);
        // fc weight + conv filter + bias = 3 Adam updates.
        assert_eq!(counts["ApplyAdam"], 3);
        // forward fc + grad-weight + grad-input MatMuls.
        assert_eq!(counts["MatMul"], 3);
    }

    #[test]
    fn two_conv_layers_produce_one_backprop_input() {
        let mut net = NetBuilder::new("t2");
        let x = net.input(1, 1, 8, 8);
        let x = net.conv2d(x, 2, 3, 1, 1).unwrap();
        let x = net.conv2d(x, 2, 3, 1, 1).unwrap();
        let x = net.flatten(x).unwrap();
        let x = net.dense(x, 4).unwrap();
        let g = net.finish_classifier(x, OptimizerKind::Sgd).unwrap();
        let counts = g.invocation_counts();
        assert_eq!(counts["Conv2D"], 2);
        assert_eq!(counts["Conv2DBackpropFilter"], 2);
        assert_eq!(counts["Conv2DBackpropInput"], 1);
        assert_eq!(counts["ApplyGradientDescent"], 3);
    }

    #[test]
    fn residual_branch_accumulates_gradients() {
        let mut net = NetBuilder::new("res");
        let x = net.input(1, 4, 8, 8);
        let trunk = net.conv2d(x, 4, 3, 1, 1).unwrap();
        let branch = net.conv2d(trunk, 4, 3, 1, 1).unwrap();
        let merged = net.add(trunk, branch).unwrap();
        let flat = net.flatten(merged).unwrap();
        let logits = net.dense(flat, 2).unwrap();
        let g = net.finish_classifier(logits, OptimizerKind::Sgd).unwrap();
        g.validate().unwrap();
        let counts = g.invocation_counts();
        // trunk receives gradients from both the shortcut and the branch:
        // one extra Add to accumulate them (plus the forward residual Add).
        assert_eq!(counts["Add"], 2);
        assert_eq!(counts["Conv2DBackpropFilter"], 2);
        // Only the second conv produces an input gradient (the first conv's
        // input is the minibatch).
        assert_eq!(counts["Conv2DBackpropInput"], 1);
    }

    #[test]
    fn concat_backward_emits_slices() {
        let mut net = NetBuilder::new("inc");
        let x = net.input(1, 4, 8, 8);
        let a = net.conv2d(x, 2, 1, 1, 0).unwrap();
        let b = net.conv2d(x, 3, 3, 1, 1).unwrap();
        let merged = net.concat_channels(&[a, b]).unwrap();
        let flat = net.flatten(merged).unwrap();
        let logits = net.dense(flat, 2).unwrap();
        let g = net.finish_classifier(logits, OptimizerKind::Adam).unwrap();
        g.validate().unwrap();
        let counts = g.invocation_counts();
        assert_eq!(counts["ConcatV2"], 1);
        assert_eq!(counts["Slice"], 2);
    }

    #[test]
    fn parameter_bytes_counts_only_parameters() {
        let g = tiny_cnn();
        // conv filter 4*1*3*3 + bias 4 + fc 64*10 = 36 + 4 + 640 floats.
        assert_eq!(g.parameter_bytes(), (36 + 4 + 640) * 4);
    }

    #[test]
    fn every_op_has_a_cost() {
        let g = tiny_cnn();
        let costs = crate::cost::graph_costs(&g).unwrap();
        assert_eq!(costs.len(), g.op_count());
        assert!(costs.iter().all(pim_tensor::CostProfile::is_well_formed));
    }

    #[test]
    fn concat_rejects_spatial_mismatch() {
        let mut net = NetBuilder::new("bad");
        let x = net.input(1, 2, 8, 8);
        let a = net.conv2d(x, 2, 3, 1, 1).unwrap(); // 8x8
        let b = net.max_pool(a, 2, 2, 0).unwrap(); // 4x4
        assert!(net.concat_channels(&[a, b]).is_err());
    }
}
