//! Seeded deterministic random-graph generation.
//!
//! Differential and property-based tests need arbitrary-but-reproducible
//! dataflow DAGs: the same seed must build the same graph on every run, on
//! every machine, so a failing case can be named by its seed alone. The
//! generator builds layered DAGs mixing op kinds across the offload
//! classes (mul-add heavy MatMul, partially offloadable elementwise ops,
//! CPU-leaning reshapes), which is exactly the placement diversity the
//! scheduler's code paths branch on.

use crate::graph::Graph;
use crate::node::{OpKind, TensorRole};
use pim_tensor::ops::activation::Activation;
use pim_tensor::ops::elementwise::BinaryOp;
use pim_tensor::ops::matmul::Transpose;
use pim_tensor::Shape;

/// A tiny xorshift* generator: deterministic, dependency-free, and stable
/// across platforms. Not for cryptography or statistics — for naming test
/// cases by seed.
#[derive(Debug, Clone)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Seeds the generator (a zero seed is mapped to a nonzero state).
    pub fn new(seed: u64) -> Self {
        XorShiftRng { state: seed | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `0..m` (`m` must be nonzero).
    pub fn below(&mut self, m: usize) -> usize {
        (self.next_u64() % m as u64) as usize
    }
}

/// Shape parameters of one generated DAG. The graph is a pure function of
/// the spec: equal specs build byte-identical graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenSpec {
    /// Ranks of ops after the input layer.
    pub layers: usize,
    /// Ops per rank.
    pub width: usize,
    /// Square tensor dimension (every tensor is `dim x dim`, so MatMul
    /// operands always conform).
    pub dim: usize,
    /// The RNG seed driving operand and op-kind choices.
    pub seed: u64,
}

impl GenSpec {
    /// Derives a complete spec from a single seed: layers in 1..=8, width
    /// in 1..=4, dim in {8, 16, 32, 64}. The one-number spelling the
    /// differential suite iterates over.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = XorShiftRng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        GenSpec {
            layers: 1 + rng.below(8),
            width: 1 + rng.below(4),
            dim: 8 << rng.below(4),
            seed,
        }
    }
}

/// Builds the layered random DAG a spec describes.
///
/// Each rank holds `width` ops, each consuming one or two tensors from the
/// previous rank's frontier; op kinds rotate through elementwise add,
/// MatMul, activations, and reshape so every placement class appears. The
/// result always validates (it is acyclic by construction).
///
/// # Examples
///
/// ```
/// use pim_graph::gen::{random_dag, GenSpec};
///
/// let spec = GenSpec { layers: 3, width: 2, dim: 8, seed: 42 };
/// let g = random_dag(&spec);
/// assert_eq!(g.op_count(), 6);
/// assert!(g.validate().is_ok());
/// // Same spec, same graph — reproducible down to the fingerprint.
/// assert_eq!(g.structural_hash(), random_dag(&spec).structural_hash());
/// ```
pub fn random_dag(spec: &GenSpec) -> Graph {
    let mut g = Graph::new();
    let shape = || Shape::new(vec![spec.dim, spec.dim]);
    let mut frontier: Vec<_> = (0..spec.width)
        .map(|i| g.add_tensor(shape(), TensorRole::Input, format!("in{i}")))
        .collect();
    let mut rng = XorShiftRng::new(spec.seed);
    for layer in 0..spec.layers {
        let mut new_frontier = Vec::new();
        for slot in 0..spec.width {
            let out = g.add_tensor(shape(), TensorRole::Activation, format!("t{layer}_{slot}"));
            let a = frontier[rng.below(frontier.len())];
            match rng.below(4) {
                0 => {
                    let b = frontier[rng.below(frontier.len())];
                    if a == b {
                        g.add_op(OpKind::Activation(Activation::Relu), vec![a], vec![out])
                            .expect("generated operands exist");
                    } else {
                        g.add_op(OpKind::Binary(BinaryOp::Add), vec![a, b], vec![out])
                            .expect("generated operands exist");
                    }
                }
                1 => {
                    let b = frontier[rng.below(frontier.len())];
                    g.add_op(OpKind::MatMul(Transpose::NONE), vec![a, b], vec![out])
                        .expect("generated operands exist");
                }
                2 => {
                    g.add_op(OpKind::Activation(Activation::Tanh), vec![a], vec![out])
                        .expect("generated operands exist");
                }
                _ => {
                    g.add_op(OpKind::Reshape, vec![a], vec![out])
                        .expect("generated operands exist");
                }
            }
            new_frontier.push(out);
        }
        frontier = new_frontier;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            let spec = GenSpec::from_seed(seed);
            let a = random_dag(&spec);
            let b = random_dag(&spec);
            assert_eq!(a.structural_hash(), b.structural_hash(), "seed {seed}");
            assert_eq!(a.op_count(), spec.layers * spec.width);
        }
    }

    #[test]
    fn distinct_seeds_build_distinct_graphs() {
        let hashes: std::collections::HashSet<u64> = (0..50)
            .map(|seed| random_dag(&GenSpec::from_seed(seed)).structural_hash())
            .collect();
        // Specs collide occasionally (small parameter space), but most
        // seeds must differ structurally.
        assert!(hashes.len() > 40, "only {} distinct graphs", hashes.len());
    }

    #[test]
    fn every_generated_graph_validates() {
        for seed in 0..50 {
            let g = random_dag(&GenSpec::from_seed(seed));
            assert!(g.validate().is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn generator_covers_multiple_op_kinds() {
        let g = random_dag(&GenSpec {
            layers: 8,
            width: 4,
            dim: 8,
            seed: 3,
        });
        let names: std::collections::HashSet<_> =
            g.ops().iter().map(|op| op.kind.tf_name()).collect();
        assert!(names.len() >= 3, "kinds seen: {names:?}");
    }
}
