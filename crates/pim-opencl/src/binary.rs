//! Binary generation — the four binaries of Fig. 4.
//!
//! "Given an OpenCL kernel for a task, we generate four binary files:
//! (#1) to execute on CPU, (#2) to execute on fixed-function PIMs,
//! (#3) a set of small kernels extracted for fixed-function PIMs, and
//! (#4) the kernel with extracted regions replaced by kernel calls, to
//! execute on the programmable PIM." (§IV-B)

use crate::kir::{KernelSource, Region};
use pim_common::{PimError, Result};
use serde::{Deserialize, Serialize};

/// An extracted fixed-function sub-kernel (one entry of binary #3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedKernel {
    /// Multiplications in the sub-kernel.
    pub muls: f64,
    /// Additions in the sub-kernel.
    pub adds: f64,
    /// Fixed-function units the sub-kernel occupies at once.
    pub parallelism: usize,
}

/// The complete compilation result for one operation kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinarySet {
    /// Kernel name.
    pub name: String,
    /// Binary #1 — the unmodified kernel for the CPU (always present).
    pub cpu: KernelSource,
    /// Binary #2 — the whole kernel for fixed-function PIMs; present only
    /// when the kernel is pure multiply/add.
    pub fixed_whole: Option<KernelSource>,
    /// Binary #3 — small kernels extracted for fixed-function PIMs.
    pub fixed_kernels: Vec<FixedKernel>,
    /// Binary #4 — the programmable-PIM kernel with extracted regions
    /// replaced by [`Region::CallFixed`] sites.
    pub progr: KernelSource,
}

impl BinarySet {
    /// Runs the binary-generation pass on a kernel.
    ///
    /// # Examples
    ///
    /// ```
    /// use pim_opencl::binary::BinarySet;
    /// use pim_opencl::kir::KernelSource;
    /// use pim_tensor::cost::{CostProfile, OffloadClass};
    /// use pim_common::units::Bytes;
    ///
    /// # fn main() -> pim_common::Result<()> {
    /// let cost = CostProfile::compute(
    ///     1000.0, 990.0, 50.0, Bytes::new(8e3), Bytes::new(4e3),
    ///     OffloadClass::PartiallyMulAdd { ma_fraction: 0.97 }, 241,
    /// );
    /// let set = BinarySet::generate(KernelSource::from_cost("Conv2DBackpropFilter", &cost))?;
    /// assert!(set.fixed_whole.is_none());       // not pure mul/add
    /// assert_eq!(set.fixed_kernels.len(), 1);   // one extracted conv core
    /// assert!(set.supports_recursive_kernel());
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`PimError::KernelIndexOutOfBounds`] when the input kernel
    /// already contains a [`Region::CallFixed`] site whose index does not
    /// resolve against the extracted kernel list — the silent
    /// out-of-bounds that would otherwise only fault at execution time.
    pub fn generate(kernel: KernelSource) -> Result<Self> {
        let mut fixed_kernels = Vec::new();
        let mut progr_body = Vec::with_capacity(kernel.body.len());
        for region in &kernel.body {
            match *region {
                Region::MulAdd {
                    muls,
                    adds,
                    parallelism,
                } => {
                    let kernel_index = fixed_kernels.len();
                    fixed_kernels.push(FixedKernel {
                        muls,
                        adds,
                        parallelism,
                    });
                    progr_body.push(Region::CallFixed { kernel_index });
                }
                ref other => progr_body.push(other.clone()),
            }
        }
        // Pre-existing call sites (a kernel that was already split once)
        // pass through extraction unchanged; validate them against the
        // final kernel list instead of letting execution index past it.
        for region in &progr_body {
            if let Region::CallFixed { kernel_index } = *region {
                if kernel_index >= fixed_kernels.len() {
                    return Err(PimError::KernelIndexOutOfBounds {
                        kernel: kernel.name.clone(),
                        index: kernel_index,
                        available: fixed_kernels.len(),
                    });
                }
            }
        }
        let fixed_whole = if kernel.is_pure_mul_add() {
            Some(kernel.clone())
        } else {
            None
        };
        Ok(BinarySet {
            name: kernel.name.clone(),
            progr: KernelSource {
                name: format!("{}_progr", kernel.name),
                body: progr_body,
            },
            cpu: kernel,
            fixed_whole,
            fixed_kernels,
        })
    }

    /// True when the programmable binary invokes fixed-function kernels —
    /// the recursive-PIM-kernel execution scheme applies.
    pub fn supports_recursive_kernel(&self) -> bool {
        !self.fixed_kernels.is_empty()
            && self
                .progr
                .body
                .iter()
                .any(|r| matches!(r, Region::CallFixed { .. }))
    }

    /// True when the whole operation can be dispatched directly to the
    /// fixed-function pool from the host.
    pub fn runs_whole_on_fixed(&self) -> bool {
        self.fixed_whole.is_some()
    }

    /// Multiply/add flops moved into fixed kernels by the extraction.
    pub fn extracted_flops(&self) -> f64 {
        self.fixed_kernels.iter().map(|k| k.muls + k.adds).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_common::units::Bytes;
    use pim_tensor::cost::{CostProfile, OffloadClass};

    fn kernel(class: OffloadClass) -> KernelSource {
        let cost = CostProfile::compute(
            64.0,
            64.0,
            16.0,
            Bytes::new(1024.0),
            Bytes::new(512.0),
            class,
            9,
        );
        KernelSource::from_cost("k", &cost)
    }

    #[test]
    fn pure_mul_add_gets_all_four_binaries() {
        let set = BinarySet::generate(kernel(OffloadClass::FullyMulAdd)).unwrap();
        assert!(set.runs_whole_on_fixed());
        assert!(set.supports_recursive_kernel());
        assert_eq!(set.extracted_flops(), 128.0);
    }

    #[test]
    fn non_mul_add_gets_no_fixed_binaries() {
        let set = BinarySet::generate(kernel(OffloadClass::NonMulAdd)).unwrap();
        assert!(!set.runs_whole_on_fixed());
        assert!(!set.supports_recursive_kernel());
        assert!(set.fixed_kernels.is_empty());
    }

    #[test]
    fn extraction_preserves_total_mul_add_work() {
        let src = kernel(OffloadClass::PartiallyMulAdd { ma_fraction: 0.89 });
        let total = src.mul_add_flops();
        let set = BinarySet::generate(src).unwrap();
        assert_eq!(set.extracted_flops(), total);
        // The programmable binary keeps no MulAdd regions.
        assert!(!set.progr.has_mul_add_region());
    }

    #[test]
    fn call_sites_reference_extracted_kernels() {
        let set = BinarySet::generate(kernel(OffloadClass::PartiallyMulAdd { ma_fraction: 0.89 }))
            .unwrap();
        for region in &set.progr.body {
            if let Region::CallFixed { kernel_index } = region {
                assert!(*kernel_index < set.fixed_kernels.len());
            }
        }
    }

    #[test]
    fn cpu_binary_is_the_original_kernel() {
        let src = kernel(OffloadClass::PartiallyMulAdd { ma_fraction: 0.89 });
        let set = BinarySet::generate(src.clone()).unwrap();
        assert_eq!(set.cpu, src);
    }
}
