//! A directive-style kernel frontend (the OpenACC role of §III-B).
//!
//! "To write OpenCL code for operations, one can use OpenACC directives and
//! compilers to automatically transform the original code into OpenCL
//! code." This module provides that higher-level path: a loop nest is
//! described with parallel/sequential directives and statement bodies, and
//! lowering produces the same [`KernelSource`] IR the binary-generation
//! pass consumes — so a directive-annotated operation compiles into the
//! full four-binary set without the author touching the IR.

use crate::kir::{KernelSource, Region};
use pim_common::{PimError, Result};
use serde::{Deserialize, Serialize};

/// What a loop-body statement computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Statement {
    /// `acc += a * b` — a fused multiply-accumulate.
    MultiplyAccumulate,
    /// `out = a * b`.
    Multiply,
    /// `out = a + b`.
    Add,
    /// A comparison/select (max, relu-style conditional).
    CompareSelect,
    /// A transcendental (exp, tanh, sqrt, division).
    Transcendental,
    /// A pure copy (gather/scatter/slice).
    Copy,
}

/// How a loop is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopDirective {
    /// `#pragma acc parallel` — iterations are independent.
    Parallel,
    /// `#pragma acc seq` — iterations carry a dependency.
    Sequential,
}

/// One loop of the nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Loop {
    /// Trip count.
    pub trip_count: u64,
    /// Scheduling directive.
    pub directive: LoopDirective,
}

/// A directive-annotated loop nest: loops outermost-first, plus the
/// statements of the innermost body.
///
/// # Examples
///
/// A 3x3 convolution window accumulation, parallel over outputs and
/// sequential over the window:
///
/// ```
/// use pim_opencl::directive::{DirectiveKernel, Loop, LoopDirective, Statement};
///
/// # fn main() -> pim_common::Result<()> {
/// let kernel = DirectiveKernel::new("conv_window")
///     .with_loop(Loop { trip_count: 1024, directive: LoopDirective::Parallel })
///     .with_loop(Loop { trip_count: 9, directive: LoopDirective::Sequential })
///     .with_statement(Statement::MultiplyAccumulate)
///     .lower()?;
/// assert!(kernel.is_pure_mul_add());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectiveKernel {
    name: String,
    loops: Vec<Loop>,
    body: Vec<Statement>,
}

impl DirectiveKernel {
    /// Starts a kernel description.
    pub fn new(name: impl Into<String>) -> Self {
        DirectiveKernel {
            name: name.into(),
            loops: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Appends a loop (outermost first).
    #[must_use]
    pub fn with_loop(mut self, l: Loop) -> Self {
        self.loops.push(l);
        self
    }

    /// Appends a body statement.
    #[must_use]
    pub fn with_statement(mut self, s: Statement) -> Self {
        self.body.push(s);
        self
    }

    /// Total innermost-body executions.
    fn iterations(&self) -> f64 {
        self.loops.iter().map(|l| l.trip_count as f64).product()
    }

    /// The parallelism the directives expose: the product of parallel trip
    /// counts (what the fixed-function pool can exploit at once).
    pub fn exposed_parallelism(&self) -> u64 {
        self.loops
            .iter()
            .filter(|l| l.directive == LoopDirective::Parallel)
            .map(|l| l.trip_count)
            .product::<u64>()
            .max(1)
    }

    /// Lowers the directives into kernel IR.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::InvalidArgument`] for empty bodies or zero trip
    /// counts.
    pub fn lower(&self) -> Result<KernelSource> {
        if self.body.is_empty() {
            return Err(PimError::invalid("DirectiveKernel::lower", "empty body"));
        }
        if self.loops.iter().any(|l| l.trip_count == 0) {
            return Err(PimError::invalid(
                "DirectiveKernel::lower",
                "zero trip count",
            ));
        }
        let iters = self.iterations();
        let (mut muls, mut adds, mut other, mut copies) = (0.0f64, 0.0, 0.0, 0.0);
        for s in &self.body {
            match s {
                Statement::MultiplyAccumulate => {
                    muls += iters;
                    adds += iters;
                }
                Statement::Multiply => muls += iters,
                Statement::Add => adds += iters,
                Statement::CompareSelect => other += iters,
                Statement::Transcendental => other += 4.0 * iters,
                Statement::Copy => copies += iters,
            }
        }
        let parallelism = usize::try_from(self.exposed_parallelism()).unwrap_or(usize::MAX);
        let mut body = Vec::new();
        // Loop bookkeeping: one control op per iteration of each loop level.
        let control: f64 = self
            .loops
            .iter()
            .scan(1.0f64, |outer, l| {
                *outer *= l.trip_count as f64;
                Some(*outer)
            })
            .sum();
        body.push(Region::Control {
            ops: control + copies,
        });
        if muls + adds > 0.0 {
            body.push(Region::MulAdd {
                muls,
                adds,
                parallelism,
            });
        }
        if other > 0.0 {
            body.push(Region::OtherArithmetic { flops: other });
        }
        Ok(KernelSource {
            name: self.name.clone(),
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::BinarySet;

    fn mac_nest() -> DirectiveKernel {
        DirectiveKernel::new("gemm_tile")
            .with_loop(Loop {
                trip_count: 64,
                directive: LoopDirective::Parallel,
            })
            .with_loop(Loop {
                trip_count: 64,
                directive: LoopDirective::Parallel,
            })
            .with_loop(Loop {
                trip_count: 32,
                directive: LoopDirective::Sequential,
            })
            .with_statement(Statement::MultiplyAccumulate)
    }

    #[test]
    fn mac_nest_lowers_to_pure_mul_add() {
        let kernel = mac_nest().lower().unwrap();
        assert!(kernel.is_pure_mul_add());
        assert_eq!(kernel.mul_add_flops(), 2.0 * 64.0 * 64.0 * 32.0);
    }

    #[test]
    fn lowered_kernels_feed_binary_generation() {
        let set = BinarySet::generate(mac_nest().lower().unwrap()).unwrap();
        assert!(set.runs_whole_on_fixed());
        assert!(set.supports_recursive_kernel());
    }

    #[test]
    fn relu_nest_is_not_offloadable() {
        let kernel = DirectiveKernel::new("relu")
            .with_loop(Loop {
                trip_count: 4096,
                directive: LoopDirective::Parallel,
            })
            .with_statement(Statement::CompareSelect)
            .lower()
            .unwrap();
        assert!(!kernel.has_mul_add_region());
    }

    #[test]
    fn parallel_loops_expose_parallelism() {
        assert_eq!(mac_nest().exposed_parallelism(), 64 * 64);
    }

    #[test]
    fn invalid_nests_are_rejected() {
        assert!(DirectiveKernel::new("empty").lower().is_err());
        let zero = DirectiveKernel::new("zero")
            .with_loop(Loop {
                trip_count: 0,
                directive: LoopDirective::Parallel,
            })
            .with_statement(Statement::Add);
        assert!(zero.lower().is_err());
    }
}
