//! The low-level PIM API of Table III.
//!
//! "(1) offloading a specific operation into specific PIM(s); (2) tracking
//! the status of PIMs, including examining whether a PIM is busy or not;
//! (3) querying the completion of a specific operation; (4) querying the
//! computation location (i.e., which PIM) and input/output data location
//! (i.e., which DRAM banks) for a specific operation." (§IV-A)

use pim_common::ids::{BankId, OpId};
use pim_common::{PimError, Result};
use pim_hw::registers::StatusRegisters;
use serde::Serialize;
use std::collections::HashMap;

/// Where an operation's computation was placed.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ComputePlacement {
    /// On fixed-function PIMs of the listed banks, occupying `units` pairs.
    FixedFunction {
        /// Banks whose units participate.
        banks: Vec<BankId>,
        /// Total multiplier/adder pairs granted.
        units: usize,
    },
    /// On the programmable PIM.
    Programmable,
    /// On the host CPU (not offloaded).
    Host,
}

/// Full placement record for one offloaded operation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OpPlacement {
    /// Where the computation ran.
    pub compute: ComputePlacement,
    /// Banks holding the operation's input/output tensors.
    pub data_banks: Vec<BankId>,
}

/// The low-level runtime API over the Fig. 7 status registers.
///
/// # Examples
///
/// ```
/// use pim_opencl::api::{ComputePlacement, LowLevelApi, OpPlacement};
/// use pim_common::ids::{BankId, OpId};
///
/// let mut api = LowLevelApi::new(32);
/// api.pim_offload(OpId::new(0), OpPlacement {
///     compute: ComputePlacement::FixedFunction {
///         banks: vec![BankId::new(0)],
///         units: 24,
///     },
///     data_banks: vec![BankId::new(0)],
/// }).unwrap();
/// assert!(api.pim_is_busy(BankId::new(0)).unwrap());
/// assert!(!api.pim_query_completion(OpId::new(0)));
/// api.pim_complete(OpId::new(0)).unwrap();
/// assert!(api.pim_query_completion(OpId::new(0)));
/// ```
#[derive(Debug, Clone)]
pub struct LowLevelApi {
    registers: StatusRegisters,
    placements: HashMap<OpId, OpPlacement>,
    completed: HashMap<OpId, bool>,
}

impl LowLevelApi {
    /// An API instance over a `banks`-bank register file.
    pub fn new(banks: usize) -> Self {
        LowLevelApi {
            registers: StatusRegisters::new(banks),
            placements: HashMap::new(),
            completed: HashMap::new(),
        }
    }

    /// Table III function 1: offload an operation to specific PIM(s).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::InvalidArgument`] if the op is already in
    /// flight, or register errors for unknown banks.
    pub fn pim_offload(&mut self, op: OpId, placement: OpPlacement) -> Result<()> {
        if matches!(self.completed.get(&op), Some(false)) {
            return Err(PimError::invalid(
                "pim_offload",
                format!("{op} is already in flight"),
            ));
        }
        match &placement.compute {
            ComputePlacement::FixedFunction { banks, .. } => {
                for &bank in banks {
                    self.registers.set_bank_busy(bank, true)?;
                }
            }
            ComputePlacement::Programmable => self.registers.set_progr_busy(true),
            ComputePlacement::Host => {}
        }
        self.placements.insert(op, placement);
        self.completed.insert(op, false);
        Ok(())
    }

    /// Table III function 2: is a fixed-function bank busy?
    ///
    /// # Errors
    ///
    /// Returns [`PimError::UnknownId`] for unknown banks.
    pub fn pim_is_busy(&self, bank: BankId) -> Result<bool> {
        self.registers.bank_busy(bank)
    }

    /// Is the programmable PIM busy?
    pub fn progr_is_busy(&self) -> bool {
        self.registers.progr_busy()
    }

    /// Table III function 3: has the operation completed?
    pub fn pim_query_completion(&self, op: OpId) -> bool {
        self.completed.get(&op).copied().unwrap_or(false)
    }

    /// Table III function 4: where did the operation compute and where is
    /// its data?
    pub fn pim_query_location(&self, op: OpId) -> Option<&OpPlacement> {
        self.placements.get(&op)
    }

    /// Marks an operation complete, freeing its busy registers.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::UnknownId`] for operations never offloaded.
    pub fn pim_complete(&mut self, op: OpId) -> Result<()> {
        let placement = self.placements.get(&op).ok_or(PimError::UnknownId {
            kind: "op placement",
            index: op.index(),
        })?;
        match &placement.compute {
            ComputePlacement::FixedFunction { banks, .. } => {
                let banks = banks.clone();
                for bank in banks {
                    self.registers.set_bank_busy(bank, false)?;
                }
            }
            ComputePlacement::Programmable => self.registers.set_progr_busy(false),
            ComputePlacement::Host => {}
        }
        self.completed.insert(op, true);
        Ok(())
    }

    /// View of the underlying registers (for the scheduler's idleness
    /// decisions).
    pub fn registers(&self) -> &StatusRegisters {
        &self.registers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ff_placement(bank: usize) -> OpPlacement {
        OpPlacement {
            compute: ComputePlacement::FixedFunction {
                banks: vec![BankId::new(bank)],
                units: 8,
            },
            data_banks: vec![BankId::new(bank)],
        }
    }

    #[test]
    fn offload_complete_cycle_updates_registers() {
        let mut api = LowLevelApi::new(4);
        api.pim_offload(OpId::new(1), ff_placement(2)).unwrap();
        assert!(api.pim_is_busy(BankId::new(2)).unwrap());
        api.pim_complete(OpId::new(1)).unwrap();
        assert!(!api.pim_is_busy(BankId::new(2)).unwrap());
    }

    #[test]
    fn double_offload_is_rejected() {
        let mut api = LowLevelApi::new(4);
        api.pim_offload(OpId::new(1), ff_placement(0)).unwrap();
        assert!(api.pim_offload(OpId::new(1), ff_placement(1)).is_err());
    }

    #[test]
    fn reoffload_after_completion_is_allowed() {
        // The operation pipeline re-runs the same op id in the next step.
        let mut api = LowLevelApi::new(4);
        api.pim_offload(OpId::new(1), ff_placement(0)).unwrap();
        api.pim_complete(OpId::new(1)).unwrap();
        assert!(api.pim_offload(OpId::new(1), ff_placement(1)).is_ok());
    }

    #[test]
    fn programmable_offload_toggles_progr_register() {
        let mut api = LowLevelApi::new(4);
        api.pim_offload(
            OpId::new(9),
            OpPlacement {
                compute: ComputePlacement::Programmable,
                data_banks: vec![],
            },
        )
        .unwrap();
        assert!(api.progr_is_busy());
        api.pim_complete(OpId::new(9)).unwrap();
        assert!(!api.progr_is_busy());
    }

    #[test]
    fn location_query_returns_data_banks() {
        let mut api = LowLevelApi::new(4);
        api.pim_offload(OpId::new(3), ff_placement(1)).unwrap();
        let loc = api.pim_query_location(OpId::new(3)).unwrap();
        assert_eq!(loc.data_banks, vec![BankId::new(1)]);
    }

    #[test]
    fn completing_unknown_op_fails() {
        let mut api = LowLevelApi::new(4);
        assert!(api.pim_complete(OpId::new(5)).is_err());
    }
}
