//! The extended memory model (Table II): a single shared global memory
//! with explicit synchronization and relaxed consistency.
//!
//! "On a heterogeneous PIM system, only a single global memory (i.e., the
//! main memory) exists ... shared between CPU and PIMs, and addressed
//! within a unified physical address space." Tensor placement across banks
//! feeds the locality rule of §IV-D (fixed-function PIMs operate on data in
//! their own bank), and the visibility rules encode the paper's relaxed
//! consistency: updates by fixed-function PIMs become globally visible at
//! kernel-call boundaries.

use pim_common::ids::{BankId, TensorId};
use pim_common::{PimError, Result};
use serde::Serialize;
use std::collections::HashMap;

/// Where a tensor lives: the banks its pages are striped over.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TensorPlacement {
    /// Banks holding the tensor's pages, in stripe order.
    pub banks: Vec<BankId>,
    /// Size in bytes.
    pub bytes: usize,
}

/// The single shared global memory with bank-aware allocation.
///
/// # Examples
///
/// ```
/// use pim_opencl::memory::SharedGlobalMemory;
/// use pim_common::ids::TensorId;
///
/// let mut mem = SharedGlobalMemory::new(32, 4096);
/// mem.allocate(TensorId::new(0), 10_000).unwrap();
/// let placement = mem.placement(TensorId::new(0)).unwrap();
/// assert_eq!(placement.banks.len(), 3); // ceil(10_000 / 4096) pages
/// ```
#[derive(Debug, Clone)]
pub struct SharedGlobalMemory {
    banks: usize,
    page_bytes: usize,
    bank_load: Vec<usize>,
    placements: HashMap<TensorId, TensorPlacement>,
}

impl SharedGlobalMemory {
    /// A memory with `banks` banks and `page_bytes` allocation granularity.
    pub fn new(banks: usize, page_bytes: usize) -> Self {
        SharedGlobalMemory {
            banks,
            page_bytes,
            bank_load: vec![0; banks],
            placements: HashMap::new(),
        }
    }

    /// Allocates a tensor, striping its pages over the least-loaded banks
    /// (balancing bank-local fixed-function work).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::InvalidArgument`] for zero-sized tensors or
    /// duplicate ids.
    pub fn allocate(&mut self, tensor: TensorId, bytes: usize) -> Result<()> {
        if bytes == 0 {
            return Err(PimError::invalid(
                "SharedGlobalMemory::allocate",
                "zero bytes",
            ));
        }
        if self.placements.contains_key(&tensor) {
            return Err(PimError::invalid(
                "SharedGlobalMemory::allocate",
                format!("tensor {tensor} already allocated"),
            ));
        }
        let pages = bytes.div_ceil(self.page_bytes);
        let mut banks = Vec::with_capacity(pages);
        for _ in 0..pages {
            let bank = self
                .bank_load
                .iter()
                .enumerate()
                .min_by_key(|(_, &load)| load)
                .map_or(0, |(i, _)| i);
            self.bank_load[bank] += self.page_bytes;
            banks.push(BankId::new(bank));
        }
        self.placements
            .insert(tensor, TensorPlacement { banks, bytes });
        Ok(())
    }

    /// The placement of a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::UnknownId`] for unallocated tensors.
    pub fn placement(&self, tensor: TensorId) -> Result<&TensorPlacement> {
        self.placements.get(&tensor).ok_or(PimError::UnknownId {
            kind: "tensor placement",
            index: tensor.index(),
        })
    }

    /// The bank holding the first page — where bank-local fixed-function
    /// work on this tensor is anchored (§IV-D locality rule).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::UnknownId`] for unallocated tensors.
    pub fn home_bank(&self, tensor: TensorId) -> Result<BankId> {
        Ok(self.placement(tensor)?.banks[0])
    }

    /// Bytes allocated on each bank.
    pub fn bank_load(&self) -> &[usize] {
        &self.bank_load
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }
}

/// Visibility of a write under the paper's relaxed consistency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Visibility {
    /// Visible only to the writing PIM (kernel still in flight).
    WriterLocal,
    /// Visible to every device (the writer's kernel call has completed).
    Global,
}

/// Applies the Table II consistency rule: "updates to memory locations by
/// the entire set of fixed-function PIMs are not visible until the end of
/// the kernel call."
pub fn write_visibility(kernel_completed: bool) -> Visibility {
    if kernel_completed {
        Visibility::Global
    } else {
        Visibility::WriterLocal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_balances_banks() {
        let mut mem = SharedGlobalMemory::new(4, 64);
        for i in 0..8 {
            mem.allocate(TensorId::new(i), 64).unwrap();
        }
        // 8 single-page tensors over 4 banks: 2 pages each.
        assert!(mem.bank_load().iter().all(|&l| l == 128));
    }

    #[test]
    fn zero_and_duplicate_allocations_fail() {
        let mut mem = SharedGlobalMemory::new(2, 64);
        assert!(mem.allocate(TensorId::new(0), 0).is_err());
        mem.allocate(TensorId::new(0), 10).unwrap();
        assert!(mem.allocate(TensorId::new(0), 10).is_err());
    }

    #[test]
    fn home_bank_is_first_stripe() {
        let mut mem = SharedGlobalMemory::new(2, 64);
        mem.allocate(TensorId::new(0), 200).unwrap();
        let home = mem.home_bank(TensorId::new(0)).unwrap();
        assert_eq!(home, mem.placement(TensorId::new(0)).unwrap().banks[0]);
    }

    #[test]
    fn relaxed_consistency_hides_in_flight_writes() {
        assert_eq!(write_visibility(false), Visibility::WriterLocal);
        assert_eq!(write_visibility(true), Visibility::Global);
    }

    #[test]
    fn unknown_tensor_is_an_error() {
        let mem = SharedGlobalMemory::new(2, 64);
        assert!(mem.placement(TensorId::new(7)).is_err());
    }
}
