//! The heterogeneous-PIM platform model (Table II, Fig. 5b).
//!
//! "All fixed-function PIMs in all memory banks form a compute device. All
//! fixed-function PIMs in a bank form a compute unit. Each programmable PIM
//! is a compute device; each core of the programmable PIM is a PE."

use pim_common::ids::DeviceId;
use pim_hw::fixed::FixedPoolConfig;
use serde::Serialize;

/// The kind of a compute device in the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum DeviceKind {
    /// The host processor itself (ops can also run there).
    Host,
    /// The fixed-function PIM pool.
    FixedFunction,
    /// A programmable PIM.
    Programmable,
}

/// One compute device as OpenCL sees it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ComputeDevice {
    /// Platform-unique identifier.
    pub id: DeviceId,
    /// Device kind.
    pub kind: DeviceKind,
    /// Compute units (banks for the fixed pool, 1 for the programmable
    /// PIM, cores for the host).
    pub compute_units: usize,
    /// Processing elements per compute unit.
    pub pes_per_unit: Vec<usize>,
}

impl ComputeDevice {
    /// Total processing elements.
    pub fn total_pes(&self) -> usize {
        self.pes_per_unit.iter().sum()
    }
}

/// The platform: host plus heterogeneous accelerators.
///
/// # Examples
///
/// ```
/// use pim_opencl::platform::{Platform, DeviceKind};
/// use pim_hw::fixed::FixedPoolConfig;
/// use pim_mem::stack::StackConfig;
///
/// let platform = Platform::hetero_pim(
///     8,
///     &FixedPoolConfig::paper_default(&StackConfig::hmc2()),
///     4,
/// );
/// assert_eq!(platform.devices().len(), 3);
/// let fixed = platform.device_of_kind(DeviceKind::FixedFunction).unwrap();
/// assert_eq!(fixed.compute_units, 32); // one CU per bank
/// assert_eq!(fixed.total_pes(), 444);  // one PE per unit
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Platform {
    devices: Vec<ComputeDevice>,
}

impl Platform {
    /// Builds the heterogeneous-PIM platform: host CPU, fixed-function
    /// device (one compute unit per bank, one PE per multiplier/adder
    /// pair), and a programmable device (one PE per ARM core).
    pub fn hetero_pim(host_cores: usize, pool: &FixedPoolConfig, arm_cores: usize) -> Self {
        let devices = vec![
            ComputeDevice {
                id: DeviceId::new(0),
                kind: DeviceKind::Host,
                compute_units: host_cores,
                pes_per_unit: vec![1; host_cores],
            },
            ComputeDevice {
                id: DeviceId::new(1),
                kind: DeviceKind::FixedFunction,
                compute_units: pool.placement.len(),
                pes_per_unit: pool.placement.clone(),
            },
            ComputeDevice {
                id: DeviceId::new(2),
                kind: DeviceKind::Programmable,
                compute_units: 1,
                pes_per_unit: vec![arm_cores],
            },
        ];
        Platform { devices }
    }

    /// All devices.
    pub fn devices(&self) -> &[ComputeDevice] {
        &self.devices
    }

    /// The first device of a kind, if any.
    pub fn device_of_kind(&self, kind: DeviceKind) -> Option<&ComputeDevice> {
        self.devices.iter().find(|d| d.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_mem::stack::StackConfig;

    fn platform() -> Platform {
        Platform::hetero_pim(8, &FixedPoolConfig::paper_default(&StackConfig::hmc2()), 4)
    }

    #[test]
    fn fixed_device_mirrors_bank_placement() {
        let p = platform();
        let fixed = p.device_of_kind(DeviceKind::FixedFunction).unwrap();
        assert_eq!(fixed.compute_units, 32);
        assert_eq!(fixed.total_pes(), 444);
        // Edge/corner CUs hold more PEs than central ones.
        assert!(fixed.pes_per_unit[0] > fixed.pes_per_unit[9]);
    }

    #[test]
    fn programmable_device_has_core_pes() {
        let p = platform();
        let progr = p.device_of_kind(DeviceKind::Programmable).unwrap();
        assert_eq!(progr.compute_units, 1);
        assert_eq!(progr.total_pes(), 4);
    }

    #[test]
    fn device_ids_are_unique() {
        let p = platform();
        let mut ids: Vec<_> = p.devices().iter().map(|d| d.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }
}
