//! Command queues, events, and synchronization (Table II execution model).
//!
//! The extension beyond native OpenCL: accelerators may submit work to
//! accelerators (recursive kernel invocation), and synchronization between
//! CPU and PIMs is explicit — the programmable PIM drives completion
//! signaling so the CPU is not interrupted per kernel (§III-B).

use pim_common::ids::{DeviceId, KernelId, OpId};
use pim_common::{PimError, Result};
use serde::Serialize;
use std::collections::VecDeque;

/// Who submitted a command — native OpenCL only allows `Host`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Submitter {
    /// The host program (native OpenCL path).
    Host,
    /// The programmable PIM (the recursive-kernel extension).
    ProgrammablePim,
}

/// One enqueued kernel invocation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Command {
    /// The kernel being launched.
    pub kernel: KernelId,
    /// The operation it implements.
    pub op: OpId,
    /// Who enqueued it.
    pub submitter: Submitter,
}

/// A completion event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Event {
    /// The operation whose completion this event signals.
    pub op: OpId,
}

/// An in-order command queue attached to one compute device.
///
/// # Examples
///
/// ```
/// use pim_opencl::queue::{CommandQueue, Submitter};
/// use pim_common::ids::{DeviceId, KernelId, OpId};
///
/// let mut q = CommandQueue::new(DeviceId::new(1));
/// q.enqueue(KernelId::new(0), OpId::new(0), Submitter::Host);
/// q.enqueue(KernelId::new(1), OpId::new(1), Submitter::ProgrammablePim);
/// assert_eq!(q.len(), 2);
/// let first = q.dequeue().unwrap();
/// assert_eq!(first.op, OpId::new(0));
/// ```
#[derive(Debug, Clone)]
pub struct CommandQueue {
    device: DeviceId,
    pending: VecDeque<Command>,
    completed: Vec<Event>,
}

impl CommandQueue {
    /// An empty queue for `device`.
    pub fn new(device: DeviceId) -> Self {
        CommandQueue {
            device,
            pending: VecDeque::new(),
            completed: Vec::new(),
        }
    }

    /// The attached device.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Appends a command (host path or recursive-PIM path).
    pub fn enqueue(&mut self, kernel: KernelId, op: OpId, submitter: Submitter) {
        self.pending.push_back(Command {
            kernel,
            op,
            submitter,
        });
    }

    /// Pops the next command in order.
    pub fn dequeue(&mut self) -> Option<Command> {
        self.pending.pop_front()
    }

    /// Records completion of an operation; the programmable PIM "checks the
    /// completion of operations offloaded to PIMs and sends the completion
    /// information to CPU" (§III-B).
    pub fn signal_completion(&mut self, op: OpId) {
        self.completed.push(Event { op });
    }

    /// True when `op` has completed on this queue.
    pub fn is_complete(&self, op: OpId) -> bool {
        self.completed.iter().any(|e| e.op == op)
    }

    /// Pending command count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no commands are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Blocks (logically) until every enqueued command has been dequeued
    /// and signaled — the explicit CPU–PIM barrier of the extended memory
    /// model.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::Internal`] when commands are still pending —
    /// the caller (the runtime engine) must drain the queue first.
    pub fn barrier(&self) -> Result<()> {
        if !self.pending.is_empty() {
            return Err(PimError::internal(format!(
                "barrier on queue {} with {} pending commands",
                self.device,
                self.pending.len()
            )));
        }
        Ok(())
    }
}

/// A global lock variable in shared memory, usable from CPU and PIM sides
/// (the synchronization-point mechanism of the extended memory model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct GlobalLock {
    holder: Option<Submitter>,
}

impl GlobalLock {
    /// An unheld lock.
    pub fn new() -> Self {
        GlobalLock::default()
    }

    /// Attempts to take the lock; returns whether it was acquired.
    pub fn try_acquire(&mut self, who: Submitter) -> bool {
        if self.holder.is_none() {
            self.holder = Some(who);
            true
        } else {
            false
        }
    }

    /// Releases the lock.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::InvalidArgument`] when released by a non-holder.
    pub fn release(&mut self, who: Submitter) -> Result<()> {
        match self.holder {
            Some(h) if h == who => {
                self.holder = None;
                Ok(())
            }
            _ => Err(PimError::invalid(
                "GlobalLock::release",
                "released by non-holder",
            )),
        }
    }

    /// The current holder, if any.
    pub fn holder(&self) -> Option<Submitter> {
        self.holder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_is_fifo() {
        let mut q = CommandQueue::new(DeviceId::new(0));
        for i in 0..3 {
            q.enqueue(KernelId::new(i), OpId::new(i), Submitter::Host);
        }
        assert_eq!(q.dequeue().unwrap().op, OpId::new(0));
        assert_eq!(q.dequeue().unwrap().op, OpId::new(1));
    }

    #[test]
    fn recursive_submission_is_first_class() {
        let mut q = CommandQueue::new(DeviceId::new(1));
        q.enqueue(KernelId::new(0), OpId::new(0), Submitter::ProgrammablePim);
        assert_eq!(q.dequeue().unwrap().submitter, Submitter::ProgrammablePim);
    }

    #[test]
    fn barrier_requires_drained_queue() {
        let mut q = CommandQueue::new(DeviceId::new(0));
        q.enqueue(KernelId::new(0), OpId::new(0), Submitter::Host);
        assert!(q.barrier().is_err());
        q.dequeue();
        q.signal_completion(OpId::new(0));
        assert!(q.barrier().is_ok());
        assert!(q.is_complete(OpId::new(0)));
    }

    #[test]
    fn lock_is_mutually_exclusive() {
        let mut lock = GlobalLock::new();
        assert!(lock.try_acquire(Submitter::Host));
        assert!(!lock.try_acquire(Submitter::ProgrammablePim));
        assert!(lock.release(Submitter::ProgrammablePim).is_err());
        lock.release(Submitter::Host).unwrap();
        assert!(lock.try_acquire(Submitter::ProgrammablePim));
    }
}
