//! The extended OpenCL programming model for heterogeneous PIM (Table II).
//!
//! * [`platform`] — the platform mapping of Fig. 5(b): fixed-function PIMs
//!   per bank form compute units of one device; the programmable PIM is a
//!   second device,
//! * [`kir`] — a miniature kernel IR so binary generation is a real code
//!   transformation,
//! * [`binary`] — the four-binary compilation pass of Fig. 4, including the
//!   extraction that powers recursive PIM kernels,
//! * [`directive`] — the OpenACC-style loop-nest frontend that lowers into
//!   the same IR (the §III-B program-maintenance path),
//! * [`queue`] — command queues with accelerator-to-accelerator submission
//!   and explicit CPU-PIM synchronization,
//! * [`memory`] — the single shared global memory with bank-aware placement
//!   and relaxed consistency,
//! * [`api`] — the low-level PIM control API of Table III.
//!
//! # Examples
//!
//! ```
//! use pim_opencl::binary::BinarySet;
//! use pim_opencl::kir::KernelSource;
//! use pim_tensor::cost::{CostProfile, OffloadClass};
//! use pim_common::units::Bytes;
//!
//! # fn main() -> pim_common::Result<()> {
//! // Compile a MatMul-like kernel: pure multiply/add, so all four
//! // binaries of Fig. 4 exist.
//! let cost = CostProfile::compute(
//!     1e6, 1e6, 0.0, Bytes::new(1e4), Bytes::new(1e4),
//!     OffloadClass::FullyMulAdd, 63,
//! );
//! let set = BinarySet::generate(KernelSource::from_cost("MatMul", &cost))?;
//! assert!(set.runs_whole_on_fixed());
//! assert!(set.supports_recursive_kernel());
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

pub mod api;
pub mod binary;
pub mod directive;
pub mod kir;
pub mod memory;
pub mod platform;
pub mod queue;

pub use api::{ComputePlacement, LowLevelApi, OpPlacement};
pub use binary::BinarySet;
pub use kir::KernelSource;
pub use platform::{DeviceKind, Platform};
