//! A miniature kernel IR.
//!
//! Binary generation (Fig. 4) is a real code transformation here: an
//! OpenCL-style kernel is a sequence of [`Region`]s — multiply/add loops,
//! other-arithmetic loops, control sections — and the splitter extracts the
//! multiply/add regions into small fixed-function kernels, replacing them
//! with [`Region::CallFixed`] sites in the programmable-PIM binary.

use pim_tensor::cost::{CostProfile, OffloadClass};
use serde::{Deserialize, Serialize};

/// One structured region of a kernel body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Region {
    /// A loop nest of pure multiply/add work (offloadable to
    /// fixed-function PIMs).
    MulAdd {
        /// Multiplications in the region.
        muls: f64,
        /// Additions in the region.
        adds: f64,
        /// Fixed-function units the region can occupy at once.
        parallelism: usize,
    },
    /// Arithmetic that fixed-function units cannot express (compares,
    /// transcendentals, divisions).
    OtherArithmetic {
        /// Operation count.
        flops: f64,
    },
    /// Loop/branch/address bookkeeping.
    Control {
        /// Instruction count.
        ops: f64,
    },
    /// A call site to an extracted fixed-function kernel (present only in
    /// generated programmable-PIM binaries).
    CallFixed {
        /// Index into the companion list of extracted kernels.
        kernel_index: usize,
    },
}

impl Region {
    /// True for regions a fixed-function PIM can execute.
    pub fn is_mul_add(&self) -> bool {
        matches!(self, Region::MulAdd { .. })
    }
}

/// An OpenCL-style kernel: name plus structured body.
///
/// # Examples
///
/// ```
/// use pim_opencl::kir::KernelSource;
/// use pim_tensor::cost::{CostProfile, OffloadClass};
/// use pim_common::units::Bytes;
///
/// let cost = CostProfile::compute(
///     100.0, 99.0, 10.0, Bytes::new(800.0), Bytes::new(400.0),
///     OffloadClass::PartiallyMulAdd { ma_fraction: 0.95 }, 9,
/// );
/// let kernel = KernelSource::from_cost("Conv2DBackpropFilter", &cost);
/// assert!(kernel.has_mul_add_region());
/// assert!(!kernel.is_pure_mul_add());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSource {
    /// Kernel name (the TensorFlow op name).
    pub name: String,
    /// Structured body.
    pub body: Vec<Region>,
}

impl KernelSource {
    /// Synthesizes the kernel structure implied by an operation's cost
    /// profile: its multiply/add core (if any), its other-arithmetic
    /// phases, and its control scaffolding.
    pub fn from_cost(name: impl Into<String>, cost: &CostProfile) -> Self {
        let mut body = Vec::new();
        // Control prologue (index setup — Fig. 6's "computation phase 1").
        if cost.control_ops > 0.0 {
            body.push(Region::Control {
                ops: cost.control_ops / 2.0,
            });
        }
        match cost.class {
            OffloadClass::FullyMulAdd => {
                body.push(Region::MulAdd {
                    muls: cost.muls,
                    adds: cost.adds,
                    parallelism: cost.ff_parallelism,
                });
            }
            OffloadClass::PartiallyMulAdd { .. } => {
                // Interleaved other-arithmetic and multiply/add phases, the
                // Conv2DBackpropFilter shape of Fig. 6.
                body.push(Region::OtherArithmetic {
                    flops: cost.other_flops / 2.0,
                });
                body.push(Region::MulAdd {
                    muls: cost.muls,
                    adds: cost.adds,
                    parallelism: cost.ff_parallelism,
                });
                body.push(Region::OtherArithmetic {
                    flops: cost.other_flops / 2.0,
                });
            }
            OffloadClass::NonMulAdd => {
                body.push(Region::OtherArithmetic {
                    flops: cost.other_flops + cost.ma_flops(),
                });
            }
            OffloadClass::DataMovement => {}
        }
        // Control epilogue (write-back bookkeeping).
        if cost.control_ops > 0.0 {
            body.push(Region::Control {
                ops: cost.control_ops / 2.0,
            });
        }
        KernelSource {
            name: name.into(),
            body,
        }
    }

    /// True when at least one region is offloadable to fixed-function PIMs.
    pub fn has_mul_add_region(&self) -> bool {
        self.body.iter().any(Region::is_mul_add)
    }

    /// True when *every* region is multiply/add (the whole kernel can run
    /// on fixed-function PIMs without the programmable PIM).
    pub fn is_pure_mul_add(&self) -> bool {
        self.body
            .iter()
            .all(|r| matches!(r, Region::MulAdd { .. } | Region::Control { .. }))
            && self.has_mul_add_region()
    }

    /// Total multiply/add flops across regions.
    pub fn mul_add_flops(&self) -> f64 {
        self.body
            .iter()
            .map(|r| match r {
                Region::MulAdd { muls, adds, .. } => muls + adds,
                _ => 0.0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_common::units::Bytes;

    fn cost(class: OffloadClass) -> CostProfile {
        CostProfile::compute(
            50.0,
            50.0,
            20.0,
            Bytes::new(640.0),
            Bytes::new(64.0),
            class,
            7,
        )
    }

    #[test]
    fn fully_mul_add_kernels_are_pure() {
        let k = KernelSource::from_cost("MatMul", &cost(OffloadClass::FullyMulAdd));
        assert!(k.is_pure_mul_add());
        assert_eq!(k.mul_add_flops(), 100.0);
    }

    #[test]
    fn partially_mul_add_kernels_interleave_phases() {
        let k = KernelSource::from_cost(
            "Conv2DBackpropFilter",
            &cost(OffloadClass::PartiallyMulAdd { ma_fraction: 0.8 }),
        );
        assert!(k.has_mul_add_region());
        assert!(!k.is_pure_mul_add());
        // phase-1 other / MA / phase-2 other ordering, inside control.
        let kinds: Vec<bool> = k.body.iter().map(Region::is_mul_add).collect();
        assert_eq!(kinds, vec![false, false, true, false, false]);
    }

    #[test]
    fn non_mul_add_kernels_have_no_offloadable_region() {
        let k = KernelSource::from_cost("Relu", &cost(OffloadClass::NonMulAdd));
        assert!(!k.has_mul_add_region());
    }

    #[test]
    fn data_movement_kernels_are_control_only() {
        let k = KernelSource::from_cost(
            "Slice",
            &CostProfile::movement(
                Bytes::new(256.0),
                Bytes::new(256.0),
                pim_common::access::AccessPattern::Sequential,
            ),
        );
        assert!(!k.has_mul_add_region());
        assert!(!k.body.is_empty()); // control scaffolding remains
    }
}
