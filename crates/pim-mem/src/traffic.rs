//! Transfer-time math shared by all memory models, plus the traffic
//! accounting the runtime's observability layer reads.

pub use pim_common::access::AccessPattern;
use pim_common::trace::Counters;
use pim_common::units::{Bytes, Seconds};

/// Fraction of peak bandwidth a pattern achieves on a row-buffer DRAM.
///
/// The constants follow the usual DRAM rule of thumb: streaming reaches ~90%
/// of peak, strided roughly half, random a small fraction dominated by
/// row-activate latency.
///
/// # Examples
///
/// ```
/// use pim_mem::traffic::{bandwidth_efficiency, AccessPattern};
/// assert!(bandwidth_efficiency(AccessPattern::Sequential)
///     > bandwidth_efficiency(AccessPattern::Random));
/// ```
pub fn bandwidth_efficiency(pattern: AccessPattern) -> f64 {
    match pattern {
        AccessPattern::Sequential => 0.90,
        AccessPattern::Strided => 0.50,
        AccessPattern::Random => 0.12,
    }
}

/// Time to move `volume` over a channel with `peak` bytes/second, derated by
/// the pattern's efficiency.
///
/// # Examples
///
/// ```
/// use pim_mem::traffic::{transfer_time, AccessPattern};
/// use pim_common::units::Bytes;
///
/// let t = transfer_time(Bytes::new(9e8), 1e9, AccessPattern::Sequential);
/// assert!((t.seconds() - 1.0).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics in debug builds if `peak_bytes_per_sec` is not positive.
pub fn transfer_time(volume: Bytes, peak_bytes_per_sec: f64, pattern: AccessPattern) -> Seconds {
    debug_assert!(peak_bytes_per_sec > 0.0, "peak bandwidth must be positive");
    let effective = peak_bytes_per_sec * bandwidth_efficiency(pattern);
    Seconds::new(volume.bytes() / effective)
}

/// Accumulated main-memory traffic of one simulation.
///
/// Every executed op contributes its read/write volumes; the totals land
/// in the run's [`Counters`] registry (`bytes/read`, `bytes/written`,
/// `bytes/transfers`) so traces and reports can be cross-checked against
/// what actually moved.
///
/// # Examples
///
/// ```
/// use pim_mem::traffic::TrafficStats;
/// use pim_common::trace::Counters;
/// use pim_common::units::Bytes;
///
/// let mut t = TrafficStats::new();
/// t.record(Bytes::new(256.0), Bytes::new(64.0));
/// t.record(Bytes::new(128.0), Bytes::ZERO);
/// assert_eq!(t.total().bytes(), 448.0);
/// assert_eq!(t.transfers(), 2);
///
/// let mut c = Counters::new();
/// t.apply(&mut c);
/// assert_eq!(c.get("bytes/read"), 384.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficStats {
    bytes_read: Bytes,
    bytes_written: Bytes,
    transfers: u64,
}

impl TrafficStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        TrafficStats::default()
    }

    /// Records one op's read and write volumes.
    pub fn record(&mut self, read: Bytes, written: Bytes) {
        self.bytes_read += read;
        self.bytes_written += written;
        self.transfers += 1;
    }

    /// Total bytes read from main memory.
    pub fn bytes_read(&self) -> Bytes {
        self.bytes_read
    }

    /// Total bytes written to main memory.
    pub fn bytes_written(&self) -> Bytes {
        self.bytes_written
    }

    /// Total bytes moved in either direction.
    pub fn total(&self) -> Bytes {
        self.bytes_read + self.bytes_written
    }

    /// Number of recorded transfers (op executions).
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// 64-byte main-memory lines the total volume touches.
    pub fn lines_touched(&self) -> u64 {
        self.total().lines()
    }

    /// Writes the totals into a counters registry under `bytes/read`,
    /// `bytes/written`, and `bytes/transfers`.
    pub fn apply(&self, counters: &mut Counters) {
        counters.add("bytes/read", self.bytes_read.bytes());
        counters.add("bytes/written", self.bytes_written.bytes());
        counters.add("bytes/transfers", self.transfers as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn traffic_stats_accumulate_and_apply() {
        let mut t = TrafficStats::new();
        assert_eq!(t, TrafficStats::default());
        t.record(Bytes::from_lines(2), Bytes::from_lines(1));
        t.record(Bytes::new(10.0), Bytes::new(20.0));
        assert_eq!(t.bytes_read().bytes(), 138.0);
        assert_eq!(t.bytes_written().bytes(), 84.0);
        assert_eq!(t.transfers(), 2);
        assert_eq!(t.lines_touched(), Bytes::new(222.0).lines());
        let mut c = Counters::new();
        t.apply(&mut c);
        assert_eq!(c.get("bytes/read"), 138.0);
        assert_eq!(c.get("bytes/written"), 84.0);
        assert_eq!(c.get("bytes/transfers"), 2.0);
    }

    #[test]
    fn sequential_is_fastest() {
        let v = Bytes::new(1e6);
        let seq = transfer_time(v, 1e9, AccessPattern::Sequential);
        let strided = transfer_time(v, 1e9, AccessPattern::Strided);
        let random = transfer_time(v, 1e9, AccessPattern::Random);
        assert!(seq < strided);
        assert!(strided < random);
    }

    #[test]
    fn zero_volume_is_free() {
        let t = transfer_time(Bytes::ZERO, 1e9, AccessPattern::Random);
        assert_eq!(t, Seconds::ZERO);
    }

    proptest! {
        #[test]
        fn time_scales_linearly_with_volume(
            bytes in 1.0f64..1e12,
            bw in 1e6f64..1e12,
        ) {
            let t1 = transfer_time(Bytes::new(bytes), bw, AccessPattern::Sequential);
            let t2 = transfer_time(Bytes::new(2.0 * bytes), bw, AccessPattern::Sequential);
            prop_assert!((t2.seconds() / t1.seconds() - 2.0).abs() < 1e-9);
        }

        #[test]
        fn more_bandwidth_never_slower(
            bytes in 1.0f64..1e12,
            bw in 1e6f64..1e12,
        ) {
            let slow = transfer_time(Bytes::new(bytes), bw, AccessPattern::Sequential);
            let fast = transfer_time(Bytes::new(bytes), bw * 2.0, AccessPattern::Sequential);
            prop_assert!(fast <= slow);
        }
    }
}
