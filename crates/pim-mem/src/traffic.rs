//! Transfer-time math shared by all memory models.

pub use pim_common::access::AccessPattern;
use pim_common::units::{Bytes, Seconds};

/// Fraction of peak bandwidth a pattern achieves on a row-buffer DRAM.
///
/// The constants follow the usual DRAM rule of thumb: streaming reaches ~90%
/// of peak, strided roughly half, random a small fraction dominated by
/// row-activate latency.
///
/// # Examples
///
/// ```
/// use pim_mem::traffic::{bandwidth_efficiency, AccessPattern};
/// assert!(bandwidth_efficiency(AccessPattern::Sequential)
///     > bandwidth_efficiency(AccessPattern::Random));
/// ```
pub fn bandwidth_efficiency(pattern: AccessPattern) -> f64 {
    match pattern {
        AccessPattern::Sequential => 0.90,
        AccessPattern::Strided => 0.50,
        AccessPattern::Random => 0.12,
    }
}

/// Time to move `volume` over a channel with `peak` bytes/second, derated by
/// the pattern's efficiency.
///
/// # Examples
///
/// ```
/// use pim_mem::traffic::{transfer_time, AccessPattern};
/// use pim_common::units::Bytes;
///
/// let t = transfer_time(Bytes::new(9e8), 1e9, AccessPattern::Sequential);
/// assert!((t.seconds() - 1.0).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics in debug builds if `peak_bytes_per_sec` is not positive.
pub fn transfer_time(volume: Bytes, peak_bytes_per_sec: f64, pattern: AccessPattern) -> Seconds {
    debug_assert!(peak_bytes_per_sec > 0.0, "peak bandwidth must be positive");
    let effective = peak_bytes_per_sec * bandwidth_efficiency(pattern);
    Seconds::new(volume.bytes() / effective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sequential_is_fastest() {
        let v = Bytes::new(1e6);
        let seq = transfer_time(v, 1e9, AccessPattern::Sequential);
        let strided = transfer_time(v, 1e9, AccessPattern::Strided);
        let random = transfer_time(v, 1e9, AccessPattern::Random);
        assert!(seq < strided);
        assert!(strided < random);
    }

    #[test]
    fn zero_volume_is_free() {
        let t = transfer_time(Bytes::ZERO, 1e9, AccessPattern::Random);
        assert_eq!(t, Seconds::ZERO);
    }

    proptest! {
        #[test]
        fn time_scales_linearly_with_volume(
            bytes in 1.0f64..1e12,
            bw in 1e6f64..1e12,
        ) {
            let t1 = transfer_time(Bytes::new(bytes), bw, AccessPattern::Sequential);
            let t2 = transfer_time(Bytes::new(2.0 * bytes), bw, AccessPattern::Sequential);
            prop_assert!((t2.seconds() / t1.seconds() - 2.0).abs() < 1e-9);
        }

        #[test]
        fn more_bandwidth_never_slower(
            bytes in 1.0f64..1e12,
            bw in 1e6f64..1e12,
        ) {
            let slow = transfer_time(Bytes::new(bytes), bw, AccessPattern::Sequential);
            let fast = transfer_time(Bytes::new(bytes), bw * 2.0, AccessPattern::Sequential);
            prop_assert!(fast <= slow);
        }
    }
}
