//! A command-level memory-controller model over the per-bank row-buffer
//! state machines.
//!
//! The device models derate peak bandwidth by per-pattern efficiency
//! constants ([`crate::traffic::bandwidth_efficiency`]). This module closes
//! that loop: it synthesizes address streams for each access pattern, runs
//! them through the banks with FR-FCFS-style bank-level parallelism, and
//! measures the efficiency those constants approximate. The validation
//! tests assert the constants sit within the measured envelopes.

use crate::bank::Bank;
use crate::stack::StackConfig;
use crate::traffic::AccessPattern;
use pim_common::ids::BankId;
use pim_common::units::Seconds;
use serde::Serialize;

/// Result of replaying an address stream through the controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StreamReport {
    /// Accesses served.
    pub accesses: u64,
    /// Aggregate row-buffer hit rate across banks.
    pub hit_rate: f64,
    /// Busy time of the most-loaded bank (the stream's service time under
    /// perfect bank-level parallelism).
    pub critical_bank_time: Seconds,
    /// Achieved fraction of the all-hit service rate.
    pub efficiency: f64,
}

/// A multi-bank controller with address interleaving at 64-byte lines.
///
/// # Examples
///
/// ```
/// use pim_mem::controller::MemoryController;
/// use pim_mem::stack::StackConfig;
/// use pim_mem::traffic::AccessPattern;
///
/// let mut mc = MemoryController::new(&StackConfig::hmc2());
/// let report = mc.replay_pattern(AccessPattern::Sequential, 4096, 7);
/// assert!(report.hit_rate > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    banks: Vec<Bank>,
    line_bytes: u64,
    all_hit_latency: Seconds,
}

impl MemoryController {
    /// A controller over all banks of a stack.
    pub fn new(config: &StackConfig) -> Self {
        MemoryController {
            banks: config.bank_ids().map(|id| Bank::new(id, config)).collect(),
            line_bytes: 64,
            all_hit_latency: config.row_hit_latency(),
        }
    }

    fn bank_of(&self, address: u64) -> usize {
        ((address / self.line_bytes) % self.banks.len() as u64) as usize
    }

    /// Serves one line-granularity access.
    pub fn access(&mut self, address: u64) {
        let bank = self.bank_of(address);
        // Within the bank, the row index is taken from the bank-local
        // address (the stripe offset).
        let local = address / (self.line_bytes * self.banks.len() as u64);
        self.banks[bank].access(local * self.line_bytes);
    }

    /// Replays `count` accesses of the given synthetic pattern and reports
    /// the achieved efficiency.
    pub fn replay_pattern(
        &mut self,
        pattern: AccessPattern,
        count: u64,
        seed: u64,
    ) -> StreamReport {
        let mut state = seed | 1;
        let mut next_random = move || {
            // xorshift64*: deterministic, dependency-free address noise.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for i in 0..count {
            let address = match pattern {
                AccessPattern::Sequential => i * self.line_bytes,
                AccessPattern::Strided => i * self.line_bytes * 17,
                AccessPattern::Random => next_random() % (1 << 30),
            };
            self.access(address);
        }
        self.report(count)
    }

    fn report(&self, accesses: u64) -> StreamReport {
        let (mut hits, mut total) = (0u64, 0u64);
        let mut critical = Seconds::ZERO;
        for bank in &self.banks {
            hits += bank.stats().hits;
            total += bank.stats().accesses();
            critical = critical.max(bank.stats().busy_time);
        }
        let hit_rate = if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        };
        // Perfectly-interleaved all-hit service time over the same banks.
        let ideal = Seconds::new(
            accesses as f64 * self.all_hit_latency.seconds() / self.banks.len() as f64,
        );
        let efficiency = if critical.seconds() > 0.0 {
            (ideal / critical).min(1.0)
        } else {
            1.0
        };
        StreamReport {
            accesses,
            hit_rate,
            critical_bank_time: critical,
            efficiency,
        }
    }

    /// The busiest bank so far (hotspot detection for the placement rules).
    pub fn hottest_bank(&self) -> Option<BankId> {
        self.banks
            .iter()
            .max_by(|a, b| {
                a.stats()
                    .busy_time
                    .partial_cmp(&b.stats().busy_time)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(Bank::id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::bandwidth_efficiency;

    fn replay(pattern: AccessPattern) -> StreamReport {
        let mut mc = MemoryController::new(&StackConfig::hmc2());
        mc.replay_pattern(pattern, 64 * 1024, 99)
    }

    #[test]
    fn sequential_streams_are_near_ideal() {
        let r = replay(AccessPattern::Sequential);
        assert!(r.hit_rate > 0.5, "hit rate {}", r.hit_rate);
        assert!(r.efficiency > 0.6, "efficiency {}", r.efficiency);
    }

    #[test]
    fn random_streams_collapse_efficiency() {
        let seq = replay(AccessPattern::Sequential);
        let rand = replay(AccessPattern::Random);
        assert!(rand.hit_rate < 0.05, "hit rate {}", rand.hit_rate);
        assert!(rand.efficiency < seq.efficiency);
    }

    /// The closed loop: the analytic per-pattern efficiency constants the
    /// device models use must preserve the ordering and rough magnitudes
    /// the command-level controller measures.
    #[test]
    fn analytic_constants_track_measured_efficiencies() {
        let seq = replay(AccessPattern::Sequential).efficiency;
        let strided = replay(AccessPattern::Strided).efficiency;
        let rand = replay(AccessPattern::Random).efficiency;
        assert!(seq > strided && strided >= rand);
        // Constants ordered the same way...
        let c_seq = bandwidth_efficiency(AccessPattern::Sequential);
        let c_str = bandwidth_efficiency(AccessPattern::Strided);
        let c_rnd = bandwidth_efficiency(AccessPattern::Random);
        assert!(c_seq > c_str && c_str > c_rnd);
        // ...and each constant within a loose factor of the measurement.
        assert!((c_seq / seq.max(1e-9)) < 2.0);
        assert!(c_rnd < strided);
    }

    #[test]
    fn hottest_bank_is_reported() {
        let mut mc = MemoryController::new(&StackConfig::hmc2());
        assert!(mc.hottest_bank().is_some());
        // Hammer one address: its bank must be the hottest.
        for _ in 0..1000 {
            mc.access(0);
        }
        assert_eq!(mc.hottest_bank(), Some(BankId::new(0)));
    }
}
