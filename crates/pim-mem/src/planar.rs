//! Planar DRAM models for the host and GPU baselines.
//!
//! The paper's Table IV: the CPU baseline owns 16 GB DDR4; the GPU baseline
//! (GTX 1080 Ti) owns 11 GB GDDR5X behind 8 memory controllers on a 352-bit
//! bus.

use crate::traffic::{transfer_time, AccessPattern};
use pim_common::units::{Bytes, Seconds};
use serde::Serialize;

/// A planar DRAM channel group (DDR4 or GDDR5X).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PlanarDramConfig {
    /// Human-readable technology name.
    pub technology: &'static str,
    /// Peak bandwidth in bytes/second.
    pub peak_bytes_per_sec: f64,
    /// Idle-to-data latency for one access.
    pub access_latency: Seconds,
    /// Capacity in bytes.
    pub capacity: Bytes,
}

impl PlanarDramConfig {
    /// Time to move `volume` at the given access pattern.
    pub fn transfer_time(&self, volume: Bytes, pattern: AccessPattern) -> Seconds {
        transfer_time(volume, self.peak_bytes_per_sec, pattern)
    }
}

/// DDR4 host memory (Table IV: 16 GB DDR4 behind a Xeon E5-2630 v3).
///
/// # Examples
///
/// ```
/// use pim_mem::planar::Ddr4Config;
/// let ddr = Ddr4Config::xeon_host();
/// assert!(ddr.config().peak_bytes_per_sec > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Ddr4Config(PlanarDramConfig);

impl Ddr4Config {
    /// The quad-channel DDR4-1866 configuration of the paper's host.
    pub fn xeon_host() -> Self {
        Ddr4Config(PlanarDramConfig {
            technology: "DDR4",
            // 4 channels x 14.9 GB/s
            peak_bytes_per_sec: 59.7e9,
            access_latency: Seconds::new(75e-9),
            capacity: Bytes::new(16.0 * (1u64 << 30) as f64),
        })
    }

    /// The underlying channel parameters.
    pub fn config(&self) -> &PlanarDramConfig {
        &self.0
    }

    /// Time to move `volume` at the given access pattern.
    pub fn transfer_time(&self, volume: Bytes, pattern: AccessPattern) -> Seconds {
        self.0.transfer_time(volume, pattern)
    }
}

impl Default for Ddr4Config {
    fn default() -> Self {
        Ddr4Config::xeon_host()
    }
}

/// GDDR5X device memory (Table IV: GTX 1080 Ti, 11 GB, 352-bit bus).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Gddr5xConfig(PlanarDramConfig);

impl Gddr5xConfig {
    /// The GTX 1080 Ti configuration of the paper's GPU baseline.
    pub fn gtx_1080_ti() -> Self {
        Gddr5xConfig(PlanarDramConfig {
            technology: "GDDR5X",
            peak_bytes_per_sec: 484e9,
            access_latency: Seconds::new(220e-9),
            capacity: Bytes::new(11.0 * (1u64 << 30) as f64),
        })
    }

    /// The underlying channel parameters.
    pub fn config(&self) -> &PlanarDramConfig {
        &self.0
    }

    /// Time to move `volume` at the given access pattern.
    pub fn transfer_time(&self, volume: Bytes, pattern: AccessPattern) -> Seconds {
        self.0.transfer_time(volume, pattern)
    }
}

impl Default for Gddr5xConfig {
    fn default() -> Self {
        Gddr5xConfig::gtx_1080_ti()
    }
}

/// PCIe 3.0 x16 host↔GPU interconnect bandwidth in bytes/second.
///
/// Used by the GPU device model for minibatch staging; the paper notes part
/// of this traffic overlaps with computation.
pub const PCIE3_X16_BYTES_PER_SEC: f64 = 15.75e9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gddr_is_faster_than_ddr() {
        let ddr = Ddr4Config::xeon_host();
        let gddr = Gddr5xConfig::gtx_1080_ti();
        let v = Bytes::new(1e9);
        assert!(
            gddr.transfer_time(v, AccessPattern::Sequential)
                < ddr.transfer_time(v, AccessPattern::Sequential)
        );
    }

    #[test]
    fn capacities_match_table_iv() {
        assert_eq!(
            Ddr4Config::xeon_host().config().capacity.bytes(),
            16.0 * (1u64 << 30) as f64
        );
        assert_eq!(
            Gddr5xConfig::gtx_1080_ti().config().capacity.bytes(),
            11.0 * (1u64 << 30) as f64
        );
    }

    #[test]
    fn pattern_derates_bandwidth() {
        let ddr = Ddr4Config::xeon_host();
        let v = Bytes::new(1e8);
        assert!(
            ddr.transfer_time(v, AccessPattern::Random)
                > ddr.transfer_time(v, AccessPattern::Sequential)
        );
    }
}
