//! The 3D die-stacked memory (HMC 2.0-like) model.
//!
//! The paper's §V-A: "We adopt HMC 2.0 timing parameters and configurations
//! for our evaluation of 3D memory stack. Baseline memory frequency is set to
//! 312.5 MHz … also used as the working frequency of our heterogeneous PIM."

use crate::traffic::{transfer_time, AccessPattern};
use pim_common::ids::BankId;
use pim_common::units::{Bytes, Seconds, Watts};
use pim_common::{PimError, Result};
use serde::{Deserialize, Serialize};

/// Number of banks (vertical slices) in the evaluated stack.
pub const HMC2_BANKS: usize = 32;

/// HMC 2.0 baseline frequency in hertz (312.5 MHz).
pub const HMC2_FREQUENCY_HZ: f64 = 312.5e6;

/// Configuration of one 3D die-stacked memory cube.
///
/// Two bandwidth figures matter for the paper's argument:
///
/// * `internal` — the aggregate bandwidth PIM logic sees through the TSVs,
/// * `external` — the serial-link bandwidth the host CPU sees.
///
/// # Examples
///
/// ```
/// use pim_mem::stack::StackConfig;
///
/// let base = StackConfig::hmc2();
/// let fast = base.with_frequency_multiplier(4.0).unwrap();
/// assert!(fast.internal_bandwidth() > base.internal_bandwidth());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackConfig {
    banks: usize,
    frequency_hz: f64,
    frequency_multiplier: f64,
    /// Aggregate internal (TSV-side) bandwidth at the baseline frequency, B/s.
    internal_peak_bytes_per_sec: f64,
    /// External serial-link bandwidth toward the host, B/s.
    external_peak_bytes_per_sec: f64,
    /// DRAM row-buffer size per bank in bytes.
    row_buffer_bytes: usize,
    /// Column-access latency in memory cycles (tCL).
    t_cl_cycles: u32,
    /// Row-to-column delay in memory cycles (tRCD).
    t_rcd_cycles: u32,
    /// Row-precharge latency in memory cycles (tRP).
    t_rp_cycles: u32,
}

impl StackConfig {
    /// The HMC 2.0 configuration used throughout the paper's evaluation.
    ///
    /// Internal bandwidth 320 GB/s aggregate (HMC 2.0 class), external link
    /// bandwidth 120 GB/s (four half-width links), 32 banks, 312.5 MHz.
    pub fn hmc2() -> Self {
        StackConfig {
            banks: HMC2_BANKS,
            frequency_hz: HMC2_FREQUENCY_HZ,
            frequency_multiplier: 1.0,
            internal_peak_bytes_per_sec: 320e9,
            external_peak_bytes_per_sec: 120e9,
            row_buffer_bytes: 256,
            t_cl_cycles: 4,
            t_rcd_cycles: 4,
            t_rp_cycles: 4,
        }
    }

    /// Returns a copy running at `multiplier` times the baseline frequency.
    ///
    /// This implements the paper's §VI-D frequency-scaling study (1×/2×/4×
    /// via a phase-locked-loop module). Internal bandwidth and PIM compute
    /// rates scale with frequency; the external link does not (it is limited
    /// by the SerDes, not the stack clock).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::InvalidArgument`] if `multiplier` is not a
    /// positive, finite number.
    pub fn with_frequency_multiplier(&self, multiplier: f64) -> Result<Self> {
        if !multiplier.is_finite() || multiplier <= 0.0 {
            return Err(PimError::invalid(
                "StackConfig::with_frequency_multiplier",
                format!("multiplier must be positive and finite, got {multiplier}"),
            ));
        }
        let mut cfg = self.clone();
        cfg.frequency_multiplier = multiplier;
        Ok(cfg)
    }

    /// Number of banks in the stack.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Iterator over all bank identifiers.
    pub fn bank_ids(&self) -> impl Iterator<Item = BankId> {
        (0..self.banks).map(BankId::new)
    }

    /// Effective clock frequency in hertz (baseline × multiplier).
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz * self.frequency_multiplier
    }

    /// The frequency multiplier relative to the HMC 2.0 baseline.
    pub fn frequency_multiplier(&self) -> f64 {
        self.frequency_multiplier
    }

    /// Aggregate internal bandwidth in bytes/second at the current frequency.
    pub fn internal_bandwidth(&self) -> f64 {
        self.internal_peak_bytes_per_sec * self.frequency_multiplier
    }

    /// Per-bank share of the internal bandwidth in bytes/second.
    pub fn per_bank_bandwidth(&self) -> f64 {
        self.internal_bandwidth() / self.banks as f64
    }

    /// External (host-facing) link bandwidth in bytes/second.
    ///
    /// Unaffected by the stack frequency multiplier; see
    /// [`StackConfig::with_frequency_multiplier`].
    pub fn external_bandwidth(&self) -> f64 {
        self.external_peak_bytes_per_sec
    }

    /// Row-buffer size per bank in bytes.
    pub fn row_buffer_bytes(&self) -> usize {
        self.row_buffer_bytes
    }

    /// Latency of a row-buffer hit (tCL) at the current frequency.
    pub fn row_hit_latency(&self) -> Seconds {
        Seconds::from_cycles(f64::from(self.t_cl_cycles), self.frequency_hz())
    }

    /// Latency of a row-buffer miss (tRP + tRCD + tCL) at the current
    /// frequency.
    pub fn row_miss_latency(&self) -> Seconds {
        Seconds::from_cycles(
            f64::from(self.t_rp_cycles + self.t_rcd_cycles + self.t_cl_cycles),
            self.frequency_hz(),
        )
    }

    /// Time for PIM logic to stream `volume` through the TSVs.
    pub fn internal_transfer_time(&self, volume: Bytes) -> Seconds {
        transfer_time(volume, self.internal_bandwidth(), AccessPattern::Sequential)
    }

    /// Time for the host to move `volume` over the external link.
    pub fn external_transfer_time(&self, volume: Bytes) -> Seconds {
        transfer_time(volume, self.external_bandwidth(), AccessPattern::Sequential)
    }

    /// Background (standby + refresh) power of the whole cube.
    ///
    /// Modeled as a small constant plus a frequency-dependent clocking term.
    pub fn background_power(&self) -> Watts {
        Watts::new(1.2 + 0.8 * self.frequency_multiplier)
    }
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig::hmc2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hmc2_matches_paper_constants() {
        let cfg = StackConfig::hmc2();
        assert_eq!(cfg.banks(), 32);
        assert_eq!(cfg.frequency_hz(), 312.5e6);
    }

    #[test]
    fn frequency_multiplier_scales_internal_bandwidth_only() {
        let base = StackConfig::hmc2();
        let fast = base.with_frequency_multiplier(2.0).unwrap();
        assert_eq!(fast.internal_bandwidth(), 2.0 * base.internal_bandwidth());
        assert_eq!(fast.external_bandwidth(), base.external_bandwidth());
        assert_eq!(fast.frequency_hz(), 2.0 * base.frequency_hz());
    }

    #[test]
    fn invalid_multiplier_is_rejected() {
        let base = StackConfig::hmc2();
        assert!(base.with_frequency_multiplier(0.0).is_err());
        assert!(base.with_frequency_multiplier(-1.0).is_err());
        assert!(base.with_frequency_multiplier(f64::NAN).is_err());
    }

    #[test]
    fn row_miss_slower_than_hit() {
        let cfg = StackConfig::hmc2();
        assert!(cfg.row_miss_latency() > cfg.row_hit_latency());
    }

    #[test]
    fn bank_ids_enumerate_all_banks() {
        let cfg = StackConfig::hmc2();
        let ids: Vec<_> = cfg.bank_ids().collect();
        assert_eq!(ids.len(), 32);
        assert_eq!(ids[0], BankId::new(0));
        assert_eq!(ids[31], BankId::new(31));
    }

    #[test]
    fn internal_faster_than_external() {
        let cfg = StackConfig::hmc2();
        let v = Bytes::new(1e9);
        assert!(cfg.internal_transfer_time(v) < cfg.external_transfer_time(v));
    }

    proptest! {
        #[test]
        fn higher_frequency_never_slower(mult in 1.0f64..8.0) {
            let base = StackConfig::hmc2();
            let fast = base.with_frequency_multiplier(mult).unwrap();
            let v = Bytes::new(1e8);
            prop_assert!(fast.internal_transfer_time(v) <= base.internal_transfer_time(v));
            prop_assert!(fast.row_hit_latency() <= base.row_hit_latency());
        }

        #[test]
        fn background_power_grows_with_frequency(a in 1.0f64..4.0, b in 4.0f64..8.0) {
            let base = StackConfig::hmc2();
            let slow = base.with_frequency_multiplier(a).unwrap();
            let fast = base.with_frequency_multiplier(b).unwrap();
            prop_assert!(fast.background_power() > slow.background_power());
        }
    }
}
