//! Memory-system models for the heterogeneous PIM simulator.
//!
//! The paper attaches its heterogeneous PIM to the logic layer of a 3D
//! die-stacked memory configured like an HMC 2.0 cube (32 banks, 312.5 MHz).
//! Host baselines use planar DDR4; the GPU baseline uses GDDR5X. This crate
//! models all three:
//!
//! * [`stack`] — the 3D stack: banks, internal vs. external bandwidth,
//!   HMC 2.0 timing, frequency scaling (used by the paper's §VI-D study),
//! * [`bank`] — per-bank row-buffer state machine,
//! * [`controller`] — a command-level multi-bank controller that validates
//!   the per-pattern bandwidth-efficiency constants,
//! * [`planar`] — DDR4 and GDDR5X channel models,
//! * [`energy`] — per-access and background energy accounting,
//! * [`traffic`] — transfer-time math shared by every device model.
//!
//! # Examples
//!
//! ```
//! use pim_mem::stack::StackConfig;
//! use pim_common::units::Bytes;
//!
//! let stack = StackConfig::hmc2();
//! // Internal (PIM-side) bandwidth far exceeds the external link: that gap is
//! // the data-movement argument of the whole paper.
//! assert!(stack.internal_bandwidth() > stack.external_bandwidth());
//! let t = stack.internal_transfer_time(Bytes::new(1e9));
//! assert!(t.seconds() > 0.0);
//! ```
#![forbid(unsafe_code)]

pub mod bank;
pub mod controller;
pub mod energy;
pub mod planar;
pub mod stack;
pub mod traffic;

pub use planar::{Ddr4Config, Gddr5xConfig};
pub use stack::StackConfig;
