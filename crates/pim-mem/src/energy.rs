//! Memory access energy accounting.
//!
//! Energy constants follow the standard published figures for the respective
//! technologies (in picojoules per bit moved): off-chip DDR4 is the most
//! expensive path, the HMC external SerDes link is cheaper, and the internal
//! TSV path that PIM logic uses is cheapest. That ordering — not the exact
//! picojoule values — is what produces the paper's energy results.

use pim_common::units::{Bytes, Joules};
use serde::{Deserialize, Serialize};

/// Which path a byte travels determines its energy cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryPath {
    /// Host CPU to planar DDR4 (DIMM interface + DRAM core).
    HostDdr4,
    /// GPU to on-board GDDR5X.
    GpuGddr5x,
    /// Host CPU to the 3D stack over the external serial link.
    StackExternal,
    /// PIM logic to the 3D stack over internal TSVs.
    StackInternal,
}

impl MemoryPath {
    /// Energy to move one bit along this path, in picojoules.
    pub fn picojoules_per_bit(self) -> f64 {
        match self {
            MemoryPath::HostDdr4 => 39.0,
            MemoryPath::GpuGddr5x => 14.0,
            MemoryPath::StackExternal => 10.5,
            MemoryPath::StackInternal => 3.7,
        }
    }

    /// Energy to move `volume` along this path.
    ///
    /// # Examples
    ///
    /// ```
    /// use pim_mem::energy::MemoryPath;
    /// use pim_common::units::Bytes;
    ///
    /// let internal = MemoryPath::StackInternal.transfer_energy(Bytes::new(1e6));
    /// let external = MemoryPath::HostDdr4.transfer_energy(Bytes::new(1e6));
    /// assert!(internal < external);
    /// ```
    pub fn transfer_energy(self, volume: Bytes) -> Joules {
        Joules::new(volume.bytes() * 8.0 * self.picojoules_per_bit() * 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn internal_is_cheapest_path() {
        let v = Bytes::new(1e6);
        let internal = MemoryPath::StackInternal.transfer_energy(v);
        for path in [
            MemoryPath::HostDdr4,
            MemoryPath::GpuGddr5x,
            MemoryPath::StackExternal,
        ] {
            assert!(internal < path.transfer_energy(v), "{path:?}");
        }
    }

    #[test]
    fn zero_volume_costs_nothing() {
        assert_eq!(
            MemoryPath::HostDdr4.transfer_energy(Bytes::ZERO),
            Joules::ZERO
        );
    }

    proptest! {
        #[test]
        fn energy_is_linear_in_volume(bytes in 1.0f64..1e12) {
            let e1 = MemoryPath::StackInternal.transfer_energy(Bytes::new(bytes));
            let e2 = MemoryPath::StackInternal.transfer_energy(Bytes::new(2.0 * bytes));
            prop_assert!((e2.joules() / e1.joules() - 2.0).abs() < 1e-9);
        }

        #[test]
        fn energy_is_nonnegative(bytes in 0.0f64..1e12) {
            for path in [
                MemoryPath::HostDdr4,
                MemoryPath::GpuGddr5x,
                MemoryPath::StackExternal,
                MemoryPath::StackInternal,
            ] {
                prop_assert!(path.transfer_energy(Bytes::new(bytes)).is_valid());
            }
        }
    }
}
