//! Per-bank row-buffer state machine.
//!
//! Fixed-function PIMs are placed inside banks and operate on data resident
//! in the same bank (paper §IV-D: "our low-level APIs allow us to map
//! operations to fixed-function PIMs that are in the same bank as input data
//! of the operations"). This module models the row-buffer behaviour a bank
//! exhibits under such access streams; the trace-driven simulator uses it to
//! estimate hit rates for detailed runs, and tests use it to validate the
//! buffering assumption.

use crate::stack::StackConfig;
use pim_common::ids::BankId;
use pim_common::units::Seconds;
use serde::{Deserialize, Serialize};

/// Outcome of a single access against the row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowOutcome {
    /// The requested row was already open.
    Hit,
    /// A different row was open and had to be precharged first.
    Miss,
    /// No row was open (first access after idle/refresh).
    Empty,
}

/// A single bank of the 3D stack with an open-row tracker.
///
/// # Examples
///
/// ```
/// use pim_mem::bank::Bank;
/// use pim_mem::stack::StackConfig;
/// use pim_common::ids::BankId;
///
/// let cfg = StackConfig::hmc2();
/// let mut bank = Bank::new(BankId::new(0), &cfg);
/// bank.access(0);      // empty -> opens row 0
/// bank.access(64);     // same row -> hit
/// bank.access(1 << 20); // different row -> miss
/// assert!(bank.stats().hit_rate() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Bank {
    id: BankId,
    row_bytes: usize,
    open_row: Option<u64>,
    stats: BankStats,
    hit_latency: Seconds,
    miss_latency: Seconds,
}

/// Access counters accumulated by a [`Bank`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BankStats {
    /// Row-buffer hits observed.
    pub hits: u64,
    /// Row-buffer conflicts (precharge + activate) observed.
    pub misses: u64,
    /// Accesses that found the bank idle.
    pub empties: u64,
    /// Total time spent serving accesses.
    pub busy_time: Seconds,
}

impl BankStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses + self.empties
    }

    /// Fraction of accesses that hit the open row (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl Bank {
    /// Creates an idle bank using the stack's row-buffer size and latencies.
    pub fn new(id: BankId, config: &StackConfig) -> Self {
        Bank {
            id,
            row_bytes: config.row_buffer_bytes(),
            open_row: None,
            stats: BankStats::default(),
            hit_latency: config.row_hit_latency(),
            miss_latency: config.row_miss_latency(),
        }
    }

    /// The identifier of this bank.
    pub fn id(&self) -> BankId {
        self.id
    }

    /// Serves one access to `byte_address` and returns its outcome.
    pub fn access(&mut self, byte_address: u64) -> RowOutcome {
        let row = byte_address / self.row_bytes as u64;
        let outcome = match self.open_row {
            Some(open) if open == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Miss,
            None => RowOutcome::Empty,
        };
        self.open_row = Some(row);
        match outcome {
            RowOutcome::Hit => {
                self.stats.hits += 1;
                self.stats.busy_time += self.hit_latency;
            }
            RowOutcome::Miss => {
                self.stats.misses += 1;
                self.stats.busy_time += self.miss_latency;
            }
            RowOutcome::Empty => {
                self.stats.empties += 1;
                // An empty bank still pays activate + CAS but no precharge;
                // approximate with the miss latency minus one hit latency.
                self.stats.busy_time += self.miss_latency - self.hit_latency;
            }
        }
        outcome
    }

    /// Closes the open row (refresh or power-down boundary).
    pub fn precharge(&mut self) {
        self.open_row = None;
    }

    /// Accumulated access counters.
    pub fn stats(&self) -> &BankStats {
        &self.stats
    }
}

/// Runs a synthetic access stream through a bank and reports the hit rate.
///
/// Used by tests and by the buffering-mechanism validation: a sequential
/// sweep should enjoy a high hit rate, while random addressing should not.
pub fn hit_rate_for_stream(bank: &mut Bank, addresses: impl IntoIterator<Item = u64>) -> f64 {
    for addr in addresses {
        bank.access(addr);
    }
    bank.stats().hit_rate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bank() -> Bank {
        Bank::new(BankId::new(0), &StackConfig::hmc2())
    }

    #[test]
    fn sequential_sweep_mostly_hits() {
        let mut b = bank();
        let rate = hit_rate_for_stream(&mut b, (0..4096u64).map(|i| i * 4));
        assert!(rate > 0.9, "sequential hit rate was {rate}");
    }

    #[test]
    fn row_strided_stream_always_misses() {
        let mut b = bank();
        let row = StackConfig::hmc2().row_buffer_bytes() as u64;
        // Alternate between two rows: every access conflicts.
        let addrs = (0..100u64).map(|i| (i % 2) * 4 * row);
        let rate = hit_rate_for_stream(&mut b, addrs);
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn first_access_is_empty() {
        let mut b = bank();
        assert_eq!(b.access(0), RowOutcome::Empty);
        assert_eq!(b.access(0), RowOutcome::Hit);
        b.precharge();
        assert_eq!(b.access(0), RowOutcome::Empty);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut b = bank();
        b.access(0);
        let t1 = b.stats().busy_time;
        b.access(0);
        assert!(b.stats().busy_time > t1);
    }

    proptest! {
        #[test]
        fn stats_accesses_equal_stream_length(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut b = bank();
            let n = addrs.len() as u64;
            for a in addrs {
                b.access(a);
            }
            prop_assert_eq!(b.stats().accesses(), n);
        }

        #[test]
        fn hit_rate_is_a_fraction(addrs in proptest::collection::vec(0u64..1_000_000, 0..200)) {
            let mut b = bank();
            let rate = hit_rate_for_stream(&mut b, addrs);
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }
}
