//! Shared foundation types for the `hetero-pim` workspace.
//!
//! This crate holds the vocabulary used by every other crate in the
//! reproduction of *Processing-in-Memory for Energy-efficient Neural Network
//! Training: A Heterogeneous Approach* (MICRO 2018):
//!
//! * strongly typed identifiers ([`ids`]),
//! * physical units with unit-safe arithmetic ([`units`]),
//! * the common error type ([`error`]),
//! * structured analysis diagnostics ([`diag`]),
//! * runtime observability: spans, counters, Chrome-trace export ([`trace`]),
//! * shared command-line parsing helpers for the workspace binaries
//!   ([`cli`]).
//!
//! # Examples
//!
//! ```
//! use pim_common::units::{Seconds, Joules};
//!
//! let t = Seconds::new(2.0);
//! let e = Joules::new(10.0);
//! let power = e / t;
//! assert_eq!(power.watts(), 5.0);
//! ```
#![forbid(unsafe_code)]

pub mod access;
pub mod cli;
pub mod diag;
pub mod error;
pub mod fingerprint;
pub mod ids;
pub mod trace;
pub mod units;

pub use diag::{Diagnostic, Diagnostics, Severity};
pub use error::{PimError, Result};
pub use trace::{Counters, NullTrace, Recorder, TraceEvent, TraceRecording, TraceSink, Track};
