//! The workspace-wide error type.

use std::fmt;

/// Convenience alias for results carrying a [`PimError`].
pub type Result<T> = std::result::Result<T, PimError>;

/// Errors produced anywhere in the hetero-pim stack.
///
/// # Examples
///
/// ```
/// use pim_common::PimError;
///
/// let err = PimError::ShapeMismatch {
///     context: "matmul",
///     expected: vec![2, 3],
///     actual: vec![3, 2],
/// };
/// assert!(err.to_string().contains("matmul"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PimError {
    /// A tensor shape did not match what an operation required.
    ShapeMismatch {
        /// Operation or call site that detected the mismatch.
        context: &'static str,
        /// The shape the operation required.
        expected: Vec<usize>,
        /// The shape it was given.
        actual: Vec<usize>,
    },
    /// An argument was outside its valid domain.
    InvalidArgument {
        /// Call site that rejected the argument.
        context: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// A graph node referenced a tensor or node that does not exist.
    UnknownId {
        /// The kind of identifier ("tensor", "op", "device", ...).
        kind: &'static str,
        /// The raw index that failed to resolve.
        index: usize,
    },
    /// The dataflow graph contains a dependency cycle.
    GraphCycle {
        /// Indices of nodes known to participate in the cycle.
        members: Vec<usize>,
    },
    /// A kernel was submitted to a device that cannot execute it.
    UnsupportedKernel {
        /// Device that rejected the kernel.
        device: String,
        /// Why the kernel cannot run there.
        reason: String,
    },
    /// A hardware resource request exceeded the available budget.
    ResourceExhausted {
        /// The resource ("logic-die area", "fixed-function units", ...).
        resource: &'static str,
        /// Amount requested.
        requested: f64,
        /// Amount available.
        available: f64,
    },
    /// A generated binary referenced a fixed-function kernel index that
    /// does not exist in its companion kernel list — caught at
    /// binary-generation time instead of faulting at execution.
    KernelIndexOutOfBounds {
        /// The kernel whose body holds the bad call site.
        kernel: String,
        /// The out-of-bounds index.
        index: usize,
        /// Number of extracted fixed-function kernels actually available.
        available: usize,
    },
    /// Execution observed a cooperative cancellation request and stopped
    /// at the next check site (the component next-tick merge).
    Cancelled {
        /// Events the run had retired when the cancellation was observed.
        after_events: u64,
    },
    /// Execution exceeded a deterministic resource budget — an
    /// event-count fuel limit or a simulated-time deadline — and stopped
    /// at the next check site. Budgets are pure functions of the run
    /// request, so this outcome byte-replays across processes and thread
    /// counts.
    BudgetExhausted {
        /// Which budget tripped: `"events"` (fuel in retired events) or
        /// `"deadline-us"` (simulated-time horizon in microseconds).
        budget: &'static str,
        /// The configured limit, in the budget's unit.
        limit: u64,
    },
    /// The simulator reached an inconsistent state (a bug, not user error).
    Internal {
        /// Description of the invariant that failed.
        message: String,
    },
}

impl fmt::Display for PimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PimError::ShapeMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch in {context}: expected {expected:?}, got {actual:?}"
            ),
            PimError::InvalidArgument { context, message } => {
                write!(f, "invalid argument in {context}: {message}")
            }
            PimError::UnknownId { kind, index } => {
                write!(f, "unknown {kind} id {index}")
            }
            PimError::GraphCycle { members } => {
                write!(f, "dependency cycle involving nodes {members:?}")
            }
            PimError::UnsupportedKernel { device, reason } => {
                write!(f, "device {device} cannot execute kernel: {reason}")
            }
            PimError::ResourceExhausted {
                resource,
                requested,
                available,
            } => write!(
                f,
                "resource {resource} exhausted: requested {requested}, available {available}"
            ),
            PimError::KernelIndexOutOfBounds {
                kernel,
                index,
                available,
            } => write!(
                f,
                "kernel {kernel} calls fixed-function kernel {index}, \
                 but only {available} were extracted"
            ),
            PimError::Cancelled { after_events } => {
                write!(f, "run cancelled after {after_events} events")
            }
            PimError::BudgetExhausted { budget, limit } => {
                write!(f, "run exceeded its {budget} budget of {limit}")
            }
            PimError::Internal { message } => write!(f, "internal error: {message}"),
        }
    }
}

impl std::error::Error for PimError {}

impl PimError {
    /// Builds an [`PimError::InvalidArgument`] from any displayable message.
    pub fn invalid(context: &'static str, message: impl fmt::Display) -> Self {
        PimError::InvalidArgument {
            context,
            message: message.to_string(),
        }
    }

    /// Builds an [`PimError::Internal`] from any displayable message.
    pub fn internal(message: impl fmt::Display) -> Self {
        PimError::Internal {
            message: message.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let err = PimError::invalid("conv2d", "stride must be nonzero");
        assert_eq!(
            err.to_string(),
            "invalid argument in conv2d: stride must be nonzero"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PimError>();
    }

    #[test]
    fn debug_is_nonempty() {
        let err = PimError::internal("boom");
        assert!(!format!("{err:?}").is_empty());
    }

    #[test]
    fn kernel_index_display_names_kernel_and_bounds() {
        let err = PimError::KernelIndexOutOfBounds {
            kernel: "Conv2D_progr".to_string(),
            index: 3,
            available: 1,
        };
        let text = err.to_string();
        assert!(text.contains("Conv2D_progr"));
        assert!(text.contains('3'));
        assert!(text.contains("only 1"));
    }

    #[test]
    fn cancellation_and_budget_displays_carry_the_numbers() {
        let c = PimError::Cancelled { after_events: 42 };
        assert_eq!(c.to_string(), "run cancelled after 42 events");
        let b = PimError::BudgetExhausted {
            budget: "events",
            limit: 1000,
        };
        assert_eq!(b.to_string(), "run exceeded its events budget of 1000");
    }

    #[test]
    fn source_chain_terminates() {
        use std::error::Error;
        let err = PimError::internal("boom");
        assert!(err.source().is_none());
    }
}
