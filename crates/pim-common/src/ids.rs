//! Strongly typed identifiers.
//!
//! Each identifier is a newtype over `usize` so the compiler statically
//! distinguishes, e.g., a bank index from an op index (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(usize);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the raw index.
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifies an operation node in a dataflow graph.
    ///
    /// # Examples
    ///
    /// ```
    /// use pim_common::ids::OpId;
    /// let id = OpId::new(3);
    /// assert_eq!(id.to_string(), "op3");
    /// ```
    OpId,
    "op"
);

define_id!(
    /// Identifies a tensor value flowing between graph nodes.
    TensorId,
    "t"
);

define_id!(
    /// Identifies a DRAM bank (a vertical slice of the 3D memory stack).
    BankId,
    "bank"
);

define_id!(
    /// Identifies a compute device registered with the OpenCL platform.
    DeviceId,
    "dev"
);

define_id!(
    /// Identifies a compiled kernel binary.
    KernelId,
    "kern"
);

define_id!(
    /// Identifies a training step (one minibatch iteration).
    StepId,
    "step"
);

define_id!(
    /// Identifies one co-running workload in a mixed-workload simulation.
    WorkloadId,
    "wl"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_through_usize() {
        let id = BankId::new(17);
        assert_eq!(usize::from(id), 17);
        assert_eq!(BankId::from(17usize), id);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(OpId::new(1));
        set.insert(OpId::new(1));
        set.insert(OpId::new(2));
        assert_eq!(set.len(), 2);
        assert!(OpId::new(1) < OpId::new(2));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(TensorId::new(0).to_string(), "t0");
        assert_eq!(DeviceId::new(4).to_string(), "dev4");
        assert_eq!(StepId::new(9).to_string(), "step9");
        assert_eq!(WorkloadId::new(2).to_string(), "wl2");
        assert_eq!(KernelId::new(2).to_string(), "kern2");
    }
}
