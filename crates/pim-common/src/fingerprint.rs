//! Deterministic structural fingerprints.
//!
//! Memoization layers (the profiler's step cache, the sweep-cell dedup in
//! `pim-sim`) key on the *structure* of a value, not its address. Rather
//! than deriving `Hash` across every cost-model type — many carry `f64`
//! fields, which have no `Hash` impl — we hash the value's `Debug`
//! rendering. `Debug` output is a pure function of the value for the
//! derive-generated impls used throughout this workspace, and
//! [`DefaultHasher`] uses fixed keys, so the fingerprint is stable within
//! and across processes.

use std::collections::hash_map::DefaultHasher;
use std::fmt::{self, Debug, Write};
use std::hash::Hasher;

/// Streams `fmt::Write` text straight into a hasher, so fingerprinting
/// never materializes the formatted string.
struct HashWriter(DefaultHasher);

impl Write for HashWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

/// A deterministic 64-bit fingerprint of a value's `Debug` rendering.
///
/// # Examples
///
/// ```
/// use pim_common::fingerprint::debug_hash;
/// assert_eq!(debug_hash(&(1, "a")), debug_hash(&(1, "a")));
/// assert_ne!(debug_hash(&(1, "a")), debug_hash(&(2, "a")));
/// ```
pub fn debug_hash<T: Debug + ?Sized>(value: &T) -> u64 {
    let mut w = HashWriter(DefaultHasher::new());
    write!(w, "{value:?}").expect("hashing writer never fails");
    w.0.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_fingerprint_identically() {
        let a = vec![(1.5f64, "Conv2D"), (2.25, "MatMul")];
        let b = a.clone();
        assert_eq!(debug_hash(&a), debug_hash(&b));
    }

    #[test]
    fn distinct_values_fingerprint_distinctly() {
        assert_ne!(debug_hash(&1.0f64), debug_hash(&2.0f64));
        assert_ne!(debug_hash("x"), debug_hash("y"));
    }
}
