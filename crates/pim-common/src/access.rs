//! Memory access patterns.
//!
//! The pattern of an operation's address stream is part of its cost
//! characterization (produced by `pim-tensor`) and is consumed by the memory
//! models (in `pim-mem`) to derate achievable bandwidth. It lives here so
//! that neither crate needs to depend on the other.

use serde::{Deserialize, Serialize};

/// How a stream of memory accesses is laid out in the address space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Unit-stride streaming (dense tensor sweeps, im2col reads).
    #[default]
    Sequential,
    /// Constant non-unit stride in elements (e.g. strided convolutions).
    Strided,
    /// Data-dependent addressing (embedding gathers in Word2vec/LSTM).
    Random,
}

impl AccessPattern {
    /// The "worse" (lower-bandwidth) of two patterns, used when merging the
    /// read and write streams of one operation.
    ///
    /// # Examples
    ///
    /// ```
    /// use pim_common::access::AccessPattern;
    /// let merged = AccessPattern::Sequential.worst(AccessPattern::Random);
    /// assert_eq!(merged, AccessPattern::Random);
    /// ```
    pub fn worst(self, other: Self) -> Self {
        fn rank(p: AccessPattern) -> u8 {
            match p {
                AccessPattern::Sequential => 0,
                AccessPattern::Strided => 1,
                AccessPattern::Random => 2,
            }
        }
        if rank(self) >= rank(other) {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_prefers_random() {
        use AccessPattern::*;
        assert_eq!(Sequential.worst(Sequential), Sequential);
        assert_eq!(Sequential.worst(Strided), Strided);
        assert_eq!(Strided.worst(Random), Random);
        assert_eq!(Random.worst(Sequential), Random);
    }

    #[test]
    fn default_is_sequential() {
        assert_eq!(AccessPattern::default(), AccessPattern::Sequential);
    }
}
