//! Runtime observability: spans, counters, and Chrome trace-event export.
//!
//! The simulator's whole subject is *where time goes*; this module gives
//! every layer a uniform way to say so. Three pieces:
//!
//! * [`TraceSink`] — the recording interface. Producers emit
//!   [`TraceEvent`]s (spans, instants, counter samples, track metadata)
//!   against [`Track`] coordinates; [`Recorder`] collects them,
//!   [`NullTrace`] drops them.
//! * [`Counters`] — a flat, deterministic name → value registry for
//!   monotonic totals (ops placed per device, events dispatched, bytes
//!   moved, stalls) that reports can be cross-checked against.
//! * [`TraceRecording::to_chrome_json`] — export as Chrome trace-event
//!   JSON (the `chrome://tracing` / Perfetto format), hand-rolled like
//!   [`crate::diag`]'s renderer (the workspace builds offline, no
//!   `serde_json`), deterministic and byte-identical for identical runs.
//!   [`validate_chrome_trace`] structurally checks an exported file.
//!
//! All timestamps are *simulated* time ([`Seconds`]), never host
//! wall-clock — a traced run of a deterministic simulation is itself
//! deterministic, which is what makes golden-file and byte-diff testing
//! of traces possible.

use crate::diag::Diagnostics;
use crate::units::Seconds;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Coordinates of one timeline lane: a Chrome trace `(pid, tid)` pair.
///
/// The exporter groups events by track and requires timestamps to be
/// monotone within each track; producers are free to map processes and
/// threads onto any stable scheme (the engine uses one process with one
/// thread per device lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    /// Chrome trace process id.
    pub pid: u32,
    /// Chrome trace thread id.
    pub tid: u32,
}

impl Track {
    /// Builds a track from its process and thread ids.
    pub const fn new(pid: u32, tid: u32) -> Self {
        Track { pid, tid }
    }
}

/// One argument value attached to a span or instant.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A string argument.
    Str(String),
    /// An unsigned integer argument.
    UInt(u64),
    /// A floating-point argument.
    Float(f64),
    /// A boolean argument.
    Bool(bool),
}

impl From<&str> for ArgValue {
    fn from(s: &str) -> Self {
        ArgValue::Str(s.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(s: String) -> Self {
        ArgValue::Str(s)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::UInt(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::UInt(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

/// Named arguments of a span or instant.
pub type Args = Vec<(&'static str, ArgValue)>;

/// One event on the trace timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A duration span (Chrome `ph: "X"` complete event).
    Span {
        /// Timeline lane.
        track: Track,
        /// Display name.
        name: String,
        /// Category label (Chrome's `cat` field).
        cat: &'static str,
        /// Start, in simulated time.
        start: Seconds,
        /// End, in simulated time (`end >= start`).
        end: Seconds,
        /// Named arguments.
        args: Args,
    },
    /// A zero-duration marker (Chrome `ph: "i"` instant event).
    Instant {
        /// Timeline lane.
        track: Track,
        /// Display name.
        name: String,
        /// Category label.
        cat: &'static str,
        /// Time of the marker.
        ts: Seconds,
        /// Named arguments.
        args: Args,
    },
    /// A sampled counter value (Chrome `ph: "C"` counter event).
    Counter {
        /// Timeline lane.
        track: Track,
        /// Counter name (one plot per name).
        name: &'static str,
        /// Sample time.
        ts: Seconds,
        /// Sampled value.
        value: f64,
    },
    /// Process-name metadata (Chrome `ph: "M"`, `process_name`).
    ProcessName {
        /// Process the name applies to (tid ignored by viewers).
        track: Track,
        /// Display name.
        name: String,
    },
    /// Thread-name metadata (Chrome `ph: "M"`, `thread_name`) — this is
    /// what labels a device lane in the viewer.
    ThreadName {
        /// Track the name applies to.
        track: Track,
        /// Display name.
        name: String,
    },
}

impl TraceEvent {
    fn track(&self) -> Track {
        match self {
            TraceEvent::Span { track, .. }
            | TraceEvent::Instant { track, .. }
            | TraceEvent::Counter { track, .. }
            | TraceEvent::ProcessName { track, .. }
            | TraceEvent::ThreadName { track, .. } => *track,
        }
    }

    /// Metadata sorts to the front of its track; timed events by time.
    fn sort_ts(&self) -> f64 {
        match self {
            TraceEvent::ProcessName { .. } | TraceEvent::ThreadName { .. } => f64::NEG_INFINITY,
            TraceEvent::Span { start, .. } => start.seconds(),
            TraceEvent::Instant { ts, .. } | TraceEvent::Counter { ts, .. } => ts.seconds(),
        }
    }
}

/// Receives trace events from instrumented code.
///
/// Producers should gate expensive argument construction on
/// [`TraceSink::enabled`]; the engine additionally compiles its
/// instrumentation away entirely when its `trace` feature is off.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);

    /// True when recorded events are kept (false for [`NullTrace`]).
    fn enabled(&self) -> bool {
        true
    }
}

/// Drops every event — tracing disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTrace;

impl TraceSink for NullTrace {
    fn record(&mut self, _event: TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Collects events in memory, preserving emission order for stable
/// tie-breaking at export.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Vec<TraceEvent>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finishes recording, producing the exportable timeline.
    pub fn into_recording(self) -> TraceRecording {
        TraceRecording::new(self.events)
    }
}

impl TraceSink for Recorder {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// A finished trace: events ordered by track, then time, then emission
/// order — the order [`TraceRecording::to_chrome_json`] writes them in,
/// which guarantees monotone per-track timestamps in the export.
///
/// # Examples
///
/// ```
/// use pim_common::trace::{Recorder, Track, TraceEvent, TraceSink};
/// use pim_common::units::Seconds;
///
/// let mut rec = Recorder::new();
/// let track = Track::new(1, 1);
/// rec.record(TraceEvent::ThreadName { track, name: "CPU".into() });
/// rec.record(TraceEvent::Span {
///     track,
///     name: "Conv2D".into(),
///     cat: "op",
///     start: Seconds::new(1e-6),
///     end: Seconds::new(3e-6),
///     args: vec![("step", 0u64.into())],
/// });
/// let json = rec.into_recording().to_chrome_json();
/// assert!(json.contains("\"ph\":\"X\""));
/// assert!(json.contains("\"name\":\"Conv2D\""));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceRecording {
    events: Vec<TraceEvent>,
}

impl TraceRecording {
    fn new(mut events: Vec<TraceEvent>) -> Self {
        // Stable sort: emission order breaks (track, time) ties, so the
        // export is a pure function of the recorded events.
        events.sort_by(|a, b| {
            (a.track(), a.sort_ts())
                .partial_cmp(&(b.track(), b.sort_ts()))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        TraceRecording { events }
    }

    /// The ordered events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// True when the recording holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the recording as Chrome trace-event JSON, loadable by
    /// `chrome://tracing` and Perfetto.
    ///
    /// Every event carries the `ph`/`ts`/`pid`/`tid` keys; timestamps are
    /// microseconds of simulated time with 0.1 ns resolution; events are
    /// written in track order with monotone timestamps per track. The
    /// output is byte-identical for identical recordings.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            render_event(&mut out, ev);
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Microseconds with 0.1 ns resolution — fine enough for the engine's
/// femtosecond-quantized clock, coarse enough to stay compact.
fn fmt_us(t: Seconds) -> String {
    format!("{:.4}", t.seconds() * 1e6)
}

fn render_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{}:", json_string(k)).ok();
        match v {
            ArgValue::Str(s) => out.push_str(&json_string(s)),
            ArgValue::UInt(n) => {
                write!(out, "{n}").ok();
            }
            ArgValue::Float(x) => {
                write!(out, "{x}").ok();
            }
            ArgValue::Bool(b) => {
                write!(out, "{b}").ok();
            }
        }
    }
    out.push('}');
}

fn render_event(out: &mut String, ev: &TraceEvent) {
    match ev {
        TraceEvent::Span {
            track,
            name,
            cat,
            start,
            end,
            args,
        } => {
            write!(
                out,
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":",
                json_string(name),
                json_string(cat),
                fmt_us(*start),
                fmt_us(*end - *start),
                track.pid,
                track.tid,
            )
            .ok();
            render_args(out, args);
            out.push('}');
        }
        TraceEvent::Instant {
            track,
            name,
            cat,
            ts,
            args,
        } => {
            write!(
                out,
                "{{\"name\":{},\"cat\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":",
                json_string(name),
                json_string(cat),
                fmt_us(*ts),
                track.pid,
                track.tid,
            )
            .ok();
            render_args(out, args);
            out.push('}');
        }
        TraceEvent::Counter {
            track,
            name,
            ts,
            value,
        } => {
            write!(
                out,
                "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"value\":{value}}}}}",
                json_string(name),
                fmt_us(*ts),
                track.pid,
                track.tid,
            )
            .ok();
        }
        TraceEvent::ProcessName { track, name } | TraceEvent::ThreadName { track, name } => {
            let meta = if matches!(ev, TraceEvent::ProcessName { .. }) {
                "process_name"
            } else {
                "thread_name"
            };
            write!(
                out,
                "{{\"name\":\"{meta}\",\"ph\":\"M\",\"ts\":0,\"pid\":{},\"tid\":{},\"args\":{{\"name\":{}}}}}",
                track.pid,
                track.tid,
                json_string(name),
            )
            .ok();
        }
    }
}

/// Escapes a string into a JSON string literal (same rules as
/// [`crate::diag`]'s renderer) — the emit-side twin of [`parse_json`],
/// shared by the trace exporter and the `pim-serve` wire protocol.
///
/// # Examples
///
/// ```
/// use pim_common::trace::json_string;
/// assert_eq!(json_string(r#"a"b"#), r#""a\"b""#);
/// ```
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A flat, deterministically ordered registry of named totals.
///
/// Keys are slash-scoped by convention (`"ops/CPU"`, `"bytes/moved"`,
/// `"events/dispatched"`); iteration and JSON rendering are in key order,
/// so two identical runs render identical registries.
///
/// # Examples
///
/// ```
/// use pim_common::trace::Counters;
///
/// let mut c = Counters::new();
/// c.inc("events/dispatched");
/// c.add("bytes/moved", 4096.0);
/// c.inc("events/dispatched");
/// assert_eq!(c.get("events/dispatched"), 2.0);
/// assert_eq!(c.get("missing"), 0.0);
/// assert!(c.to_json().starts_with('{'));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Counters {
    map: BTreeMap<String, f64>,
}

impl Counters {
    /// An empty registry.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `delta` to a counter, creating it at zero first if absent.
    pub fn add(&mut self, name: &str, delta: f64) {
        if let Some(v) = self.map.get_mut(name) {
            *v += delta;
        } else {
            self.map.insert(name.to_string(), delta);
        }
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1.0);
    }

    /// Current value of a counter (0 when never touched).
    pub fn get(&self, name: &str) -> f64 {
        self.map.get(name).copied().unwrap_or(0.0)
    }

    /// True when the counter exists.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no counter was ever touched.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All counters in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Folds another registry into this one, summing shared keys.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Renders the registry as a JSON object in key order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "{}:{v}", json_string(k)).ok();
        }
        out.push('}');
        out
    }
}

// ---------------------------------------------------------------------------
// Structural validation of exported Chrome traces.
// ---------------------------------------------------------------------------

/// A parsed JSON value — the minimal model [`validate_chrome_trace`] and
/// the bench-file schema validator need (the workspace builds offline with
/// no `serde_json`). Objects preserve key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as `(key, value)` pairs in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up an object field by key (`None` for non-objects and
    /// missing keys).
    pub fn field<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean value, when this is `true` or `false`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Compact JSON rendering: no whitespace, object keys in document order,
/// numbers in Rust's shortest-round-trip `f64` form. Rendering a value
/// parsed by [`parse_json`] yields a document that re-parses to the same
/// value, which is what the `pim-serve` protocol and its byte-diff CI
/// stage rely on.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => f.write_str(&json_string(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", json_string(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses a complete JSON document (trailing data is an error).
///
/// # Examples
///
/// ```
/// use pim_common::trace::parse_json;
/// let doc = parse_json(r#"{"cells": [1, 2]}"#).unwrap();
/// assert_eq!(doc.field("cells").unwrap().as_arr().unwrap().len(), 2);
/// ```
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    Parser::new(text).parse()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing data at byte {}", self.pos));
        }
        Ok(v)
    }
}

/// Structurally validates an exported Chrome trace:
///
/// * the document parses as JSON with a `traceEvents` array,
/// * every event carries `ph` (string), `ts`, `pid`, and `tid` (numbers),
/// * `X` events carry a `name` and a non-negative `dur`,
/// * per `(pid, tid)` track, non-metadata timestamps are monotone
///   non-decreasing in file order.
///
/// Violations come back as error-severity findings in the `trace` pass;
/// an empty-but-parseable trace is clean.
///
/// # Examples
///
/// ```
/// use pim_common::trace::validate_chrome_trace;
///
/// let ok = r#"{"traceEvents":[
///   {"name":"op","ph":"X","ts":1.0,"dur":2.0,"pid":1,"tid":1,"args":{}}
/// ]}"#;
/// assert!(validate_chrome_trace(ok).is_clean());
/// assert!(!validate_chrome_trace("not json").is_clean());
/// ```
pub fn validate_chrome_trace(json: &str) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let doc = match Parser::new(json).parse() {
        Ok(doc) => doc,
        Err(e) => {
            diags.error("trace", "document", format!("JSON parse failure: {e}"));
            return diags;
        }
    };
    let Some(Json::Arr(events)) = doc.field("traceEvents") else {
        diags.error("trace", "document", "missing `traceEvents` array");
        return diags;
    };
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let subject = format!("event {i}");
        let Some(ph) = ev.field("ph").and_then(Json::as_str) else {
            diags.error("trace", &subject, "missing string `ph` key");
            continue;
        };
        let ts = ev.field("ts").and_then(Json::as_num);
        let pid = ev.field("pid").and_then(Json::as_num);
        let tid = ev.field("tid").and_then(Json::as_num);
        let (Some(ts), Some(pid), Some(tid)) = (ts, pid, tid) else {
            diags.error("trace", &subject, "missing numeric `ts`/`pid`/`tid` key");
            continue;
        };
        if ph == "X" {
            if ev.field("name").and_then(Json::as_str).is_none() {
                diags.error("trace", &subject, "`X` event without a `name`");
            }
            match ev.field("dur").and_then(Json::as_num) {
                Some(d) if d >= 0.0 => {}
                Some(d) => {
                    diags.error("trace", &subject, format!("negative `dur` {d}"));
                }
                None => diags.error("trace", &subject, "`X` event without a `dur`"),
            }
        }
        if ph != "M" {
            let key = (pid as u64, tid as u64);
            if let Some(prev) = last_ts.get(&key) {
                if ts < *prev {
                    diags.error(
                        "trace",
                        &subject,
                        format!("track ({pid},{tid}) timestamp regressed: {prev} -> {ts}"),
                    );
                }
            }
            last_ts.insert(key, ts);
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: Track, name: &str, start: f64, end: f64) -> TraceEvent {
        TraceEvent::Span {
            track,
            name: name.to_string(),
            cat: "op",
            start: Seconds::new(start),
            end: Seconds::new(end),
            args: vec![("step", 1u64.into()), ("rc", true.into())],
        }
    }

    #[test]
    fn json_display_round_trips() {
        let doc =
            r#"{"id":"a\"b","n":1.5,"neg":-2,"ok":true,"none":null,"xs":[1,"two",{"k":false}]}"#;
        let parsed = parse_json(doc).unwrap();
        assert_eq!(parsed.to_string(), doc);
        assert_eq!(parse_json(&parsed.to_string()).unwrap(), parsed);
        assert_eq!(parsed.field("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(parsed.field("n").and_then(Json::as_bool), None);
    }

    #[test]
    fn recorder_round_trips_through_chrome_json() {
        let mut rec = Recorder::new();
        let t = Track::new(1, 100);
        rec.record(TraceEvent::ProcessName {
            track: Track::new(1, 0),
            name: "engine".into(),
        });
        rec.record(TraceEvent::ThreadName {
            track: t,
            name: "CPU".into(),
        });
        rec.record(span(t, "Conv2D", 2e-6, 5e-6));
        rec.record(span(t, "Relu", 5e-6, 6e-6));
        rec.record(TraceEvent::Counter {
            track: Track::new(1, 2),
            name: "ff units busy",
            ts: Seconds::new(3e-6),
            value: 64.0,
        });
        assert_eq!(rec.len(), 5);
        let json = rec.into_recording().to_chrome_json();
        assert!(validate_chrome_trace(&json).is_clean(), "{json}");
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn export_sorts_tracks_and_times() {
        let mut rec = Recorder::new();
        let a = Track::new(1, 2);
        let b = Track::new(1, 1);
        rec.record(span(a, "late", 9e-6, 10e-6));
        rec.record(span(b, "second", 5e-6, 6e-6));
        rec.record(span(a, "early", 1e-6, 2e-6));
        rec.record(span(b, "first", 1e-6, 2e-6));
        let recording = rec.into_recording();
        let names: Vec<&str> = recording
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::Span { name, .. } => name.as_str(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, vec!["first", "second", "early", "late"]);
        assert!(validate_chrome_trace(&recording.to_chrome_json()).is_clean());
    }

    #[test]
    fn export_is_deterministic() {
        let build = || {
            let mut rec = Recorder::new();
            for i in 0..10 {
                rec.record(span(
                    Track::new(1, i % 3),
                    "op",
                    f64::from(i) * 1e-6,
                    f64::from(i + 1) * 1e-6,
                ));
            }
            rec.into_recording().to_chrome_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn null_trace_drops_everything() {
        let mut sink = NullTrace;
        assert!(!sink.enabled());
        sink.record(span(Track::new(0, 0), "ignored", 0.0, 1.0));
    }

    #[test]
    fn validator_rejects_missing_keys_and_regressions() {
        let missing_ph = r#"{"traceEvents":[{"ts":1.0,"pid":1,"tid":1}]}"#;
        assert!(!validate_chrome_trace(missing_ph).is_clean());
        let missing_ts = r#"{"traceEvents":[{"ph":"X","name":"x","dur":1.0,"pid":1,"tid":1}]}"#;
        assert!(!validate_chrome_trace(missing_ts).is_clean());
        let regression = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":5.0,"dur":1.0,"pid":1,"tid":1,"args":{}},
            {"name":"b","ph":"X","ts":4.0,"dur":1.0,"pid":1,"tid":1,"args":{}}
        ]}"#;
        let diags = validate_chrome_trace(regression);
        assert_eq!(diags.error_count(), 1);
        assert!(diags.render_text().contains("regressed"));
        let negative_dur =
            r#"{"traceEvents":[{"name":"a","ph":"X","ts":1.0,"dur":-2.0,"pid":1,"tid":1}]}"#;
        assert!(!validate_chrome_trace(negative_dur).is_clean());
    }

    #[test]
    fn validator_allows_separate_tracks_to_interleave() {
        let interleaved = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":5.0,"dur":1.0,"pid":1,"tid":1,"args":{}},
            {"name":"b","ph":"X","ts":1.0,"dur":1.0,"pid":1,"tid":2,"args":{}},
            {"name":"c","ph":"i","s":"t","ts":6.0,"pid":1,"tid":1,"args":{}}
        ]}"#;
        assert!(validate_chrome_trace(interleaved).is_clean());
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let doc = r#"{"traceEvents":[{"name":"a\"b\\c\nd","ph":"i","ts":0,"pid":1,"tid":1,
            "args":{"nested":{"deep":[1,2,3]},"flag":true,"none":null,"neg":-1.5e-3}}]}"#;
        assert!(validate_chrome_trace(doc).is_clean());
        assert!(!validate_chrome_trace("{\"traceEvents\":[}").is_clean());
        assert!(!validate_chrome_trace("{}").is_clean());
    }

    #[test]
    fn counters_accumulate_and_render_in_key_order() {
        let mut c = Counters::new();
        c.add("ops/CPU", 3.0);
        c.inc("ops/CPU");
        c.add("bytes/moved", 1024.0);
        assert_eq!(c.get("ops/CPU"), 4.0);
        assert_eq!(c.len(), 2);
        let keys: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["bytes/moved", "ops/CPU"]);
        assert_eq!(c.to_json(), "{\"bytes/moved\":1024,\"ops/CPU\":4}");

        let mut other = Counters::new();
        other.add("ops/CPU", 1.0);
        other.add("events/dispatched", 7.0);
        c.merge(&other);
        assert_eq!(c.get("ops/CPU"), 5.0);
        assert_eq!(c.get("events/dispatched"), 7.0);
    }

    #[test]
    fn spans_carry_argument_values_of_every_kind() {
        let args: Args = vec![
            ("s", "text".into()),
            ("owned", String::from("owned").into()),
            ("n", 42u64.into()),
            ("idx", 7usize.into()),
            ("x", 1.5f64.into()),
            ("b", false.into()),
        ];
        let mut rec = Recorder::new();
        rec.record(TraceEvent::Instant {
            track: Track::new(1, 1),
            name: "decision".into(),
            cat: "sched",
            ts: Seconds::new(1e-6),
            args,
        });
        let json = rec.into_recording().to_chrome_json();
        assert!(json.contains("\"n\":42"));
        assert!(json.contains("\"x\":1.5"));
        assert!(json.contains("\"b\":false"));
        assert!(validate_chrome_trace(&json).is_clean());
    }
}
