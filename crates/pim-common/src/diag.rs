//! Structured diagnostics for the static-analysis passes.
//!
//! Every `pim-verify` pass — and the engine's own debug-mode assertions —
//! reports findings as [`Diagnostic`] values collected into a
//! [`Diagnostics`] list, rendered either as human-readable text or as JSON
//! (hand-rolled: the workspace builds offline with no `serde_json`).

use std::fmt;
use std::fmt::Write as _;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth surfacing, never a failure.
    Info,
    /// Suspicious but legal; does not fail verification.
    Warning,
    /// An invariant violation; verification fails.
    Error,
}

impl Severity {
    /// Lower-case label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding from one analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad the finding is.
    pub severity: Severity,
    /// Which pass produced it ("graph", "kir", "schedule", "report").
    pub pass: &'static str,
    /// What the finding is about ("AlexNet/op 12 (Conv2D)", ...).
    pub subject: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        severity: Severity,
        pass: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            pass,
            subject: subject.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.pass, self.subject, self.message
        )
    }
}

/// An ordered collection of findings.
///
/// # Examples
///
/// ```
/// use pim_common::diag::{Diagnostics, Severity};
///
/// let mut diags = Diagnostics::new();
/// diags.push(Severity::Warning, "graph", "t3", "tensor is never consumed");
/// assert_eq!(diags.error_count(), 0);
/// assert!(diags.is_clean());
/// diags.push(Severity::Error, "kir", "k0", "kernel index out of bounds");
/// assert!(!diags.is_clean());
/// assert!(diags.to_json().contains("\"pass\":\"kir\""));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Appends one finding.
    pub fn push(
        &mut self,
        severity: Severity,
        pass: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.items
            .push(Diagnostic::new(severity, pass, subject, message));
    }

    /// Appends an error-severity finding.
    pub fn error(
        &mut self,
        pass: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.push(Severity::Error, pass, subject, message);
    }

    /// Appends a warning-severity finding.
    pub fn warning(
        &mut self,
        pass: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.push(Severity::Warning, pass, subject, message);
    }

    /// Moves every finding of `other` into `self`.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// All findings, in emission order.
    pub fn items(&self) -> &[Diagnostic] {
        &self.items
    }

    /// Number of findings at a given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.items.iter().filter(|d| d.severity == severity).count()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// True when no finding is an error (warnings and infos allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// True when there are no findings at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Findings produced by one pass.
    pub fn for_pass<'a>(&'a self, pass: &'a str) -> impl Iterator<Item = &'a Diagnostic> + 'a {
        self.items.iter().filter(move |d| d.pass == pass)
    }

    /// Renders every finding as one line of text each.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders the findings as a JSON array of objects with `severity`,
    /// `pass`, `subject`, and `message` string fields.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"severity\":{},\"pass\":{},\"subject\":{},\"message\":{}}}",
                json_string(d.severity.label()),
                json_string(d.pass),
                json_string(&d.subject),
                json_string(&d.message),
            );
        }
        out.push(']');
        out
    }
}

/// Escapes a string into a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_puts_error_last() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn counts_partition_by_severity() {
        let mut d = Diagnostics::new();
        d.error("graph", "a", "broken");
        d.warning("graph", "b", "odd");
        d.push(Severity::Info, "kir", "c", "fyi");
        assert_eq!(d.error_count(), 1);
        assert_eq!(d.count(Severity::Warning), 1);
        assert_eq!(d.count(Severity::Info), 1);
        assert!(!d.is_clean());
        assert_eq!(d.for_pass("graph").count(), 2);
    }

    #[test]
    fn text_rendering_is_one_line_per_finding() {
        let mut d = Diagnostics::new();
        d.error("schedule", "wl0/step0/op1", "dependency violated");
        d.warning("report", "CPU", "zero makespan");
        let text = d.render_text();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("error[schedule] wl0/step0/op1: dependency violated"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut d = Diagnostics::new();
        d.error("graph", "t\"x\"", "line1\nline2\ttabbed \\ backslash");
        let json = d.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\\\"x\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\\t"));
        assert!(json.contains("\\\\ backslash"));
    }

    #[test]
    fn empty_diagnostics_render_empty_json_array() {
        assert_eq!(Diagnostics::new().to_json(), "[]");
        assert!(Diagnostics::new().is_empty());
        assert!(Diagnostics::new().is_clean());
    }

    /// Decodes one JSON string literal starting at `s[i]` (which must be
    /// the opening quote); returns the decoded text and the index one
    /// past the closing quote. Test-local: the workspace ships no JSON
    /// parser, and the round-trip tests below need one.
    fn parse_json_string(s: &str, i: usize) -> (String, usize) {
        let bytes: Vec<char> = s.chars().collect();
        assert_eq!(bytes[i], '"', "expected a string literal at {i}");
        let mut out = String::new();
        let mut j = i + 1;
        loop {
            match bytes[j] {
                '"' => return (out, j + 1),
                '\\' => {
                    j += 1;
                    match bytes[j] {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let hex: String = bytes[j + 1..j + 5].iter().collect();
                            let code = u32::from_str_radix(&hex, 16).unwrap();
                            out.push(char::from_u32(code).unwrap());
                            j += 4;
                        }
                        other => panic!("unexpected escape \\{other}"),
                    }
                }
                c => {
                    assert!(c as u32 >= 0x20, "raw control character {:#x}", c as u32);
                    out.push(c);
                }
            }
            j += 1;
        }
    }

    /// Extracts the value of a `"key":"..."` string field from a JSON
    /// object rendering.
    fn field(json: &str, key: &str) -> String {
        let tag = format!("\"{key}\":");
        let at = json.find(&tag).unwrap_or_else(|| panic!("no field {key}")) + tag.len();
        parse_json_string(json, json[..at].chars().count()).0
    }

    #[test]
    fn json_round_trips_hostile_subjects_and_messages() {
        let cases = [
            "plain ascii",
            "quotes \" inside \"twice\"",
            "back\\slash and tab\there",
            "line1\nline2\r\nline3",
            "control \u{1} \u{1f} chars",
            "non-ascii: héllo 日本語 π≈3.14159 →",
            "emoji: 🧪🔥",
            "",
        ];
        for case in cases {
            let mut d = Diagnostics::new();
            d.error("schedule", case, case);
            let json = d.to_json();
            assert_eq!(field(&json, "subject"), case, "subject drifted: {json}");
            assert_eq!(field(&json, "message"), case, "message drifted: {json}");
        }
    }

    #[test]
    fn json_control_characters_are_u_escaped() {
        let mut d = Diagnostics::new();
        d.error("graph", "s", "bell \u{7} and escape \u{1b}");
        let json = d.to_json();
        assert!(json.contains("\\u0007"), "{json}");
        assert!(json.contains("\\u001b"), "{json}");
        assert!(
            json.chars().all(|c| c as u32 >= 0x20),
            "raw control characters leaked into the JSON: {json:?}"
        );
    }

    #[test]
    fn extend_preserves_order() {
        let mut a = Diagnostics::new();
        a.error("graph", "x", "first");
        let mut b = Diagnostics::new();
        b.warning("kir", "y", "second");
        a.extend(b);
        assert_eq!(a.items().len(), 2);
        assert_eq!(a.items()[0].subject, "x");
        assert_eq!(a.items()[1].subject, "y");
    }
}
