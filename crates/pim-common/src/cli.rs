//! Shared command-line helpers for the workspace binaries.
//!
//! `repro` adopted a structured usage-error idiom (message plus usage
//! block to stderr, exit 2, reserving exit 1 for runtime failures);
//! `pim-verify` used to diverge (exit 1 for both). Both binaries now
//! share these helpers so the contract — and the error wording — stays
//! in one place.

use std::fmt::Display;
use std::str::FromStr;

/// Exit code for malformed command lines (exit 1 stays reserved for
/// runtime failures and error-severity findings).
pub const USAGE_EXIT: i32 = 2;

/// Prints `bin: msg` plus the usage block to stderr and exits
/// [`USAGE_EXIT`].
pub fn usage_error(bin: &str, msg: &str, usage: &str) -> ! {
    eprintln!("{bin}: {msg}\n{usage}");
    std::process::exit(USAGE_EXIT);
}

/// Parses one flag value, naming the flag and offending text on failure.
///
/// # Errors
///
/// Returns the structured message when `v` does not parse as `T`.
///
/// # Examples
///
/// ```
/// use pim_common::cli::parse_value;
///
/// assert_eq!(parse_value::<u64>("--seed", "7"), Ok(7));
/// assert_eq!(
///     parse_value::<u64>("--seed", "x").unwrap_err(),
///     "invalid --seed value `x`"
/// );
/// ```
pub fn parse_value<T: FromStr>(flag: &str, v: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("invalid {flag} value `{v}`"))
}

/// Parses a comma-separated pair like `--faults SEED,RATE` or
/// `--orders N,SEED`, with one structured message for every malformed
/// shape (missing comma, unparsable halves).
///
/// # Errors
///
/// Returns the structured message when `v` is not `A,B` with both
/// halves parsing.
///
/// # Examples
///
/// ```
/// use pim_common::cli::parse_pair;
///
/// assert_eq!(parse_pair::<u64, f64>("--faults", "A,B", "3,0.5"), Ok((3, 0.5)));
/// assert!(parse_pair::<u64, f64>("--faults", "A,B", "3").is_err());
/// assert!(parse_pair::<u64, f64>("--faults", "A,B", "x,0.5").is_err());
/// ```
pub fn parse_pair<A: FromStr, B: FromStr>(
    flag: &str,
    shape: &str,
    v: &str,
) -> Result<(A, B), String> {
    let err = || format!("{flag} expects {shape}, got `{v}`");
    let (a, b) = v.split_once(',').ok_or_else(err)?;
    Ok((a.parse().map_err(|_| err())?, b.parse().map_err(|_| err())?))
}

/// Validates a parsed value against an inclusive range, with the same
/// structured wording as the parse helpers.
///
/// # Errors
///
/// Returns the structured message when `v` falls outside
/// `[lo, hi]`.
pub fn require_in_range<T: PartialOrd + Display + Copy>(
    flag: &str,
    v: T,
    lo: T,
    hi: T,
) -> Result<T, String> {
    if v < lo || v > hi {
        return Err(format!("{flag} must be in [{lo}, {hi}], got {v}"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_rejects_every_malformed_shape() {
        for bad in ["", "7", ",", "7,", ",0.5", "x,0.5", "7,y", "7,0.5,9"] {
            assert!(
                parse_pair::<u64, f64>("--faults", "SEED,RATE", bad).is_err(),
                "`{bad}` must be rejected"
            );
        }
        assert_eq!(
            parse_pair::<u64, f64>("--faults", "SEED,RATE", "7,0.25"),
            Ok((7, 0.25))
        );
    }

    #[test]
    fn range_check_uses_structured_wording() {
        assert_eq!(require_in_range("--rate", 0.5, 0.0, 1.0), Ok(0.5));
        assert_eq!(
            require_in_range("--rate", 1.5, 0.0, 1.0).unwrap_err(),
            "--rate must be in [0, 1], got 1.5"
        );
    }
}
