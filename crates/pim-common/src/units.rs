//! Unit-safe physical quantities.
//!
//! The simulator mixes seconds, joules, watts, bytes, and operation counts in
//! nearly every formula; these newtypes make unit errors compile errors while
//! keeping arithmetic ergonomic (C-NEWTYPE, C-OVERLOAD).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

macro_rules! define_quantity {
    ($(#[$meta:meta])* $name:ident, $getter:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw value expressed in the base unit.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the base unit.
            pub const fn $getter(self) -> f64 {
                self.0
            }

            /// Returns the larger of two quantities.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of two quantities.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// True when the value is finite and non-negative.
            pub fn is_valid(self) -> bool {
                self.0.is_finite() && self.0 >= 0.0
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.6} ", $unit), self.0)
            }
        }
    };
}

define_quantity!(
    /// A duration in seconds.
    ///
    /// # Examples
    ///
    /// ```
    /// use pim_common::units::Seconds;
    /// let total = Seconds::new(1.5) + Seconds::new(0.5);
    /// assert_eq!(total.seconds(), 2.0);
    /// ```
    Seconds,
    seconds,
    "s"
);

define_quantity!(
    /// An energy in joules.
    Joules,
    joules,
    "J"
);

define_quantity!(
    /// A power in watts.
    Watts,
    watts,
    "W"
);

define_quantity!(
    /// A data volume in bytes.
    Bytes,
    bytes,
    "B"
);

define_quantity!(
    /// A count of arithmetic operations (floating-point or otherwise).
    OpCount,
    count,
    "ops"
);

impl Seconds {
    /// Builds a duration from a count of cycles at a clock frequency.
    ///
    /// # Examples
    ///
    /// ```
    /// use pim_common::units::Seconds;
    /// let t = Seconds::from_cycles(312_500_000.0, 312.5e6);
    /// assert!((t.seconds() - 1.0).abs() < 1e-12);
    /// ```
    pub fn from_cycles(cycles: f64, frequency_hz: f64) -> Self {
        Seconds::new(cycles / frequency_hz)
    }
}

impl Bytes {
    /// Builds a byte count from a number of 64-byte cache lines.
    pub fn from_lines(lines: u64) -> Self {
        Bytes::new(lines as f64 * 64.0)
    }

    /// Number of 64-byte main-memory lines this volume touches, rounded up.
    pub fn lines(self) -> u64 {
        (self.0 / 64.0).ceil() as u64
    }
}

// Cross-unit arithmetic that has physical meaning.

impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.watts() * rhs.seconds())
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.joules() / rhs.seconds())
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.joules() / rhs.watts())
    }
}

/// Energy-delay product, the energy-efficiency metric of the paper's §VI-G.
///
/// # Examples
///
/// ```
/// use pim_common::units::{edp, Joules, Seconds};
/// let e = edp(Joules::new(2.0), Seconds::new(3.0));
/// assert_eq!(e, 6.0);
/// ```
pub fn edp(energy: Joules, time: Seconds) -> f64 {
    energy.joules() * time.seconds()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn watts_times_seconds_is_joules() {
        let e = Watts::new(10.0) * Seconds::new(3.0);
        assert_eq!(e, Joules::new(30.0));
    }

    #[test]
    fn joules_over_seconds_is_watts() {
        let p = Joules::new(30.0) / Seconds::new(3.0);
        assert_eq!(p, Watts::new(10.0));
    }

    #[test]
    fn joules_over_watts_is_seconds() {
        let t = Joules::new(30.0) / Watts::new(10.0);
        assert_eq!(t, Seconds::new(3.0));
    }

    #[test]
    fn bytes_line_roundtrip() {
        assert_eq!(Bytes::from_lines(4).bytes(), 256.0);
        assert_eq!(Bytes::new(100.0).lines(), 2);
        assert_eq!(Bytes::new(128.0).lines(), 2);
        assert_eq!(Bytes::ZERO.lines(), 0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Seconds = (1..=4).map(|i| Seconds::new(f64::from(i))).sum();
        assert_eq!(total.seconds(), 10.0);
    }

    #[test]
    fn display_includes_unit() {
        assert!(Watts::new(1.0).to_string().ends_with('W'));
        assert!(OpCount::new(5.0).to_string().ends_with("ops"));
    }

    #[test]
    fn validity_rejects_nan_and_negative() {
        assert!(Seconds::new(1.0).is_valid());
        assert!(!Seconds::new(-1.0).is_valid());
        assert!(!Seconds::new(f64::NAN).is_valid());
    }

    proptest! {
        #[test]
        fn add_commutes(a in 0.0f64..1e12, b in 0.0f64..1e12) {
            prop_assert_eq!(Joules::new(a) + Joules::new(b), Joules::new(b) + Joules::new(a));
        }

        #[test]
        fn max_ge_both(a in 0.0f64..1e12, b in 0.0f64..1e12) {
            let m = Seconds::new(a).max(Seconds::new(b));
            prop_assert!(m >= Seconds::new(a) && m >= Seconds::new(b));
        }

        #[test]
        fn cycles_inverse_of_frequency(cycles in 1.0f64..1e12, freq in 1.0f64..1e10) {
            let t = Seconds::from_cycles(cycles, freq);
            prop_assert!((t.seconds() * freq - cycles).abs() / cycles < 1e-9);
        }
    }
}
