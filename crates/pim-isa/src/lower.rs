//! Lowering from KIR kernels to ISA programs.
//!
//! Each KIR [`Region`] lowers to a short counted-loop instruction sequence
//! whose interpreted tallies reproduce the region's operation counts
//! *exactly*: multiply/add element counts are carried as `u64` (lowering
//! rejects non-integral counts rather than round them), and loop splitting
//! uses integer base/remainder so `trips × base + rem` equals the total
//! bit-for-bit. Loops are capped at [`MAX_LOOP_TRIPS`] trips so even
//! billion-flop convolution kernels interpret in a few hundred retired
//! instructions.

use crate::interp::CALL_GRANULARITY_FLOPS;
use crate::isa::{Ctr, FixedEntry, Inst, Program, Reg};
use pim_common::{PimError, Result};
use pim_opencl::binary::{BinarySet, FixedKernel};
use pim_opencl::kir::{KernelSource, Region};
use pim_tensor::cost::CostProfile;

/// Smallest per-instruction tile worth wrapping in a loop.
pub const LOOP_MIN_TILE: u64 = 4096;

/// Trip-count cap: keeps every lowered region within a few hundred retired
/// instructions regardless of its flop count.
pub const MAX_LOOP_TRIPS: u64 = 64;

/// Largest f64 that still holds exact integers (2^53).
const EXACT_F64_MAX: f64 = 9_007_199_254_740_992.0;

const V_IN: Reg = Reg(0); // loaded input operand
const V_OP: Reg = Reg(1); // second operand
const V_FMA: Reg = Reg(2); // fma accumulator (also the stored result)
const V_MUL: Reg = Reg(3); // mul destination
const V_ADD: Reg = Reg(4); // add destination
const LOOP_CTR: Ctr = Ctr(0);

/// Converts an operation count that must be carried exactly.
fn exact_u64(value: f64, what: &str, kernel: &str) -> Result<u64> {
    if !(0.0..=EXACT_F64_MAX).contains(&value) || value.fract() != 0.0 {
        return Err(PimError::InvalidArgument {
            context: "isa-lower",
            message: format!("{kernel}: {what} count {value} is not an exact unsigned integer"),
        });
    }
    Ok(value as u64)
}

/// Converts a count where sub-operation precision is not load-bearing
/// (other-arithmetic and control regions may carry halved fractional
/// totals); rounding is deterministic, so lowering stays idempotent.
fn rounded_u64(value: f64) -> u64 {
    value.max(0.0).round().min(EXACT_F64_MAX) as u64
}

/// Emits one vector operation of `total` elements, split into a counted
/// loop when large: `SetCnt trips; body(base); DecJnz` plus an optional
/// remainder instruction, with `trips × base + rem == total` exactly.
fn emit_vec_loop(code: &mut Vec<Inst>, total: u64, make: impl Fn(u64) -> Inst) {
    if total == 0 {
        return;
    }
    if total <= 2 * LOOP_MIN_TILE {
        code.push(make(total));
        return;
    }
    let trips = (total / LOOP_MIN_TILE).clamp(2, MAX_LOOP_TRIPS);
    let base = total / trips;
    let rem = total % trips;
    code.push(Inst::SetCnt {
        ctr: LOOP_CTR,
        trips,
    });
    let target = code.len() as u32;
    code.push(make(base));
    code.push(Inst::DecJnz {
        ctr: LOOP_CTR,
        target,
    });
    if rem > 0 {
        code.push(make(rem));
    }
}

/// Lowers one multiply/add region: paired work becomes `fma` loops, the
/// unpaired surplus a trailing `mul` or `add` loop, so the interpreted
/// mul/add tallies equal (`muls`, `adds`) exactly.
fn emit_mul_add(code: &mut Vec<Inst>, muls: u64, adds: u64) {
    let paired = muls.min(adds);
    emit_vec_loop(code, paired, |elems| Inst::Fma {
        dst: V_FMA,
        a: V_IN,
        b: V_OP,
        elems,
    });
    emit_vec_loop(code, muls - paired, |elems| Inst::Mul {
        dst: V_MUL,
        a: V_IN,
        b: V_OP,
        elems,
    });
    emit_vec_loop(code, adds - paired, |elems| Inst::Add {
        dst: V_ADD,
        a: V_IN,
        b: V_OP,
        elems,
    });
}

/// Lowers a kernel body against a fixed-kernel table and the memory
/// traffic it must move.
fn lower_body(
    name: &str,
    body: &[Region],
    fixed: &[FixedKernel],
    bytes_read: u64,
    bytes_written: u64,
) -> Result<Program> {
    let mut fixed_kernels = Vec::with_capacity(fixed.len());
    for k in fixed {
        let muls = exact_u64(k.muls, "fixed-kernel mul", name)?;
        let adds = exact_u64(k.adds, "fixed-kernel add", name)?;
        let calls = (((muls + adds) as f64) / CALL_GRANULARITY_FLOPS).ceil() as u32;
        fixed_kernels.push(FixedEntry {
            muls,
            adds,
            calls: calls.max(1),
        });
    }

    let mut regions = Vec::new();
    let mut code = Vec::new();
    if bytes_read > 0 {
        let region = regions.len() as u8;
        regions.push(bytes_read);
        code.push(Inst::Ld {
            dst: V_IN,
            region,
            bytes: bytes_read,
        });
    }

    let mut any_call = false;
    for region in body {
        match *region {
            Region::MulAdd { muls, adds, .. } => {
                let muls = exact_u64(muls, "mul", name)?;
                let adds = exact_u64(adds, "add", name)?;
                emit_mul_add(&mut code, muls, adds);
            }
            Region::OtherArithmetic { flops } => {
                emit_vec_loop(&mut code, rounded_u64(flops), |elems| Inst::Other { elems });
            }
            Region::Control { ops } => {
                emit_vec_loop(&mut code, rounded_u64(ops), |ops| Inst::Ctrl { ops });
            }
            Region::CallFixed { kernel_index } => {
                if kernel_index >= fixed_kernels.len() {
                    return Err(PimError::KernelIndexOutOfBounds {
                        kernel: name.to_string(),
                        index: kernel_index,
                        available: fixed_kernels.len(),
                    });
                }
                code.push(Inst::CallFixed {
                    kernel: kernel_index as u16,
                });
                any_call = true;
            }
        }
    }
    if any_call {
        code.push(Inst::Sync);
    }
    if bytes_written > 0 {
        let region = regions.len() as u8;
        regions.push(bytes_written);
        code.push(Inst::St {
            src: V_FMA,
            region,
            bytes: bytes_written,
        });
    }
    code.push(Inst::Halt);

    Ok(Program {
        name: name.to_string(),
        regions,
        fixed_kernels,
        code,
    })
}

/// Rounds a cost profile's traffic to whole bytes for the `ld`/`st` pair.
fn traffic(cost: &CostProfile) -> (u64, u64) {
    (
        rounded_u64(cost.bytes_read.bytes()),
        rounded_u64(cost.bytes_written.bytes()),
    )
}

/// Lowers a self-contained kernel (no `CallFixed` sites — binary #1's
/// shape, or binary #4 for kernels with nothing to extract) into an ISA
/// program executing every region in-line.
///
/// # Errors
///
/// [`PimError::InvalidArgument`] when a multiply/add count is not an exact
/// unsigned integer; [`PimError::KernelIndexOutOfBounds`] when the body
/// contains a `CallFixed` site (there is no kernel table to resolve it).
pub fn lower_kernel(kernel: &KernelSource, cost: &CostProfile) -> Result<Program> {
    let (r, w) = traffic(cost);
    lower_body(&kernel.name, &kernel.body, &[], r, w)
}

/// Lowers binary #4 — the programmable-PIM kernel whose extracted
/// multiply/add regions became `call_fixed` sites against binary #3's
/// kernel table. The interpreted *offloaded* tallies reproduce
/// [`BinarySet::extracted_flops`] exactly.
///
/// # Errors
///
/// As [`lower_kernel`].
pub fn lower_binary(set: &BinarySet, cost: &CostProfile) -> Result<Program> {
    let (r, w) = traffic(cost);
    lower_body(&set.progr.name, &set.progr.body, &set.fixed_kernels, r, w)
}

/// Lowers binary #4 with explicit traffic (the recursive scheme moves only
/// the non-extracted share of the operation's bytes through the ARM core).
///
/// # Errors
///
/// As [`lower_kernel`].
pub fn lower_binary_with_traffic(
    set: &BinarySet,
    bytes_read: u64,
    bytes_written: u64,
) -> Result<Program> {
    lower_body(
        &set.progr.name,
        &set.progr.body,
        &set.fixed_kernels,
        bytes_read,
        bytes_written,
    )
}

/// Lowers the ARM-resident share of a recursive-kernel execution.
///
/// Binary #4's region *structure* (call-site ordering, `sync` placement)
/// is preserved, but its control and other-arithmetic totals are rescaled
/// to `rest` — the non-extracted share of the operation — because the
/// bookkeeping of the extracted loops executes on the fixed-function
/// units, not the ARM core (the same attribution the analytic recursive
/// split uses). Traffic likewise comes from `rest`. The `call_fixed`
/// entries keep binary #3's exact mul/add counts, so offloaded tallies
/// still reproduce the Fig. 4 extraction bit-for-bit.
///
/// # Errors
///
/// As [`lower_kernel`].
pub fn lower_recursive(set: &BinarySet, rest: &CostProfile) -> Result<Program> {
    let ctrl_total: f64 = set
        .progr
        .body
        .iter()
        .map(|r| match r {
            Region::Control { ops } => *ops,
            _ => 0.0,
        })
        .sum();
    let other_total: f64 = set
        .progr
        .body
        .iter()
        .map(|r| match r {
            Region::OtherArithmetic { flops } => *flops,
            _ => 0.0,
        })
        .sum();
    let ctrl_scale = if ctrl_total > 0.0 {
        rest.control_ops / ctrl_total
    } else {
        0.0
    };
    let other_scale = if other_total > 0.0 {
        rest.other_flops / other_total
    } else {
        0.0
    };
    let body: Vec<Region> = set
        .progr
        .body
        .iter()
        .map(|r| match *r {
            Region::Control { ops } => Region::Control {
                ops: ops * ctrl_scale,
            },
            Region::OtherArithmetic { flops } => Region::OtherArithmetic {
                flops: flops * other_scale,
            },
            ref other => other.clone(),
        })
        .collect();
    let (r, w) = traffic(rest);
    lower_body(&set.progr.name, &body, &set.fixed_kernels, r, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Machine;
    use crate::validate::validate;
    use pim_common::units::Bytes;
    use pim_hw::arm::ProgrammablePim;
    use pim_mem::stack::StackConfig;
    use pim_tensor::cost::OffloadClass;

    fn machine() -> Machine {
        Machine::for_arm(&ProgrammablePim::cortex_a9(&StackConfig::hmc2(), 4))
    }

    fn conv_cost() -> CostProfile {
        CostProfile::compute(
            1_000_003.0,
            999_983.0,
            40_000.0,
            Bytes::new(1.5e6),
            Bytes::new(0.5e6),
            OffloadClass::PartiallyMulAdd { ma_fraction: 0.98 },
            241,
        )
    }

    #[test]
    fn lowered_kernel_reproduces_mul_add_counts_exactly() {
        let cost = conv_cost();
        let kernel = KernelSource::from_cost("Conv2D", &cost);
        let program = lower_kernel(&kernel, &cost).unwrap();
        let s = machine().run(&program).unwrap();
        assert_eq!(s.executed_muls, 1_000_003);
        assert_eq!(s.executed_adds, 999_983);
        assert_eq!(s.offloaded_muls, 0);
        assert_eq!(s.traffic_bytes(), 2_000_000);
    }

    #[test]
    fn lowered_binary_offloads_exactly_the_extracted_flops() {
        let cost = conv_cost();
        let set = BinarySet::generate(KernelSource::from_cost("Conv2D", &cost)).unwrap();
        let program = lower_binary(&set, &cost).unwrap();
        let s = machine().run(&program).unwrap();
        let extracted = set.extracted_flops();
        assert_eq!((s.offloaded_muls + s.offloaded_adds) as f64, extracted);
        assert_eq!(s.executed_muls, 0);
        assert_eq!(s.executed_adds, 0);
        assert!(s.calls >= 1);
        assert!(s.syncs >= 1);
    }

    #[test]
    fn loop_split_is_exact_for_awkward_totals() {
        let mut code = Vec::new();
        emit_vec_loop(&mut code, 1_000_003, |elems| Inst::Other { elems });
        code.push(Inst::Halt);
        let program = Program {
            name: "split".to_string(),
            regions: Vec::new(),
            fixed_kernels: Vec::new(),
            code,
        };
        let s = machine().run(&program).unwrap();
        assert_eq!(s.other_elems, 1_000_003);
    }

    #[test]
    fn small_totals_lower_to_a_single_instruction() {
        let mut code = Vec::new();
        emit_vec_loop(&mut code, 2 * LOOP_MIN_TILE, |elems| Inst::Other { elems });
        assert_eq!(code.len(), 1);
    }

    #[test]
    fn every_lowered_program_passes_the_validator() {
        for class in [
            OffloadClass::FullyMulAdd,
            OffloadClass::PartiallyMulAdd { ma_fraction: 0.9 },
            OffloadClass::NonMulAdd,
        ] {
            let cost =
                CostProfile::compute(5e4, 5e4, 1e3, Bytes::new(8e4), Bytes::new(4e4), class, 17);
            let kernel = KernelSource::from_cost("k", &cost);
            let program = lower_kernel(&kernel, &cost).unwrap();
            validate(&program).unwrap();
            let set = BinarySet::generate(kernel).unwrap();
            let binary = lower_binary(&set, &cost).unwrap();
            validate(&binary).unwrap();
        }
    }

    #[test]
    fn lowering_is_idempotent_at_the_byte_level() {
        let cost = conv_cost();
        let kernel = KernelSource::from_cost("Conv2D", &cost);
        let a = lower_kernel(&kernel, &cost).unwrap().encode();
        let b = lower_kernel(&kernel, &cost).unwrap().encode();
        assert_eq!(a, b);
    }

    #[test]
    fn non_integral_mul_counts_are_rejected() {
        let kernel = KernelSource {
            name: "bad".to_string(),
            body: vec![Region::MulAdd {
                muls: 10.5,
                adds: 4.0,
                parallelism: 1,
            }],
        };
        let err = lower_kernel(&kernel, &CostProfile::empty()).unwrap_err();
        assert!(matches!(err, PimError::InvalidArgument { .. }));
    }

    #[test]
    fn dangling_call_sites_are_rejected() {
        let kernel = KernelSource {
            name: "dangling".to_string(),
            body: vec![Region::CallFixed { kernel_index: 0 }],
        };
        let err = lower_kernel(&kernel, &CostProfile::empty()).unwrap_err();
        assert!(matches!(err, PimError::KernelIndexOutOfBounds { .. }));
    }
}
