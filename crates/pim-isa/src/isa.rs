//! The instruction set and program container.
//!
//! The ISA is a small register machine on the programmable ARM PIM:
//! eight value registers (`v0..v7`) holding vector tiles, four loop
//! counters (`c0..c3`), and thirteen opcodes covering loads/stores over
//! the program's data regions, vector multiply/add/fused-multiply-add,
//! non-multiply/add arithmetic bursts, control bursts, loop counters,
//! fixed-function kernel calls, synchronization, and halt. Every
//! instruction carries its element/byte count as an immediate — the ISA
//! is macro-vector, so one `Fma` retires a whole tile and the interpreter
//! charges issue cycles against the machine's lane width.
//!
//! Instructions encode to a fixed 16-byte little-endian word
//! ([`Inst::encode`]); [`Program::encode`] serializes the whole program
//! (name, region table, fixed-kernel table, code) so re-lowering
//! idempotence and golden snapshots can byte-diff programs.

use serde::Serialize;
use std::fmt;

/// Number of addressable value registers.
pub const VALUE_REGS: u8 = 8;

/// Number of addressable loop-counter registers.
pub const COUNTER_REGS: u8 = 4;

/// A value register `v0..v7`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Reg(pub u8);

/// A loop-counter register `c0..c3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Ctr(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Ctr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Inst {
    /// No operation (one issue cycle).
    Nop,
    /// Load `bytes` from data region `region` into `dst`.
    Ld {
        /// Destination register.
        dst: Reg,
        /// Index into [`Program::regions`].
        region: u8,
        /// Bytes moved through the memory path.
        bytes: u64,
    },
    /// Store `bytes` from `src` to data region `region`.
    St {
        /// Source register.
        src: Reg,
        /// Index into [`Program::regions`].
        region: u8,
        /// Bytes moved through the memory path.
        bytes: u64,
    },
    /// Vector multiply: `elems` multiplications.
    Mul {
        /// Destination register.
        dst: Reg,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
        /// Multiplications retired.
        elems: u64,
    },
    /// Vector add: `elems` additions.
    Add {
        /// Destination register.
        dst: Reg,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
        /// Additions retired.
        elems: u64,
    },
    /// Fused multiply-add: `elems` multiplications plus `elems` additions.
    Fma {
        /// Destination/accumulator register.
        dst: Reg,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
        /// Fused ops retired (each is one mul and one add).
        elems: u64,
    },
    /// Non-multiply/add arithmetic burst (compares, transcendentals,
    /// divisions): `elems` operations.
    Other {
        /// Operations retired.
        elems: u64,
    },
    /// Control/bookkeeping burst: `ops` instructions.
    Ctrl {
        /// Bookkeeping instructions retired.
        ops: u64,
    },
    /// Set loop counter `ctr` to `trips`.
    SetCnt {
        /// The counter.
        ctr: Ctr,
        /// Trip count.
        trips: u64,
    },
    /// Decrement `ctr` (saturating at zero) and jump to `target` when the
    /// result is nonzero. `target` must be a backward branch.
    DecJnz {
        /// The counter.
        ctr: Ctr,
        /// Branch target (program counter of the loop body's first
        /// instruction).
        target: u32,
    },
    /// Dispatch extracted fixed-function kernel `kernel` (an index into
    /// [`Program::fixed_kernels`]). The kernel's whole multiply/add tally
    /// is offloaded; issue cost is its `calls` count times the machine's
    /// per-call cycles.
    CallFixed {
        /// Index into [`Program::fixed_kernels`].
        kernel: u16,
    },
    /// Wait for all outstanding fixed-function kernel completions.
    Sync,
    /// Stop execution. Must be the final instruction.
    Halt,
}

impl Inst {
    /// The opcode mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Inst::Nop => "nop",
            Inst::Ld { .. } => "ld",
            Inst::St { .. } => "st",
            Inst::Mul { .. } => "mul",
            Inst::Add { .. } => "add",
            Inst::Fma { .. } => "fma",
            Inst::Other { .. } => "other",
            Inst::Ctrl { .. } => "ctrl",
            Inst::SetCnt { .. } => "setcnt",
            Inst::DecJnz { .. } => "decjnz",
            Inst::CallFixed { .. } => "callfixed",
            Inst::Sync => "sync",
            Inst::Halt => "halt",
        }
    }

    /// Encodes the instruction as a fixed 16-byte word:
    /// `[opcode, f1, f2, f3, u32 target, u64 immediate]`, little endian.
    pub fn encode(self) -> [u8; 16] {
        let (op, f1, f2, f3, target, imm): (u8, u8, u8, u8, u32, u64) = match self {
            Inst::Nop => (0, 0, 0, 0, 0, 0),
            Inst::Ld { dst, region, bytes } => (1, dst.0, region, 0, 0, bytes),
            Inst::St { src, region, bytes } => (2, src.0, region, 0, 0, bytes),
            Inst::Mul { dst, a, b, elems } => (3, dst.0, a.0, b.0, 0, elems),
            Inst::Add { dst, a, b, elems } => (4, dst.0, a.0, b.0, 0, elems),
            Inst::Fma { dst, a, b, elems } => (5, dst.0, a.0, b.0, 0, elems),
            Inst::Other { elems } => (6, 0, 0, 0, 0, elems),
            Inst::Ctrl { ops } => (7, 0, 0, 0, 0, ops),
            Inst::SetCnt { ctr, trips } => (8, ctr.0, 0, 0, 0, trips),
            Inst::DecJnz { ctr, target } => (9, ctr.0, 0, 0, target, 0),
            Inst::CallFixed { kernel } => (10, 0, 0, 0, u32::from(kernel), 0),
            Inst::Sync => (11, 0, 0, 0, 0, 0),
            Inst::Halt => (12, 0, 0, 0, 0, 0),
        };
        let mut w = [0u8; 16];
        w[0] = op;
        w[1] = f1;
        w[2] = f2;
        w[3] = f3;
        w[4..8].copy_from_slice(&target.to_le_bytes());
        w[8..16].copy_from_slice(&imm.to_le_bytes());
        w
    }

    /// Decodes one 16-byte word; `None` for unknown opcodes.
    pub fn decode(w: &[u8; 16]) -> Option<Inst> {
        let f1 = w[1];
        let f2 = w[2];
        let f3 = w[3];
        let target = u32::from_le_bytes(w[4..8].try_into().expect("4 bytes"));
        let imm = u64::from_le_bytes(w[8..16].try_into().expect("8 bytes"));
        Some(match w[0] {
            0 => Inst::Nop,
            1 => Inst::Ld {
                dst: Reg(f1),
                region: f2,
                bytes: imm,
            },
            2 => Inst::St {
                src: Reg(f1),
                region: f2,
                bytes: imm,
            },
            3 => Inst::Mul {
                dst: Reg(f1),
                a: Reg(f2),
                b: Reg(f3),
                elems: imm,
            },
            4 => Inst::Add {
                dst: Reg(f1),
                a: Reg(f2),
                b: Reg(f3),
                elems: imm,
            },
            5 => Inst::Fma {
                dst: Reg(f1),
                a: Reg(f2),
                b: Reg(f3),
                elems: imm,
            },
            6 => Inst::Other { elems: imm },
            7 => Inst::Ctrl { ops: imm },
            8 => Inst::SetCnt {
                ctr: Ctr(f1),
                trips: imm,
            },
            9 => Inst::DecJnz {
                ctr: Ctr(f1),
                target,
            },
            10 => Inst::CallFixed {
                kernel: u16::try_from(target).ok()?,
            },
            11 => Inst::Sync,
            12 => Inst::Halt,
            _ => return None,
        })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Nop => write!(f, "nop"),
            Inst::Ld { dst, region, bytes } => write!(f, "ld    {dst}, r{region}, {bytes}B"),
            Inst::St { src, region, bytes } => write!(f, "st    {src}, r{region}, {bytes}B"),
            Inst::Mul { dst, a, b, elems } => write!(f, "mul   {dst}, {a}, {b}, {elems}"),
            Inst::Add { dst, a, b, elems } => write!(f, "add   {dst}, {a}, {b}, {elems}"),
            Inst::Fma { dst, a, b, elems } => write!(f, "fma   {dst}, {a}, {b}, {elems}"),
            Inst::Other { elems } => write!(f, "other {elems}"),
            Inst::Ctrl { ops } => write!(f, "ctrl  {ops}"),
            Inst::SetCnt { ctr, trips } => write!(f, "setcnt {ctr}, {trips}"),
            Inst::DecJnz { ctr, target } => write!(f, "decjnz {ctr}, @{target}"),
            Inst::CallFixed { kernel } => write!(f, "callfixed k{kernel}"),
            Inst::Sync => write!(f, "sync"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

/// One entry of a program's fixed-function kernel table (the lowered form
/// of binary #3's extracted kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FixedEntry {
    /// Exact multiplications the kernel retires when dispatched.
    pub muls: u64,
    /// Exact additions the kernel retires when dispatched.
    pub adds: u64,
    /// Call messages one dispatch issues (the §III-B kernel-call
    /// granularity).
    pub calls: u32,
}

/// A complete lowered program: data regions, fixed-kernel table, code.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Program {
    /// Program name (the kernel's TensorFlow op name).
    pub name: String,
    /// Byte sizes of the addressable data regions; `Ld`/`St` traffic is
    /// bounded by its region's size.
    pub regions: Vec<u64>,
    /// Fixed-function kernels `CallFixed` can dispatch.
    pub fixed_kernels: Vec<FixedEntry>,
    /// The instruction stream.
    pub code: Vec<Inst>,
}

/// Magic bytes prefixing every encoded program.
pub const MAGIC: &[u8; 8] = b"PIMISA1\0";

impl Program {
    /// Serializes the program: magic, name, region table, fixed-kernel
    /// table, code words. The encoding is a pure function of the program,
    /// so byte equality is program equality.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 16 * self.code.len());
        out.extend_from_slice(MAGIC);
        let name = self.name.as_bytes();
        out.extend_from_slice(
            &(u16::try_from(name.len().min(u16::MAX as usize)).unwrap_or(0)).to_le_bytes(),
        );
        out.extend_from_slice(&name[..name.len().min(u16::MAX as usize)]);
        out.extend_from_slice(&(self.regions.len() as u16).to_le_bytes());
        for r in &self.regions {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&(self.fixed_kernels.len() as u16).to_le_bytes());
        for k in &self.fixed_kernels {
            out.extend_from_slice(&k.muls.to_le_bytes());
            out.extend_from_slice(&k.adds.to_le_bytes());
            out.extend_from_slice(&k.calls.to_le_bytes());
        }
        out.extend_from_slice(&(self.code.len() as u32).to_le_bytes());
        for inst in &self.code {
            out.extend_from_slice(&inst.encode());
        }
        out
    }

    /// Deserializes a program previously produced by [`Program::encode`].
    /// `None` on any truncation, bad magic, or unknown opcode.
    pub fn decode(bytes: &[u8]) -> Option<Program> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = bytes.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        if take(&mut pos, MAGIC.len())? != MAGIC {
            return None;
        }
        let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().ok()?) as usize;
        let name = String::from_utf8(take(&mut pos, name_len)?.to_vec()).ok()?;
        let region_count = u16::from_le_bytes(take(&mut pos, 2)?.try_into().ok()?) as usize;
        let mut regions = Vec::with_capacity(region_count);
        for _ in 0..region_count {
            regions.push(u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?));
        }
        let kernel_count = u16::from_le_bytes(take(&mut pos, 2)?.try_into().ok()?) as usize;
        let mut fixed_kernels = Vec::with_capacity(kernel_count);
        for _ in 0..kernel_count {
            let muls = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
            let adds = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
            let calls = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            fixed_kernels.push(FixedEntry { muls, adds, calls });
        }
        let code_count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let mut code = Vec::with_capacity(code_count);
        for _ in 0..code_count {
            let w: [u8; 16] = take(&mut pos, 16)?.try_into().ok()?;
            code.push(Inst::decode(&w)?);
        }
        if pos != bytes.len() {
            return None;
        }
        Some(Program {
            name,
            regions,
            fixed_kernels,
            code,
        })
    }

    /// Renders the program as deterministic assembly text: header, region
    /// and kernel tables, then one line per instruction with its program
    /// counter.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, ".program {}", self.name);
        for (i, r) in self.regions.iter().enumerate() {
            let _ = writeln!(out, ".region r{i} {r}B");
        }
        for (i, k) in self.fixed_kernels.iter().enumerate() {
            let _ = writeln!(
                out,
                ".fixed  k{i} muls={} adds={} calls={}",
                k.muls, k.adds, k.calls
            );
        }
        for (pc, inst) in self.code.iter().enumerate() {
            let _ = writeln!(out, "{pc:>5}: {inst}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        Program {
            name: "Conv2D".to_string(),
            regions: vec![1024, 256],
            fixed_kernels: vec![FixedEntry {
                muls: 1000,
                adds: 999,
                calls: 1,
            }],
            code: vec![
                Inst::Ld {
                    dst: Reg(0),
                    region: 0,
                    bytes: 1024,
                },
                Inst::SetCnt {
                    ctr: Ctr(0),
                    trips: 4,
                },
                Inst::Fma {
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                    elems: 250,
                },
                Inst::DecJnz {
                    ctr: Ctr(0),
                    target: 2,
                },
                Inst::CallFixed { kernel: 0 },
                Inst::Sync,
                Inst::St {
                    src: Reg(2),
                    region: 1,
                    bytes: 256,
                },
                Inst::Halt,
            ],
        }
    }

    #[test]
    fn every_instruction_round_trips_through_encoding() {
        for inst in sample().code {
            assert_eq!(Inst::decode(&inst.encode()), Some(inst), "{inst}");
        }
    }

    #[test]
    fn program_round_trips_through_encoding() {
        let p = sample();
        assert_eq!(Program::decode(&p.encode()), Some(p));
    }

    #[test]
    fn truncated_or_corrupt_bytes_decode_to_none() {
        let bytes = sample().encode();
        assert!(Program::decode(&bytes[..bytes.len() - 1]).is_none());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(Program::decode(&bad_magic).is_none());
        let mut bad_opcode = bytes.clone();
        let code_start = bytes.len() - 8 * 16;
        bad_opcode[code_start] = 200;
        assert!(Program::decode(&bad_opcode).is_none());
    }

    #[test]
    fn disassembly_names_every_part() {
        let text = sample().disassemble();
        assert!(text.contains(".program Conv2D"));
        assert!(text.contains(".region r0 1024B"));
        assert!(text.contains(".fixed  k0 muls=1000 adds=999 calls=1"));
        assert!(text.contains("fma"));
        assert!(text.contains("halt"));
    }
}
