//! Structural validation and static execution bounds.
//!
//! A program is *valid* when every operand resolves (registers, counters,
//! regions, fixed kernels), control flow is a sequence of non-nested
//! counted loops (each `DecJnz` branches backward to a body whose
//! immediately preceding instruction is the `SetCnt` of the same
//! counter), fixed-kernel calls are drained by a `Sync` before `Halt`,
//! and the single `Halt` terminates the code. Validity is decidable
//! without running the program, and it implies termination: the validator
//! returns the exact per-instruction execution multiplicities, whose sum
//! is a hard retirement bound the interpreter enforces as fuel.

use crate::isa::{Inst, Program, COUNTER_REGS, VALUE_REGS};
use serde::Serialize;
use std::fmt;

/// One structural violation, anchored to the offending instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Violation {
    /// Program counter of the offending instruction; `None` for
    /// program-level violations (empty code, missing halt).
    pub pc: Option<usize>,
    /// Mnemonic of the offending instruction, when `pc` is set.
    pub mnemonic: &'static str,
    /// What is wrong.
    pub message: String,
}

impl Violation {
    fn at(pc: usize, inst: Inst, message: impl Into<String>) -> Self {
        Violation {
            pc: Some(pc),
            mnemonic: inst.mnemonic(),
            message: message.into(),
        }
    }

    fn program(message: impl Into<String>) -> Self {
        Violation {
            pc: None,
            mnemonic: "program",
            message: message.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pc {
            Some(pc) => write!(f, "inst {pc} ({}): {}", self.mnemonic, self.message),
            None => write!(f, "program: {}", self.message),
        }
    }
}

/// Static execution facts a valid program admits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticInfo {
    /// Exact times each instruction executes (loop bodies carry their
    /// trip count; straight-line code carries 1).
    pub multiplicity: Vec<u64>,
    /// Total instructions a run retires — the interpreter's fuel bound.
    pub retired_bound: u64,
}

/// Validates `program`; on success returns its [`StaticInfo`].
///
/// # Errors
///
/// Returns every [`Violation`] found; the program must not be executed
/// when any are present.
pub fn validate(program: &Program) -> Result<StaticInfo, Vec<Violation>> {
    let mut violations = Vec::new();
    let code = &program.code;
    if code.is_empty() {
        return Err(vec![Violation::program("empty code; a Halt is required")]);
    }
    if !matches!(code.last(), Some(Inst::Halt)) {
        violations.push(Violation::program(
            "missing terminal Halt: the last instruction must be halt",
        ));
    }
    let reg_ok = |r: crate::isa::Reg| r.0 < VALUE_REGS;
    let ctr_ok = |c: crate::isa::Ctr| c.0 < COUNTER_REGS;
    let mut last_call: Option<usize> = None;
    let mut last_sync: Option<usize> = None;
    // End pc (inclusive) of the most recent loop; bodies may not overlap.
    let mut last_loop_end: Option<usize> = None;
    let mut multiplicity = vec![1u64; code.len()];
    for (pc, &inst) in code.iter().enumerate() {
        if matches!(inst, Inst::Halt) && pc + 1 != code.len() {
            violations.push(Violation::at(pc, inst, "halt before the end of the code"));
        }
        match inst {
            Inst::Nop | Inst::Sync | Inst::Halt => {}
            Inst::Ld { dst, region, bytes }
            | Inst::St {
                src: dst,
                region,
                bytes,
            } => {
                if !reg_ok(dst) {
                    violations.push(Violation::at(
                        pc,
                        inst,
                        format!("register {dst} out of range"),
                    ));
                }
                match program.regions.get(region as usize) {
                    None => violations.push(Violation::at(
                        pc,
                        inst,
                        format!(
                            "region r{region} out of range; only {} region(s) declared",
                            program.regions.len()
                        ),
                    )),
                    Some(&size) if bytes > size => violations.push(Violation::at(
                        pc,
                        inst,
                        format!("moves {bytes}B through region r{region} of {size}B"),
                    )),
                    Some(_) => {}
                }
                if bytes == 0 {
                    violations.push(Violation::at(pc, inst, "degenerate zero-byte transfer"));
                }
            }
            Inst::Mul { dst, a, b, elems }
            | Inst::Add { dst, a, b, elems }
            | Inst::Fma { dst, a, b, elems } => {
                for r in [dst, a, b] {
                    if !reg_ok(r) {
                        violations.push(Violation::at(
                            pc,
                            inst,
                            format!("register {r} out of range"),
                        ));
                    }
                }
                if elems == 0 {
                    violations.push(Violation::at(pc, inst, "degenerate zero-element vector op"));
                }
            }
            Inst::Other { elems } => {
                if elems == 0 {
                    violations.push(Violation::at(pc, inst, "degenerate zero-element burst"));
                }
            }
            Inst::Ctrl { ops } => {
                if ops == 0 {
                    violations.push(Violation::at(pc, inst, "degenerate zero-op burst"));
                }
            }
            Inst::SetCnt { ctr, trips } => {
                if !ctr_ok(ctr) {
                    violations.push(Violation::at(
                        pc,
                        inst,
                        format!("counter {ctr} out of range"),
                    ));
                }
                if trips == 0 {
                    violations.push(Violation::at(pc, inst, "zero-trip loop counter"));
                }
            }
            Inst::DecJnz { ctr, target } => {
                if !ctr_ok(ctr) {
                    violations.push(Violation::at(
                        pc,
                        inst,
                        format!("counter {ctr} out of range"),
                    ));
                }
                let target = target as usize;
                if target >= pc {
                    violations.push(Violation::at(
                        pc,
                        inst,
                        format!("forward branch to @{target}; loops must branch backward"),
                    ));
                    continue;
                }
                if let Some(end) = last_loop_end {
                    if target <= end {
                        violations.push(Violation::at(
                            pc,
                            inst,
                            format!("loop body @{target}..{pc} overlaps an earlier loop"),
                        ));
                        continue;
                    }
                }
                // The counted-loop discipline: the instruction immediately
                // before the body is the SetCnt of this counter, so the
                // trip count is static.
                let trips = match (target.checked_sub(1)).map(|i| code[i]) {
                    Some(Inst::SetCnt { ctr: set, trips }) if set == ctr => trips,
                    _ => {
                        violations.push(Violation::at(
                            pc,
                            inst,
                            format!(
                                "loop body @{target} is not immediately preceded by \
                                 setcnt {ctr}; trip count is not static"
                            ),
                        ));
                        continue;
                    }
                };
                // Counters are single-use per loop: nothing inside the
                // body may rewrite the counter.
                for (body_pc, &body_inst) in code.iter().enumerate().take(pc).skip(target) {
                    if let Inst::SetCnt { ctr: set, .. } = body_inst {
                        if set == ctr {
                            violations.push(Violation::at(
                                body_pc,
                                body_inst,
                                format!("rewrites live loop counter {ctr} inside its body"),
                            ));
                        }
                    }
                }
                for m in multiplicity.iter_mut().take(pc + 1).skip(target) {
                    *m = trips;
                }
                last_loop_end = Some(pc);
            }
            Inst::CallFixed { kernel } => {
                if (kernel as usize) >= program.fixed_kernels.len() {
                    violations.push(Violation::at(
                        pc,
                        inst,
                        format!(
                            "calls fixed kernel k{kernel}, but only {} exist",
                            program.fixed_kernels.len()
                        ),
                    ));
                }
                if last_loop_end.is_some_and(|end| pc <= end) {
                    // Unreachable with non-overlapping backward loops
                    // detected above, but kept for defense in depth.
                    violations.push(Violation::at(
                        pc,
                        inst,
                        "fixed-kernel call inside a loop body",
                    ));
                }
                last_call = Some(pc);
            }
        }
        if matches!(inst, Inst::Sync) {
            last_sync = Some(pc);
        }
    }
    // Calls must be drained before the program halts.
    if let Some(call_pc) = last_call {
        if last_sync.is_none_or(|sync_pc| sync_pc <= call_pc) {
            violations.push(Violation::at(
                call_pc,
                code[call_pc],
                "fixed-kernel call is never drained: no sync between it and halt",
            ));
        }
    }
    // A loop body may not contain CallFixed/Sync/Halt/SetCnt-of-its-own
    // counter; the overlap and rewrite rules above cover SetCnt, and Halt
    // placement is covered by the terminal rule. CallFixed-in-body is
    // rejected here so call counts stay static.
    if violations.is_empty() {
        let retired_bound = multiplicity.iter().sum();
        Ok(StaticInfo {
            multiplicity,
            retired_bound,
        })
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Ctr, FixedEntry, Reg};

    fn valid() -> Program {
        Program {
            name: "k".to_string(),
            regions: vec![512, 128],
            fixed_kernels: vec![FixedEntry {
                muls: 10,
                adds: 10,
                calls: 1,
            }],
            code: vec![
                Inst::Ld {
                    dst: Reg(0),
                    region: 0,
                    bytes: 512,
                },
                Inst::SetCnt {
                    ctr: Ctr(0),
                    trips: 3,
                },
                Inst::Fma {
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                    elems: 64,
                },
                Inst::DecJnz {
                    ctr: Ctr(0),
                    target: 2,
                },
                Inst::CallFixed { kernel: 0 },
                Inst::Sync,
                Inst::St {
                    src: Reg(2),
                    region: 1,
                    bytes: 128,
                },
                Inst::Halt,
            ],
        }
    }

    fn violations(p: &Program) -> Vec<Violation> {
        validate(p).expect_err("expected violations")
    }

    #[test]
    fn valid_program_reports_exact_multiplicities() {
        let info = validate(&valid()).expect("valid");
        // SetCnt runs once; the body [Fma, DecJnz] retires per trip.
        assert_eq!(info.multiplicity, vec![1, 1, 3, 3, 1, 1, 1, 1]);
        assert_eq!(info.retired_bound, 12);
    }

    #[test]
    fn out_of_range_region_is_flagged_at_the_instruction() {
        let mut p = valid();
        p.code[0] = Inst::Ld {
            dst: Reg(0),
            region: 9,
            bytes: 512,
        };
        let v = violations(&p);
        assert!(v.iter().any(|v| v.pc == Some(0)
            && v.mnemonic == "ld"
            && v.message.contains("region r9 out of range")));
    }

    #[test]
    fn missing_fixed_kernel_is_flagged() {
        let mut p = valid();
        p.code[4] = Inst::CallFixed { kernel: 7 };
        let v = violations(&p);
        assert!(v
            .iter()
            .any(|v| v.pc == Some(4) && v.mnemonic == "callfixed" && v.message.contains("k7")));
    }

    #[test]
    fn missing_halt_is_a_program_violation() {
        let mut p = valid();
        p.code.pop();
        let v = violations(&p);
        assert!(v
            .iter()
            .any(|v| v.pc.is_none() && v.message.contains("Halt")));
    }

    #[test]
    fn undrained_call_is_flagged() {
        let mut p = valid();
        p.code.remove(5); // drop the sync
        let v = violations(&p);
        assert!(v.iter().any(|v| v.message.contains("never drained")));
    }

    #[test]
    fn forward_branch_is_rejected() {
        let mut p = valid();
        p.code[3] = Inst::DecJnz {
            ctr: Ctr(0),
            target: 5,
        };
        let v = violations(&p);
        assert!(v.iter().any(|v| v.message.contains("forward branch")));
    }

    #[test]
    fn loop_without_adjacent_setcnt_is_rejected() {
        let mut p = valid();
        p.code[3] = Inst::DecJnz {
            ctr: Ctr(0),
            target: 1, // body starts at the SetCnt itself
        };
        let v = violations(&p);
        assert!(v
            .iter()
            .any(|v| v.message.contains("not immediately preceded")));
    }

    #[test]
    fn overlapping_loops_are_rejected() {
        let mut p = valid();
        // Second loop branching back into the first body.
        p.code[4] = Inst::DecJnz {
            ctr: Ctr(0),
            target: 2,
        };
        let v = violations(&p);
        assert!(v.iter().any(|v| v.message.contains("overlaps")));
    }

    #[test]
    fn oversized_transfer_is_rejected() {
        let mut p = valid();
        p.code[0] = Inst::Ld {
            dst: Reg(0),
            region: 0,
            bytes: 513,
        };
        let v = violations(&p);
        assert!(v.iter().any(|v| v.message.contains("513B")));
    }
}
