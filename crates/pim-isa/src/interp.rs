//! The deterministic interpreter and the machine timing model.
//!
//! [`Machine`] captures the programmable PIM's issue widths: how many
//! multiply/add, other-arithmetic, and control operations retire per
//! cycle, plus the per-call issue cost of dispatching a fixed-function
//! kernel. [`Machine::run`] validates a program, then executes it
//! instruction by instruction, accumulating exact `u64` multiply/add
//! tallies (executed in-line and offloaded through `CallFixed`),
//! memory-path traffic, and issue cycles — the executed ground truth the
//! analytic device formula is differentially tested against.

use crate::isa::{Inst, Program, COUNTER_REGS};
use crate::validate::{validate, StaticInfo, Violation};
use pim_hw::arm::ProgrammablePim;
use pim_hw::params::DeviceParams;
use serde::Serialize;
use std::fmt;

/// Default per-call issue cycles for `CallFixed` dispatch: the runtime's
/// 0.1 µs recursive-kernel call cost at the nominal 2 GHz ARM clock.
pub const DEFAULT_CALL_ISSUE_CYCLES: u64 = 200;

/// Kernel-call granularity: one call message per this many multiply/add
/// flops. Kept numerically identical to `pim_runtime::sync`'s constant
/// (a cross-crate test pins the equality).
pub const CALL_GRANULARITY_FLOPS: f64 = 6e6;

/// The issue-width model of one programmable-PIM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Machine {
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Multiply/add flops retired per cycle across all cores.
    pub ma_lanes: f64,
    /// Other-arithmetic ops retired per cycle.
    pub other_lanes: f64,
    /// Control/bookkeeping ops retired per cycle.
    pub ctrl_lanes: f64,
    /// Issue cycles per fixed-kernel call message.
    pub call_issue_cycles: u64,
}

impl Machine {
    /// Derives the machine from a programmable-PIM device. The ARM core
    /// runs 2 multiply/add flops per cycle per core, so the clock falls
    /// out of the device's throughput: `clock = ma_throughput / (2 ×
    /// cores)` — frequency-scaled stacks scale the clock with it.
    pub fn for_arm(pim: &ProgrammablePim) -> Self {
        Machine::from_params(
            pim.params(),
            pim.params().ma_throughput / (2.0 * pim.cores() as f64),
        )
    }

    /// Derives lane widths from device throughputs at a given clock.
    pub fn from_params(params: &DeviceParams, clock_hz: f64) -> Self {
        Machine {
            clock_hz,
            ma_lanes: params.ma_throughput / clock_hz,
            other_lanes: params.other_throughput / clock_hz,
            ctrl_lanes: params.control_throughput / clock_hz,
            call_issue_cycles: DEFAULT_CALL_ISSUE_CYCLES,
        }
    }

    /// Returns a copy with a different per-call issue cost (the runtime
    /// derives it from its `PIM_CALL` latency at the actual clock).
    #[must_use]
    pub fn with_call_issue_cycles(mut self, cycles: u64) -> Self {
        self.call_issue_cycles = cycles.max(1);
        self
    }

    /// Issue cycles one instruction charges. Vector work rounds up to
    /// whole cycles against the lane width; bookkeeping, branches, and
    /// memory issue take one cycle (traffic time is accounted against
    /// bandwidth separately, as in the analytic overlap model).
    pub fn inst_cycles(&self, inst: Inst, program: &Program) -> u64 {
        let lanes =
            |elems: u64, per_cycle: f64| -> u64 { (elems as f64 / per_cycle).ceil() as u64 };
        match inst {
            Inst::Nop
            | Inst::Ld { .. }
            | Inst::St { .. }
            | Inst::SetCnt { .. }
            | Inst::DecJnz { .. }
            | Inst::Sync
            | Inst::Halt => 1,
            Inst::Mul { elems, .. } | Inst::Add { elems, .. } => lanes(elems, self.ma_lanes),
            Inst::Fma { elems, .. } => lanes(2 * elems, self.ma_lanes),
            Inst::Other { elems } => lanes(elems, self.other_lanes),
            Inst::Ctrl { ops } => lanes(ops, self.ctrl_lanes),
            Inst::CallFixed { kernel } => {
                let calls = program
                    .fixed_kernels
                    .get(kernel as usize)
                    .map_or(1, |k| u64::from(k.calls.max(1)));
                calls * self.call_issue_cycles
            }
        }
    }

    /// The static issue-cycle bound implied by a validation's exact
    /// multiplicities — interpretation can never exceed it.
    pub fn cycle_bound(&self, program: &Program, info: &StaticInfo) -> u64 {
        program
            .code
            .iter()
            .zip(&info.multiplicity)
            .map(|(&inst, &m)| m * self.inst_cycles(inst, program))
            .sum()
    }

    /// Validates and interprets `program`.
    ///
    /// # Errors
    ///
    /// [`ExecError::Invalid`] when validation fails;
    /// [`ExecError::FuelExhausted`] when execution exceeds the static
    /// retirement bound (impossible for programs the validator accepts —
    /// the check is the interpreter's own termination guarantee);
    /// [`ExecError::RegionOverrun`] when cumulative `Ld`/`St` traffic
    /// through a region exceeds its declared size.
    pub fn run(&self, program: &Program) -> Result<ExecSummary, ExecError> {
        let info = validate(program).map_err(ExecError::Invalid)?;
        self.run_validated(program, &info)
    }

    /// Interprets a program already validated to `info`. Exposed so
    /// callers holding a [`StaticInfo`] avoid re-validation.
    ///
    /// # Errors
    ///
    /// As [`Machine::run`], minus [`ExecError::Invalid`].
    pub fn run_validated(
        &self,
        program: &Program,
        info: &StaticInfo,
    ) -> Result<ExecSummary, ExecError> {
        let mut s = ExecSummary::default();
        let mut counters = [0u64; COUNTER_REGS as usize];
        let mut region_traffic = vec![0u64; program.regions.len()];
        let mut pc = 0usize;
        while pc < program.code.len() {
            let inst = program.code[pc];
            s.retired += 1;
            if s.retired > info.retired_bound {
                return Err(ExecError::FuelExhausted {
                    bound: info.retired_bound,
                });
            }
            s.issue_cycles += self.inst_cycles(inst, program);
            let mut next = pc + 1;
            match inst {
                Inst::Nop | Inst::Ctrl { .. } => {}
                Inst::Ld { region, bytes, .. } => {
                    s.load_bytes += bytes;
                    let t = &mut region_traffic[region as usize];
                    *t += bytes;
                    if *t > program.regions[region as usize] {
                        return Err(ExecError::RegionOverrun {
                            pc,
                            region,
                            moved: *t,
                            size: program.regions[region as usize],
                        });
                    }
                }
                Inst::St { region, bytes, .. } => {
                    s.store_bytes += bytes;
                    let t = &mut region_traffic[region as usize];
                    *t += bytes;
                    if *t > program.regions[region as usize] {
                        return Err(ExecError::RegionOverrun {
                            pc,
                            region,
                            moved: *t,
                            size: program.regions[region as usize],
                        });
                    }
                }
                Inst::Mul { elems, .. } => s.executed_muls += elems,
                Inst::Add { elems, .. } => s.executed_adds += elems,
                Inst::Fma { elems, .. } => {
                    s.executed_muls += elems;
                    s.executed_adds += elems;
                }
                Inst::Other { elems } => s.other_elems += elems,
                Inst::SetCnt { ctr, trips } => counters[ctr.0 as usize] = trips,
                Inst::DecJnz { ctr, target } => {
                    let c = &mut counters[ctr.0 as usize];
                    *c = c.saturating_sub(1);
                    if *c > 0 {
                        next = target as usize;
                    }
                }
                Inst::CallFixed { kernel } => {
                    let k = program.fixed_kernels[kernel as usize];
                    s.offloaded_muls += k.muls;
                    s.offloaded_adds += k.adds;
                    s.calls += u64::from(k.calls);
                }
                Inst::Sync => s.syncs += 1,
                Inst::Halt => break,
            }
            if let Inst::Ctrl { ops } = inst {
                s.ctrl_ops += ops;
            }
            pc = next;
        }
        Ok(s)
    }
}

/// Why interpretation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The program failed structural validation.
    Invalid(Vec<Violation>),
    /// Execution exceeded the static retirement bound.
    FuelExhausted {
        /// The bound that was exceeded.
        bound: u64,
    },
    /// Cumulative traffic through a region exceeded its declared size.
    RegionOverrun {
        /// Program counter of the overrunning transfer.
        pc: usize,
        /// The region.
        region: u8,
        /// Cumulative bytes moved including this transfer.
        moved: u64,
        /// Declared region size.
        size: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Invalid(vs) => {
                write!(f, "{} validation violation(s)", vs.len())?;
                if let Some(first) = vs.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            ExecError::FuelExhausted { bound } => {
                write!(f, "execution exceeded the static retirement bound {bound}")
            }
            ExecError::RegionOverrun {
                pc,
                region,
                moved,
                size,
            } => write!(
                f,
                "inst {pc}: cumulative traffic {moved}B overruns region r{region} of {size}B"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Everything one interpretation accumulated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ExecSummary {
    /// Instructions retired.
    pub retired: u64,
    /// Issue cycles charged.
    pub issue_cycles: u64,
    /// Bytes loaded through the memory path.
    pub load_bytes: u64,
    /// Bytes stored through the memory path.
    pub store_bytes: u64,
    /// Multiplications executed in-line (`mul` + `fma`).
    pub executed_muls: u64,
    /// Additions executed in-line (`add` + `fma`).
    pub executed_adds: u64,
    /// Multiplications offloaded through `callfixed`.
    pub offloaded_muls: u64,
    /// Additions offloaded through `callfixed`.
    pub offloaded_adds: u64,
    /// Other-arithmetic operations retired.
    pub other_elems: u64,
    /// Control/bookkeeping operations retired.
    pub ctrl_ops: u64,
    /// Fixed-kernel call messages issued.
    pub calls: u64,
    /// Sync barriers executed.
    pub syncs: u64,
}

impl ExecSummary {
    /// Total memory-path traffic.
    pub fn traffic_bytes(&self) -> u64 {
        self.load_bytes + self.store_bytes
    }

    /// Total multiplications (executed + offloaded).
    pub fn total_muls(&self) -> u64 {
        self.executed_muls + self.offloaded_muls
    }

    /// Total additions (executed + offloaded).
    pub fn total_adds(&self) -> u64 {
        self.executed_adds + self.offloaded_adds
    }

    /// Total multiply/add tally (executed + offloaded).
    pub fn total_ma(&self) -> u64 {
        self.total_muls() + self.total_adds()
    }

    /// Renders the summary as deterministic text for golden snapshots.
    pub fn render(&self) -> String {
        format!(
            "retired={} cycles={} loadB={} storeB={} exec_mul={} exec_add={} \
             off_mul={} off_add={} other={} ctrl={} calls={} syncs={}",
            self.retired,
            self.issue_cycles,
            self.load_bytes,
            self.store_bytes,
            self.executed_muls,
            self.executed_adds,
            self.offloaded_muls,
            self.offloaded_adds,
            self.other_elems,
            self.ctrl_ops,
            self.calls,
            self.syncs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Ctr, FixedEntry, Reg};
    use pim_mem::stack::StackConfig;

    fn machine() -> Machine {
        Machine::for_arm(&ProgrammablePim::cortex_a9(&StackConfig::hmc2(), 4))
    }

    fn looped() -> Program {
        Program {
            name: "loop".to_string(),
            regions: vec![4096, 1024],
            fixed_kernels: vec![FixedEntry {
                muls: 500,
                adds: 400,
                calls: 3,
            }],
            code: vec![
                Inst::Ld {
                    dst: Reg(0),
                    region: 0,
                    bytes: 4096,
                },
                Inst::SetCnt {
                    ctr: Ctr(0),
                    trips: 5,
                },
                Inst::Fma {
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                    elems: 100,
                },
                Inst::DecJnz {
                    ctr: Ctr(0),
                    target: 2,
                },
                Inst::Mul {
                    dst: Reg(3),
                    a: Reg(0),
                    b: Reg(1),
                    elems: 7,
                },
                Inst::CallFixed { kernel: 0 },
                Inst::Sync,
                Inst::St {
                    src: Reg(2),
                    region: 1,
                    bytes: 1024,
                },
                Inst::Halt,
            ],
        }
    }

    #[test]
    fn tallies_are_exact_across_loops_and_calls() {
        let s = machine().run(&looped()).unwrap();
        // 5 trips x 100 fma + 7 mul (executed), plus the offloaded kernel.
        assert_eq!(s.executed_muls, 507);
        assert_eq!(s.executed_adds, 500);
        assert_eq!(s.offloaded_muls, 500);
        assert_eq!(s.offloaded_adds, 400);
        assert_eq!(s.total_ma(), 1907);
        assert_eq!(s.traffic_bytes(), 5120);
        assert_eq!(s.calls, 3);
    }

    #[test]
    fn retirement_matches_the_static_bound_exactly() {
        let p = looped();
        let info = validate(&p).unwrap();
        let s = machine().run(&p).unwrap();
        assert_eq!(s.retired, info.retired_bound);
    }

    #[test]
    fn cycle_bound_is_met_exactly_by_straight_execution() {
        let p = looped();
        let m = machine();
        let info = validate(&p).unwrap();
        let s = m.run(&p).unwrap();
        assert_eq!(s.issue_cycles, m.cycle_bound(&p, &info));
    }

    #[test]
    fn interpretation_is_deterministic() {
        let p = looped();
        let m = machine();
        assert_eq!(m.run(&p).unwrap(), m.run(&p).unwrap());
    }

    #[test]
    fn invalid_program_does_not_execute() {
        let mut p = looped();
        p.code.pop();
        assert!(matches!(machine().run(&p), Err(ExecError::Invalid(_))));
    }

    #[test]
    fn region_overrun_is_caught_dynamically() {
        let mut p = looped();
        // A second full-size load through region 0 overruns it.
        p.code.insert(
            1,
            Inst::Ld {
                dst: Reg(1),
                region: 0,
                bytes: 4096,
            },
        );
        // Fix the loop target after the insertion.
        p.code[4] = Inst::DecJnz {
            ctr: Ctr(0),
            target: 3,
        };
        match machine().run(&p) {
            Err(ExecError::RegionOverrun { region: 0, .. }) => {}
            other => panic!("expected overrun, got {other:?}"),
        }
    }

    #[test]
    fn arm_machine_lane_widths_follow_the_device() {
        let m = machine();
        assert!((m.clock_hz - 2e9).abs() < 1.0);
        assert!((m.ma_lanes - 8.0).abs() < 1e-12); // 4 cores x 2 flops/cycle
        assert!((m.ctrl_lanes - 16.0).abs() < 1e-12);
    }
}
