//! pim-isa — a register-based micro-ISA for the programmable PIM.
//!
//! The paper's programmable ARM PIM (§IV-D) is modeled analytically
//! elsewhere (`pim_hw::arm`); this crate gives it an *executed* ground
//! truth. A KIR kernel ([`pim_opencl::kir`]) lowers to a small
//! fixed-width instruction [`Program`] — loads/stores over the kernel's
//! memory regions, `mul`/`add`/`fma` vector arithmetic, counted loops,
//! `call_fixed` offload sites against binary #3's kernel table, `sync`,
//! `halt` — which a structural [`validate()`] pass proves terminating with
//! exact per-instruction multiplicities, and a deterministic
//! [`Machine`] interpreter executes into exact `u64` mul/add tallies,
//! memory-path traffic, and issue cycles.
//!
//! Module map:
//!
//! - [`isa`] — instruction set, 16-byte encoder/decoder, disassembler
//! - [`mod@validate`] — structural validator (counted-loop discipline, bounds,
//!   static retirement/cycle bounds)
//! - [`interp`] — machine model + deterministic interpreter
//! - [`lower`] — KIR → ISA lowering with exact loop splitting
//! - [`backend`] — interpreted streams → `ComputeEstimate`

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod interp;
pub mod isa;
pub mod lower;
pub mod validate;

pub use backend::estimate_interpreted;
pub use interp::{ExecError, ExecSummary, Machine, CALL_GRANULARITY_FLOPS};
pub use isa::{Ctr, FixedEntry, Inst, Program, Reg};
pub use lower::{lower_binary, lower_binary_with_traffic, lower_kernel, lower_recursive};
pub use validate::{validate, StaticInfo, Violation};
