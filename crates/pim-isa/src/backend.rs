//! The ISA execution backend: interpreted streams → timing/energy.
//!
//! Mirrors the analytic device formula of `pim_hw::params::estimate`, but
//! with the compute term *executed* rather than assumed: issue cycles come
//! from the interpreter, traffic from the program's `ld`/`st` stream, and
//! only the bandwidth/power/memory-path constants are shared with the
//! closed-form model. The two agree when the ISA's rounding (whole issue
//! cycles, whole bytes) is negligible — the differential suite pins that
//! delta.

use crate::interp::{ExecSummary, Machine};
use pim_common::units::{Bytes, Seconds};
use pim_hw::params::{memory_time, ComputeEstimate, DeviceParams};
use pim_mem::traffic::AccessPattern;

/// Converts one interpretation into the common estimate shape:
///
/// ```text
/// t_compute = issue_cycles / clock
/// t_memory  = traffic_bytes / (bandwidth × pattern_efficiency)
/// t_op      = max(t_compute, t_memory) + dispatch_overhead
/// energy    = dynamic_power × t_op + path_energy(traffic_bytes)
/// ```
pub fn estimate_interpreted(
    summary: &ExecSummary,
    machine: &Machine,
    params: &DeviceParams,
    pattern: AccessPattern,
) -> ComputeEstimate {
    let compute_time = Seconds::new(summary.issue_cycles as f64 / machine.clock_hz);
    let traffic = Bytes::new(summary.traffic_bytes() as f64);
    let memory = memory_time(params, traffic, pattern);
    let busy = compute_time.max(memory);
    let time = busy + params.dispatch_overhead;
    let energy = params.dynamic_power * time + params.memory_path.transfer_energy(traffic);
    ComputeEstimate {
        time,
        compute_time,
        memory_time: memory,
        dispatch_time: params.dispatch_overhead,
        energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Inst, Program, Reg};
    use pim_hw::arm::ProgrammablePim;
    use pim_mem::stack::StackConfig;

    fn pim() -> ProgrammablePim {
        ProgrammablePim::cortex_a9(&StackConfig::hmc2(), 4)
    }

    fn run(code: Vec<Inst>, regions: Vec<u64>) -> (ExecSummary, Machine) {
        let m = Machine::for_arm(&pim());
        let p = Program {
            name: "t".to_string(),
            regions,
            fixed_kernels: Vec::new(),
            code,
        };
        (m.run(&p).unwrap(), m)
    }

    #[test]
    fn compute_bound_program_is_limited_by_issue_cycles() {
        let (s, m) = run(
            vec![
                Inst::Fma {
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                    elems: 1_000_000,
                },
                Inst::Halt,
            ],
            Vec::new(),
        );
        let est = estimate_interpreted(&s, &m, pim().params(), AccessPattern::Sequential);
        assert!(est.compute_time > est.memory_time);
        // 2M flops at 16 Gflop/s ≈ 125 µs.
        assert!((est.compute_time.seconds() - 1.25e-4).abs() < 1e-6);
    }

    #[test]
    fn memory_bound_program_is_limited_by_traffic() {
        let (s, m) = run(
            vec![
                Inst::Ld {
                    dst: Reg(0),
                    region: 0,
                    bytes: 1 << 30,
                },
                Inst::Halt,
            ],
            vec![1 << 30],
        );
        let est = estimate_interpreted(&s, &m, pim().params(), AccessPattern::Sequential);
        assert!(est.memory_time > est.compute_time);
        assert!(est.energy.joules() > 0.0);
    }

    #[test]
    fn dispatch_overhead_is_always_charged() {
        let (s, m) = run(vec![Inst::Halt], Vec::new());
        let est = estimate_interpreted(&s, &m, pim().params(), AccessPattern::Sequential);
        assert_eq!(est.dispatch_time, pim().params().dispatch_overhead);
        assert!(est.time >= est.dispatch_time);
    }
}
