//! Weight initializers.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Uniform initialization in `[-limit, limit]`.
pub fn uniform(shape: Shape, limit: f32, rng: &mut impl RngExt) -> Tensor {
    Tensor::from_fn(shape, |_| rng.random_range(-limit..=limit))
}

/// Glorot/Xavier uniform initialization for a layer with the given fan-in
/// and fan-out.
///
/// # Examples
///
/// ```
/// use pim_tensor::init::{glorot_uniform, seeded_rng};
/// use pim_tensor::Shape;
///
/// let mut rng = seeded_rng(42);
/// let w = glorot_uniform(Shape::new(vec![64, 32]), 32, 64, &mut rng);
/// assert!(w.data().iter().all(|v| v.abs() <= 0.25 + 1e-6));
/// ```
pub fn glorot_uniform(
    shape: Shape,
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl RngExt,
) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, limit, rng)
}

/// A deterministic RNG for reproducible examples and tests.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        let ta = uniform(Shape::new(vec![16]), 1.0, &mut a);
        let tb = uniform(Shape::new(vec![16]), 1.0, &mut b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn uniform_respects_limit() {
        let mut rng = seeded_rng(1);
        let t = uniform(Shape::new(vec![256]), 0.5, &mut rng);
        assert!(t.data().iter().all(|v| v.abs() <= 0.5));
        // And actually spreads out.
        assert!(t.data().iter().any(|v| v.abs() > 0.25));
    }

    #[test]
    fn glorot_limit_shrinks_with_fan() {
        let mut rng = seeded_rng(2);
        let wide = glorot_uniform(Shape::new(vec![4096]), 4096, 4096, &mut rng);
        let max = wide.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max < 0.05);
    }
}
