//! Tensor shapes and the convolution geometry helpers.

use pim_common::{PimError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a tensor, outermost first.
///
/// 4-D image tensors use NCHW layout (batch, channels, height, width);
/// 2-D matrices are row-major (rows, cols).
///
/// # Examples
///
/// ```
/// use pim_tensor::shape::Shape;
///
/// let s = Shape::new(vec![32, 3, 224, 224]);
/// assert_eq!(s.numel(), 32 * 3 * 224 * 224);
/// assert_eq!(s.rank(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Wraps a dimension list.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// A scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total element count (1 for a scalar).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of one dimension.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Interprets the shape as NCHW, failing for non-4-D shapes.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::ShapeMismatch`] if the rank is not 4.
    pub fn as_nchw(&self) -> Result<(usize, usize, usize, usize)> {
        match self.0.as_slice() {
            &[n, c, h, w] => Ok((n, c, h, w)),
            _ => Err(PimError::ShapeMismatch {
                context: "Shape::as_nchw",
                expected: vec![4],
                actual: vec![self.rank()],
            }),
        }
    }

    /// Interprets the shape as a matrix (rows, cols).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::ShapeMismatch`] if the rank is not 2.
    pub fn as_matrix(&self) -> Result<(usize, usize)> {
        match self.0.as_slice() {
            &[r, c] => Ok((r, c)),
            _ => Err(PimError::ShapeMismatch {
                context: "Shape::as_matrix",
                expected: vec![2],
                actual: vec![self.rank()],
            }),
        }
    }

    /// Byte size of the tensor at 32-bit floating point.
    pub fn size_bytes(&self) -> usize {
        self.numel() * std::mem::size_of::<f32>()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

/// Spatial geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvGeometry {
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
    /// Rows of zero padding added to each of top and bottom.
    pub pad_h: usize,
    /// Columns of zero padding added to each of left and right.
    pub pad_w: usize,
}

impl ConvGeometry {
    /// Square kernel with equal stride and padding in both dimensions.
    ///
    /// # Examples
    ///
    /// ```
    /// use pim_tensor::shape::ConvGeometry;
    /// let g = ConvGeometry::square(3, 1, 1);
    /// assert_eq!(g.output_hw(224, 224), (224, 224));
    /// ```
    pub const fn square(kernel: usize, stride: usize, pad: usize) -> Self {
        ConvGeometry {
            kernel_h: kernel,
            kernel_w: kernel,
            stride_h: stride,
            stride_w: stride,
            pad_h: pad,
            pad_w: pad,
        }
    }

    /// Output spatial size for an input of `h` by `w`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the kernel does not fit in the padded input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        debug_assert!(
            h + 2 * self.pad_h >= self.kernel_h,
            "kernel taller than input"
        );
        debug_assert!(
            w + 2 * self.pad_w >= self.kernel_w,
            "kernel wider than input"
        );
        (
            (h + 2 * self.pad_h - self.kernel_h) / self.stride_h + 1,
            (w + 2 * self.pad_w - self.kernel_w) / self.stride_w + 1,
        )
    }

    /// Output spatial size of the transposed (fractionally strided)
    /// convolution used by DCGAN's generator.
    pub fn transpose_output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h - 1) * self.stride_h + self.kernel_h - 2 * self.pad_h,
            (w - 1) * self.stride_w + self.kernel_w - 2 * self.pad_w,
        )
    }

    /// Elements in one kernel window (per input channel).
    pub fn window_len(&self) -> usize {
        self.kernel_h * self.kernel_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn numel_of_scalar_is_one() {
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn nchw_accessor_checks_rank() {
        assert!(Shape::new(vec![1, 2, 3]).as_nchw().is_err());
        assert_eq!(
            Shape::new(vec![2, 3, 4, 5]).as_nchw().unwrap(),
            (2, 3, 4, 5)
        );
    }

    #[test]
    fn matrix_accessor_checks_rank() {
        assert!(Shape::new(vec![1, 2, 3]).as_matrix().is_err());
        assert_eq!(Shape::new(vec![6, 7]).as_matrix().unwrap(), (6, 7));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            Shape::new(vec![32, 3, 224, 224]).to_string(),
            "[32x3x224x224]"
        );
    }

    #[test]
    fn alexnet_first_conv_geometry() {
        // AlexNet conv1: 11x11 stride 4 on 227x227.
        let g = ConvGeometry::square(11, 4, 0);
        assert_eq!(g.output_hw(227, 227), (55, 55));
    }

    #[test]
    fn vgg_conv_preserves_spatial_size() {
        let g = ConvGeometry::square(3, 1, 1);
        assert_eq!(g.output_hw(224, 224), (224, 224));
    }

    #[test]
    fn dcgan_transpose_doubles() {
        let g = ConvGeometry::square(4, 2, 1);
        assert_eq!(g.transpose_output_hw(7, 7), (14, 14));
    }

    proptest! {
        #[test]
        fn transpose_inverts_forward(
            h in 4usize..64,
            stride in 1usize..3,
        ) {
            // For kernel=stride (non-overlapping), transpose exactly inverts.
            let g = ConvGeometry::square(stride, stride, 0);
            let (oh, _) = g.output_hw(h * stride, h * stride);
            let (rh, _) = g.transpose_output_hw(oh, oh);
            prop_assert_eq!(rh, h * stride);
        }

        #[test]
        fn numel_matches_product(dims in proptest::collection::vec(1usize..8, 0..5)) {
            let expected: usize = dims.iter().product();
            prop_assert_eq!(Shape::new(dims).numel(), expected);
        }
    }
}
