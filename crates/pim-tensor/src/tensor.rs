//! The dense 32-bit floating-point tensor.
//!
//! The paper's fixed-function PIMs are 32-bit floating-point multipliers and
//! adders (§IV-D), so `f32` is the only element type the stack needs.

use crate::shape::Shape;
use pim_common::{PimError, Result};
use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` tensor.
///
/// # Examples
///
/// ```
/// use pim_tensor::{Shape, Tensor};
///
/// let mut t = Tensor::zeros(Shape::new(vec![2, 3]));
/// t.set2(1, 2, 5.0);
/// assert_eq!(t.at2(1, 2), 5.0);
/// assert_eq!(t.numel(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor filled with a constant value.
    pub fn full(shape: Shape, value: f32) -> Self {
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Builds a tensor from raw data.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::ShapeMismatch`] when `data.len()` disagrees with
    /// the shape's element count.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.numel() {
            return Err(PimError::ShapeMismatch {
                context: "Tensor::from_vec",
                expected: vec![shape.numel()],
                actual: vec![data.len()],
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Builds a tensor by evaluating `f` at every flat index.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize) -> f32) -> Self {
        let n = shape.numel();
        Tensor {
            data: (0..n).map(&mut f).collect(),
            shape,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the backing buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::ShapeMismatch`] when element counts differ.
    pub fn reshaped(mut self, shape: Shape) -> Result<Self> {
        if shape.numel() != self.data.len() {
            return Err(PimError::ShapeMismatch {
                context: "Tensor::reshaped",
                expected: vec![self.data.len()],
                actual: vec![shape.numel()],
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Flat offset of `(n, c, h, w)` under NCHW layout.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the tensor is not 4-D or an index is out
    /// of range.
    #[inline]
    pub fn offset4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        let dims = self.shape.dims();
        debug_assert_eq!(dims.len(), 4, "offset4 on non-4D tensor");
        debug_assert!(n < dims[0] && c < dims[1] && h < dims[2] && w < dims[3]);
        ((n * dims[1] + c) * dims[2] + h) * dims[3] + w
    }

    /// Element at `(n, c, h, w)` under NCHW layout.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.offset4(n, c, h, w)]
    }

    /// Writes the element at `(n, c, h, w)`.
    #[inline]
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        let i = self.offset4(n, c, h, w);
        self.data[i] = value;
    }

    /// Adds into the element at `(n, c, h, w)`.
    #[inline]
    pub fn add4(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        let i = self.offset4(n, c, h, w);
        self.data[i] += value;
    }

    /// Element at `(r, c)` of a matrix.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        let dims = self.shape.dims();
        debug_assert_eq!(dims.len(), 2, "at2 on non-matrix tensor");
        debug_assert!(r < dims[0] && c < dims[1]);
        self.data[r * dims[1] + c]
    }

    /// Writes the element at `(r, c)` of a matrix.
    #[inline]
    pub fn set2(&mut self, r: usize, c: usize, value: f32) {
        let dims = self.shape.dims();
        debug_assert_eq!(dims.len(), 2, "set2 on non-matrix tensor");
        debug_assert!(r < dims[0] && c < dims[1]);
        let cols = dims[1];
        self.data[r * cols + c] = value;
    }

    /// Largest absolute difference against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::ShapeMismatch`] when shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(PimError::ShapeMismatch {
                context: "Tensor::max_abs_diff",
                expected: self.shape.dims().to_vec(),
                actual: other.shape.dims().to_vec(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Sum of all elements (in `f64` for accuracy).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| f64::from(x)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_has_right_size() {
        let t = Tensor::zeros(Shape::new(vec![2, 3, 4]));
        assert_eq!(t.numel(), 24);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_validates_length() {
        let shape = Shape::new(vec![2, 2]);
        assert!(Tensor::from_vec(shape.clone(), vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(shape, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn nchw_indexing_is_row_major() {
        let t = Tensor::from_fn(Shape::new(vec![2, 2, 2, 2]), |i| i as f32);
        assert_eq!(t.at4(0, 0, 0, 0), 0.0);
        assert_eq!(t.at4(0, 0, 0, 1), 1.0);
        assert_eq!(t.at4(0, 0, 1, 0), 2.0);
        assert_eq!(t.at4(0, 1, 0, 0), 4.0);
        assert_eq!(t.at4(1, 0, 0, 0), 8.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(Shape::new(vec![2, 6]), |i| i as f32);
        let r = t.clone().reshaped(Shape::new(vec![3, 4])).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshaped(Shape::new(vec![5, 5])).is_err());
    }

    #[test]
    fn add4_accumulates() {
        let mut t = Tensor::zeros(Shape::new(vec![1, 1, 2, 2]));
        t.add4(0, 0, 1, 1, 2.0);
        t.add4(0, 0, 1, 1, 3.0);
        assert_eq!(t.at4(0, 0, 1, 1), 5.0);
    }

    #[test]
    fn max_abs_diff_checks_shape() {
        let a = Tensor::zeros(Shape::new(vec![2, 2]));
        let b = Tensor::zeros(Shape::new(vec![4]));
        assert!(a.max_abs_diff(&b).is_err());
    }

    proptest! {
        #[test]
        fn sum_matches_reference(values in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
            let expected: f64 = values.iter().map(|&x| f64::from(x)).sum();
            let n = values.len();
            let t = Tensor::from_vec(Shape::new(vec![n]), values).unwrap();
            prop_assert!((t.sum() - expected).abs() < 1e-6);
        }

        #[test]
        fn set_then_get_roundtrips(r in 0usize..4, c in 0usize..5, v in -1e6f32..1e6) {
            let mut t = Tensor::zeros(Shape::new(vec![4, 5]));
            t.set2(r, c, v);
            prop_assert_eq!(t.at2(r, c), v);
        }
    }
}
