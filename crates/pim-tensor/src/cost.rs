//! Analytic cost characterization of NN training operations.
//!
//! The paper's runtime only ever consumes two observables per operation —
//! execution time and main-memory access count — plus the knowledge of which
//! part of an operation decomposes into multiplications and additions (and
//! can therefore run on fixed-function PIMs). [`CostProfile`] carries exactly
//! that information, derived analytically from tensor shapes by the `ops`
//! modules, and is consumed by every device model in `pim-hw`.

use pim_common::access::AccessPattern;
use pim_common::units::Bytes;
use serde::{Deserialize, Serialize};

/// How much of an operation decomposes into plain multiply/add work.
///
/// This is the paper's §II-A taxonomy: `MatMul` is pure multiply/add;
/// `Conv2DBackpropFilter` contains multiply/add convolution phases plus
/// "other logic and computations"; `Relu`/`MaxPool` are conditionals and
/// discretization that fixed-function units cannot express; `Slice` is pure
/// data movement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OffloadClass {
    /// Entirely expressible as multiplications and additions
    /// (MatMul, Conv2D, BiasAdd, elementwise Mul/Add, SGD update).
    FullyMulAdd,
    /// A multiply/add core wrapped in other logic; the multiply/add fraction
    /// can be extracted into fixed-function kernels via the recursive-kernel
    /// mechanism (Conv2DBackprop*, ApplyAdam, BatchNorm).
    PartiallyMulAdd {
        /// Fraction of the arithmetic work that is multiply/add.
        ma_fraction: f64,
    },
    /// No useful multiply/add core: conditionals, discretization,
    /// transcendental functions (Relu, MaxPool, Softmax, Tanh).
    NonMulAdd,
    /// Pure data movement with negligible arithmetic (Slice, Concat,
    /// Reshape, embedding gathers).
    DataMovement,
}

impl OffloadClass {
    /// True when at least part of the operation can run on fixed-function
    /// PIMs.
    pub fn has_fixed_function_part(self) -> bool {
        matches!(
            self,
            OffloadClass::FullyMulAdd | OffloadClass::PartiallyMulAdd { .. }
        )
    }

    /// Fraction of arithmetic that is multiply/add.
    pub fn ma_fraction(self) -> f64 {
        match self {
            OffloadClass::FullyMulAdd => 1.0,
            OffloadClass::PartiallyMulAdd { ma_fraction } => ma_fraction,
            OffloadClass::NonMulAdd | OffloadClass::DataMovement => 0.0,
        }
    }
}

/// The complete analytic cost of one operation instance.
///
/// # Examples
///
/// ```
/// use pim_tensor::cost::{CostProfile, OffloadClass};
/// use pim_common::units::Bytes;
///
/// let c = CostProfile::compute(
///     1000.0,
///     999.0,
///     0.0,
///     Bytes::new(8000.0),
///     Bytes::new(4000.0),
///     OffloadClass::FullyMulAdd,
///     41,
/// );
/// assert_eq!(c.ma_flops(), 1999.0);
/// assert!(c.arithmetic_intensity() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostProfile {
    /// Floating-point multiplications.
    pub muls: f64,
    /// Floating-point additions (including subtractions).
    pub adds: f64,
    /// Arithmetic that is not plain multiply/add: divisions, square roots,
    /// exponentials, comparisons and selects.
    pub other_flops: f64,
    /// Loop/branch/address bookkeeping instructions.
    pub control_ops: f64,
    /// Main-memory bytes read (beyond what caches can hold).
    pub bytes_read: Bytes,
    /// Main-memory bytes written.
    pub bytes_written: Bytes,
    /// Address-stream pattern of the dominant access stream.
    pub pattern: AccessPattern,
    /// Number of fixed-function units the op keeps busy simultaneously
    /// (e.g. an 11x11 convolution window uses 121 multipliers + 120 adders =
    /// 241 units, per the paper's §III-C example).
    pub ff_parallelism: usize,
    /// Decomposability classification.
    pub class: OffloadClass,
}

impl CostProfile {
    /// An empty (free) profile.
    pub fn empty() -> Self {
        CostProfile {
            muls: 0.0,
            adds: 0.0,
            other_flops: 0.0,
            control_ops: 0.0,
            bytes_read: Bytes::ZERO,
            bytes_written: Bytes::ZERO,
            pattern: AccessPattern::Sequential,
            ff_parallelism: 0,
            class: OffloadClass::DataMovement,
        }
    }

    /// Builds a compute profile with control overhead derived from the
    /// arithmetic volume (one bookkeeping instruction per eight flops).
    #[allow(clippy::too_many_arguments)]
    pub fn compute(
        muls: f64,
        adds: f64,
        other_flops: f64,
        bytes_read: Bytes,
        bytes_written: Bytes,
        class: OffloadClass,
        ff_parallelism: usize,
    ) -> Self {
        let control_ops = (muls + adds + other_flops) / 8.0;
        CostProfile {
            muls,
            adds,
            other_flops,
            control_ops,
            bytes_read,
            bytes_written,
            pattern: AccessPattern::Sequential,
            ff_parallelism,
            class,
        }
    }

    /// Builds a pure data-movement profile.
    pub fn movement(bytes_read: Bytes, bytes_written: Bytes, pattern: AccessPattern) -> Self {
        CostProfile {
            muls: 0.0,
            adds: 0.0,
            other_flops: 0.0,
            control_ops: (bytes_read + bytes_written).bytes() / 64.0,
            bytes_read,
            bytes_written,
            pattern,
            ff_parallelism: 0,
            class: OffloadClass::DataMovement,
        }
    }

    /// Returns a copy with the given access pattern.
    pub fn with_pattern(mut self, pattern: AccessPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Multiply/add work offloadable to fixed-function PIMs.
    pub fn ma_flops(&self) -> f64 {
        self.muls + self.adds
    }

    /// All arithmetic work.
    pub fn total_flops(&self) -> f64 {
        self.muls + self.adds + self.other_flops
    }

    /// Total main-memory traffic.
    pub fn total_bytes(&self) -> Bytes {
        self.bytes_read + self.bytes_written
    }

    /// Main-memory accesses in 64-byte lines — the profiler's
    /// "number of main memory accesses" metric.
    pub fn memory_accesses(&self) -> u64 {
        self.total_bytes().lines()
    }

    /// Flops per byte of main-memory traffic (0 when traffic-free).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.total_bytes().bytes();
        if bytes == 0.0 {
            0.0
        } else {
            self.total_flops() / bytes
        }
    }

    /// Accumulates another profile into this one (used to total a kernel
    /// made of several phases). The pattern degrades to the worst of the two
    /// and the classification to the less offloadable one.
    pub fn merge(&mut self, other: &CostProfile) {
        self.muls += other.muls;
        self.adds += other.adds;
        self.other_flops += other.other_flops;
        self.control_ops += other.control_ops;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.pattern = self.pattern.worst(other.pattern);
        self.ff_parallelism = self.ff_parallelism.max(other.ff_parallelism);
        let total = self.total_flops();
        self.class = if total == 0.0 {
            OffloadClass::DataMovement
        } else {
            let ma = self.ma_flops();
            if ma == total {
                OffloadClass::FullyMulAdd
            } else if ma == 0.0 {
                OffloadClass::NonMulAdd
            } else {
                OffloadClass::PartiallyMulAdd {
                    ma_fraction: ma / total,
                }
            }
        };
    }

    /// Sanity invariants: all fields finite and non-negative, fractions in
    /// range. Used by property tests across every op in the library.
    pub fn is_well_formed(&self) -> bool {
        let nonneg = |x: f64| x.is_finite() && x >= 0.0;
        nonneg(self.muls)
            && nonneg(self.adds)
            && nonneg(self.other_flops)
            && nonneg(self.control_ops)
            && self.bytes_read.is_valid()
            && self.bytes_written.is_valid()
            && (0.0..=1.0).contains(&self.class.ma_fraction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CostProfile {
        CostProfile::compute(
            100.0,
            50.0,
            25.0,
            Bytes::new(640.0),
            Bytes::new(64.0),
            OffloadClass::PartiallyMulAdd { ma_fraction: 0.857 },
            11,
        )
    }

    #[test]
    fn totals_are_consistent() {
        let c = sample();
        assert_eq!(c.ma_flops(), 150.0);
        assert_eq!(c.total_flops(), 175.0);
        assert_eq!(c.total_bytes().bytes(), 704.0);
        assert_eq!(c.memory_accesses(), 11);
    }

    #[test]
    fn classes_report_fixed_function_part() {
        assert!(OffloadClass::FullyMulAdd.has_fixed_function_part());
        assert!(OffloadClass::PartiallyMulAdd { ma_fraction: 0.5 }.has_fixed_function_part());
        assert!(!OffloadClass::NonMulAdd.has_fixed_function_part());
        assert!(!OffloadClass::DataMovement.has_fixed_function_part());
    }

    #[test]
    fn merge_reclassifies() {
        let mut pure = CostProfile::compute(
            10.0,
            10.0,
            0.0,
            Bytes::ZERO,
            Bytes::ZERO,
            OffloadClass::FullyMulAdd,
            4,
        );
        let other = CostProfile::compute(
            0.0,
            0.0,
            20.0,
            Bytes::ZERO,
            Bytes::ZERO,
            OffloadClass::NonMulAdd,
            0,
        );
        pure.merge(&other);
        assert_eq!(
            pure.class,
            OffloadClass::PartiallyMulAdd { ma_fraction: 0.5 }
        );
        assert!(pure.is_well_formed());
    }

    #[test]
    fn merge_degrades_pattern() {
        let mut a = CostProfile::movement(Bytes::new(64.0), Bytes::ZERO, AccessPattern::Sequential);
        let b = CostProfile::movement(Bytes::new(64.0), Bytes::ZERO, AccessPattern::Random);
        a.merge(&b);
        assert_eq!(a.pattern, AccessPattern::Random);
    }

    #[test]
    fn movement_profile_has_no_flops() {
        let m = CostProfile::movement(
            Bytes::new(1024.0),
            Bytes::new(1024.0),
            AccessPattern::Sequential,
        );
        assert_eq!(m.total_flops(), 0.0);
        assert_eq!(m.arithmetic_intensity(), 0.0);
        assert!(m.control_ops > 0.0);
    }

    #[test]
    fn empty_profile_is_well_formed() {
        assert!(CostProfile::empty().is_well_formed());
        assert_eq!(CostProfile::empty().memory_accesses(), 0);
    }
}
