//! 2-D convolution and its gradients — the dominant operations of Table I.
//!
//! Layouts: input `[N, C, H, W]`, filters `[F, C, KH, KW]`, output
//! `[N, F, OH, OW]`. `Conv2D` is fully multiply/add; the two backprop
//! operations carry extra index arithmetic and accumulation logic, which is
//! why the paper classifies them as complex operations that need the
//! recursive-kernel mechanism (§III-B, Fig. 6).

use crate::cost::{CostProfile, OffloadClass};
use crate::shape::{ConvGeometry, Shape};
use crate::tensor::Tensor;
use pim_common::units::Bytes;
use pim_common::{PimError, Result};

/// Validates conv operand shapes and returns `(n, c, h, w, f, oh, ow)`.
fn conv_dims(
    input: &Shape,
    filter: &Shape,
    geom: ConvGeometry,
) -> Result<(usize, usize, usize, usize, usize, usize, usize)> {
    let (n, c, h, w) = input.as_nchw()?;
    let (f, fc, kh, kw) = filter.as_nchw()?;
    if fc != c || kh != geom.kernel_h || kw != geom.kernel_w {
        return Err(PimError::ShapeMismatch {
            context: "conv2d filter",
            expected: vec![c, geom.kernel_h, geom.kernel_w],
            actual: vec![fc, kh, kw],
        });
    }
    let (oh, ow) = geom.output_hw(h, w);
    Ok((n, c, h, w, f, oh, ow))
}

/// Forward 2-D convolution.
///
/// # Examples
///
/// ```
/// use pim_tensor::ops::conv::conv2d;
/// use pim_tensor::shape::{ConvGeometry, Shape};
/// use pim_tensor::Tensor;
///
/// # fn main() -> pim_common::Result<()> {
/// let input = Tensor::full(Shape::new(vec![1, 1, 3, 3]), 1.0);
/// let filter = Tensor::full(Shape::new(vec![1, 1, 2, 2]), 1.0);
/// let out = conv2d(&input, &filter, ConvGeometry::square(2, 1, 0))?;
/// assert_eq!(out.shape().dims(), &[1, 1, 2, 2]);
/// assert_eq!(out.data(), &[4.0, 4.0, 4.0, 4.0]);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when operand shapes are inconsistent
/// with the geometry.
pub fn conv2d(input: &Tensor, filter: &Tensor, geom: ConvGeometry) -> Result<Tensor> {
    let (n, c, h, w, f, oh, ow) = conv_dims(input.shape(), filter.shape(), geom)?;
    let mut out = Tensor::zeros(Shape::new(vec![n, f, oh, ow]));
    for ni in 0..n {
        for fi in 0..f {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ci in 0..c {
                        for ky in 0..geom.kernel_h {
                            for kx in 0..geom.kernel_w {
                                let iy = (oy * geom.stride_h + ky) as isize - geom.pad_h as isize;
                                let ix = (ox * geom.stride_w + kx) as isize - geom.pad_w as isize;
                                if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                    acc += input.at4(ni, ci, iy as usize, ix as usize)
                                        * filter.at4(fi, ci, ky, kx);
                                }
                            }
                        }
                    }
                    out.set4(ni, fi, oy, ox, acc);
                }
            }
        }
    }
    Ok(out)
}

/// Gradient of the loss with respect to the filter (`Conv2DBackpropFilter`).
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when operand shapes are inconsistent.
pub fn conv2d_backprop_filter(
    input: &Tensor,
    grad_output: &Tensor,
    filter_shape: &Shape,
    geom: ConvGeometry,
) -> Result<Tensor> {
    let (n, c, h, w, f, oh, ow) = conv_dims(input.shape(), filter_shape, geom)?;
    let (gn, gf, goh, gow) = grad_output.shape().as_nchw()?;
    if (gn, gf, goh, gow) != (n, f, oh, ow) {
        return Err(PimError::ShapeMismatch {
            context: "conv2d_backprop_filter grad_output",
            expected: vec![n, f, oh, ow],
            actual: vec![gn, gf, goh, gow],
        });
    }
    let mut grad_filter = Tensor::zeros(filter_shape.clone());
    for ni in 0..n {
        for fi in 0..f {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_output.at4(ni, fi, oy, ox);
                    if g == 0.0 {
                        continue;
                    }
                    for ci in 0..c {
                        for ky in 0..geom.kernel_h {
                            for kx in 0..geom.kernel_w {
                                let iy = (oy * geom.stride_h + ky) as isize - geom.pad_h as isize;
                                let ix = (ox * geom.stride_w + kx) as isize - geom.pad_w as isize;
                                if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                    grad_filter.add4(
                                        fi,
                                        ci,
                                        ky,
                                        kx,
                                        g * input.at4(ni, ci, iy as usize, ix as usize),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(grad_filter)
}

/// Gradient of the loss with respect to the input (`Conv2DBackpropInput`).
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when operand shapes are inconsistent.
pub fn conv2d_backprop_input(
    input_shape: &Shape,
    filter: &Tensor,
    grad_output: &Tensor,
    geom: ConvGeometry,
) -> Result<Tensor> {
    let (n, c, h, w, f, oh, ow) = conv_dims(input_shape, filter.shape(), geom)?;
    let (gn, gf, goh, gow) = grad_output.shape().as_nchw()?;
    if (gn, gf, goh, gow) != (n, f, oh, ow) {
        return Err(PimError::ShapeMismatch {
            context: "conv2d_backprop_input grad_output",
            expected: vec![n, f, oh, ow],
            actual: vec![gn, gf, goh, gow],
        });
    }
    let mut grad_input = Tensor::zeros(input_shape.clone());
    for ni in 0..n {
        for fi in 0..f {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_output.at4(ni, fi, oy, ox);
                    if g == 0.0 {
                        continue;
                    }
                    for ci in 0..c {
                        for ky in 0..geom.kernel_h {
                            for kx in 0..geom.kernel_w {
                                let iy = (oy * geom.stride_h + ky) as isize - geom.pad_h as isize;
                                let ix = (ox * geom.stride_w + kx) as isize - geom.pad_w as isize;
                                if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                    grad_input.add4(
                                        ni,
                                        ci,
                                        iy as usize,
                                        ix as usize,
                                        g * filter.at4(fi, ci, ky, kx),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(grad_input)
}

/// Transposed convolution (DCGAN generator upsampling).
///
/// Filters are `[C_in, C_out, KH, KW]`; the output spatial size follows
/// [`ConvGeometry::transpose_output_hw`].
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when operand shapes are inconsistent.
pub fn conv2d_transpose(input: &Tensor, filter: &Tensor, geom: ConvGeometry) -> Result<Tensor> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (fc_in, c_out, kh, kw) = filter.shape().as_nchw()?;
    if fc_in != c_in || kh != geom.kernel_h || kw != geom.kernel_w {
        return Err(PimError::ShapeMismatch {
            context: "conv2d_transpose filter",
            expected: vec![c_in, geom.kernel_h, geom.kernel_w],
            actual: vec![fc_in, kh, kw],
        });
    }
    let (oh, ow) = geom.transpose_output_hw(h, w);
    let mut out = Tensor::zeros(Shape::new(vec![n, c_out, oh, ow]));
    for ni in 0..n {
        for ci in 0..c_in {
            for iy in 0..h {
                for ix in 0..w {
                    let v = input.at4(ni, ci, iy, ix);
                    if v == 0.0 {
                        continue;
                    }
                    for co in 0..c_out {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let oy = (iy * geom.stride_h + ky) as isize - geom.pad_h as isize;
                                let ox = (ix * geom.stride_w + kx) as isize - geom.pad_w as isize;
                                if oy >= 0 && ox >= 0 && (oy as usize) < oh && (ox as usize) < ow {
                                    out.add4(
                                        ni,
                                        co,
                                        oy as usize,
                                        ox as usize,
                                        v * filter.at4(ci, co, ky, kx),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Main-memory amplification of the input stream under im2col-style
/// lowering after cache reuse.
const IM2COL_AMPLIFICATION: f64 = 4.0;

/// Multiply/add volume shared by the forward pass and both gradients:
/// `n * f * oh * ow * c * kh * kw` multiply-accumulate pairs.
fn conv_macs(n: usize, c: usize, f: usize, oh: usize, ow: usize, geom: ConvGeometry) -> f64 {
    n as f64 * f as f64 * oh as f64 * ow as f64 * c as f64 * geom.window_len() as f64
}

/// The fixed-function parallelism of a convolution: the full dot product —
/// `kh*kw*c` multiplications plus the adder tree — unrolled over
/// multiplier/adder pairs, replicated over up to four output filters
/// processed concurrently. (The paper's §III-C example counts a single
/// 11x11 single-filter window as 121 multipliers + 120 adders; channel and
/// filter unrolling carry the same decomposition further.)
fn conv_ff_parallelism(geom: ConvGeometry, in_channels: usize, filters: usize) -> usize {
    2 * geom.window_len() * in_channels.max(1) * filters.clamp(1, 4) - 1
}

/// Analytic cost of the forward convolution (fully multiply/add).
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when operand shapes are inconsistent.
pub fn conv2d_cost(input: &Shape, filter: &Shape, geom: ConvGeometry) -> Result<CostProfile> {
    let (n, c, _, _, f, oh, ow) = conv_dims(input, filter, geom)?;
    let macs = conv_macs(n, c, f, oh, ow, geom);
    let out_elems = n as f64 * f as f64 * oh as f64 * ow as f64;
    Ok(CostProfile::compute(
        macs,
        macs - out_elems, // each output accumulates window-1 additions
        0.0,
        // The im2col lowering of framework conv kernels re-reads each input
        // element once per overlapping window position; caches recover part
        // of that, leaving ~4x amplification on the input stream.
        Bytes::new((input.numel() as f64 * IM2COL_AMPLIFICATION + filter.numel() as f64) * 4.0),
        Bytes::new(out_elems * 4.0),
        OffloadClass::FullyMulAdd,
        conv_ff_parallelism(geom, c, f),
    ))
}

/// Analytic cost of `Conv2DBackpropFilter`.
///
/// Same multiply/add core as the forward pass, plus scatter-accumulate index
/// logic and a read of both the input and the output gradient — this op tops
/// both the time and memory-access rankings of Table I. Classified
/// partially multiply/add (the paper's Fig. 6 offloads only its convolution
/// phases to fixed-function PIMs).
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when operand shapes are inconsistent.
pub fn conv2d_backprop_filter_cost(
    input: &Shape,
    filter: &Shape,
    geom: ConvGeometry,
) -> Result<CostProfile> {
    let (n, c, _, _, f, oh, ow) = conv_dims(input, filter, geom)?;
    let macs = conv_macs(n, c, f, oh, ow, geom);
    let muls = macs;
    let adds = macs; // scatter accumulation adds once per MAC
                     // Phases 1-2 of the paper's Fig. 6: per-tile index transforms and
                     // boundary setup, amortized over the window (not per MAC) — the
                     // non-mul/add reason this op needs the recursive-kernel mechanism.
    let other = 0.0015 * macs;
    let out_grad_elems = n as f64 * f as f64 * oh as f64 * ow as f64;
    // The filter gradient re-reads the im2col-lowered input *and* the
    // output gradient across the accumulation, and the partial filter sums
    // spill: traffic exceeds even the forward pass, matching this op's top
    // memory-intensity rank in Table I.
    let reads =
        input.numel() as f64 * 4.0 * (IM2COL_AMPLIFICATION + 1.0) + out_grad_elems * 4.0 * 2.0;
    let writes = filter.numel() as f64 * 4.0 * 2.0 + out_grad_elems * 4.0 * 0.5;
    let ma = muls + adds;
    Ok(CostProfile::compute(
        muls,
        adds,
        other,
        Bytes::new(reads),
        Bytes::new(writes),
        OffloadClass::PartiallyMulAdd {
            ma_fraction: ma / (ma + other),
        },
        conv_ff_parallelism(geom, c, f),
    ))
}

/// Analytic cost of `Conv2DBackpropInput`.
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when operand shapes are inconsistent.
pub fn conv2d_backprop_input_cost(
    input: &Shape,
    filter: &Shape,
    geom: ConvGeometry,
) -> Result<CostProfile> {
    let (n, c, _, _, f, oh, ow) = conv_dims(input, filter, geom)?;
    let macs = conv_macs(n, c, f, oh, ow, geom);
    let muls = macs;
    let adds = macs;
    let other = 0.001 * macs;
    let out_grad_elems = n as f64 * f as f64 * oh as f64 * ow as f64;
    let reads = filter.numel() as f64 * 4.0 + out_grad_elems * 4.0 * IM2COL_AMPLIFICATION;
    let writes = input.numel() as f64 * 4.0 * 1.5;
    let ma = muls + adds;
    Ok(CostProfile::compute(
        muls,
        adds,
        other,
        Bytes::new(reads),
        Bytes::new(writes),
        OffloadClass::PartiallyMulAdd {
            ma_fraction: ma / (ma + other),
        },
        conv_ff_parallelism(geom, c, f),
    ))
}

/// Analytic cost of the transposed convolution (DCGAN generator). Fully
/// multiply/add like the forward convolution.
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when operand shapes are inconsistent.
pub fn conv2d_transpose_cost(
    input: &Shape,
    filter: &Shape,
    geom: ConvGeometry,
) -> Result<CostProfile> {
    let (n, c_in, h, w) = input.as_nchw()?;
    let (_, c_out, _, _) = filter.as_nchw()?;
    let (oh, ow) = geom.transpose_output_hw(h, w);
    let macs =
        n as f64 * c_in as f64 * h as f64 * w as f64 * c_out as f64 * geom.window_len() as f64;
    Ok(CostProfile::compute(
        macs,
        macs,
        0.0,
        Bytes::new((input.numel() + filter.numel()) as f64 * 4.0),
        Bytes::new(n as f64 * c_out as f64 * oh as f64 * ow as f64 * 4.0),
        OffloadClass::FullyMulAdd,
        conv_ff_parallelism(geom, c_in, c_out),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn geom_3x3() -> ConvGeometry {
        ConvGeometry::square(3, 1, 1)
    }

    #[test]
    fn forward_shape_is_correct() {
        let input = Tensor::zeros(Shape::new(vec![2, 3, 8, 8]));
        let filter = Tensor::zeros(Shape::new(vec![4, 3, 3, 3]));
        let out = conv2d(&input, &filter, geom_3x3()).unwrap();
        assert_eq!(out.shape().dims(), &[2, 4, 8, 8]);
    }

    #[test]
    fn forward_rejects_channel_mismatch() {
        let input = Tensor::zeros(Shape::new(vec![1, 3, 8, 8]));
        let filter = Tensor::zeros(Shape::new(vec![4, 2, 3, 3]));
        assert!(conv2d(&input, &filter, geom_3x3()).is_err());
    }

    /// Finite-difference check: the analytic filter gradient matches
    /// numerically perturbing each filter weight.
    #[test]
    fn backprop_filter_matches_finite_differences() {
        let geom = ConvGeometry::square(2, 1, 0);
        let input = Tensor::from_fn(Shape::new(vec![1, 2, 4, 4]), |i| ((i * 7) % 5) as f32 * 0.1);
        let filter = Tensor::from_fn(Shape::new(vec![2, 2, 2, 2]), |i| ((i * 3) % 4) as f32 * 0.2);
        // Loss = sum of outputs, so grad_output = ones.
        let out = conv2d(&input, &filter, geom).unwrap();
        let grad_out = Tensor::full(out.shape().clone(), 1.0);
        let analytic = conv2d_backprop_filter(&input, &grad_out, filter.shape(), geom).unwrap();

        let eps = 1e-2f32;
        for idx in 0..filter.numel() {
            let mut plus = filter.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = filter.clone();
            minus.data_mut()[idx] -= eps;
            let loss_plus: f64 = conv2d(&input, &plus, geom).unwrap().sum();
            let loss_minus: f64 = conv2d(&input, &minus, geom).unwrap().sum();
            let numeric = (loss_plus - loss_minus) / (2.0 * f64::from(eps));
            let got = f64::from(analytic.data()[idx]);
            assert!(
                (numeric - got).abs() < 1e-2,
                "filter grad[{idx}]: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    fn backprop_input_matches_finite_differences() {
        let geom = ConvGeometry::square(2, 2, 0);
        let input = Tensor::from_fn(Shape::new(vec![1, 1, 4, 4]), |i| (i % 3) as f32 * 0.3);
        let filter = Tensor::from_fn(Shape::new(vec![2, 1, 2, 2]), |i| (i % 5) as f32 * 0.1);
        let out = conv2d(&input, &filter, geom).unwrap();
        let grad_out = Tensor::full(out.shape().clone(), 1.0);
        let analytic = conv2d_backprop_input(input.shape(), &filter, &grad_out, geom).unwrap();

        let eps = 1e-2f32;
        for idx in 0..input.numel() {
            let mut plus = input.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = input.clone();
            minus.data_mut()[idx] -= eps;
            let loss_plus: f64 = conv2d(&plus, &filter, geom).unwrap().sum();
            let loss_minus: f64 = conv2d(&minus, &filter, geom).unwrap().sum();
            let numeric = (loss_plus - loss_minus) / (2.0 * f64::from(eps));
            let got = f64::from(analytic.data()[idx]);
            assert!(
                (numeric - got).abs() < 1e-2,
                "input grad[{idx}]: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    fn transpose_upsamples_dcgan_style() {
        let geom = ConvGeometry::square(4, 2, 1);
        let input = Tensor::full(Shape::new(vec![1, 8, 7, 7]), 0.5);
        let filter = Tensor::full(Shape::new(vec![8, 4, 4, 4]), 0.1);
        let out = conv2d_transpose(&input, &filter, geom).unwrap();
        assert_eq!(out.shape().dims(), &[1, 4, 14, 14]);
    }

    #[test]
    fn alexnet_conv1_parallelism_extends_paper_example() {
        // Paper §III-C counts a single-channel 11x11 window as 121
        // multiplications + 120 additions = 241 units; our dot product
        // includes AlexNet conv1's 3 input channels: 2*121*3 - 1 = 725.
        let geom = ConvGeometry::square(11, 4, 0);
        let cost = conv2d_cost(
            &Shape::new(vec![32, 3, 227, 227]),
            &Shape::new(vec![96, 3, 11, 11]),
            geom,
        )
        .unwrap();
        assert_eq!(cost.ff_parallelism, 2 * 121 * 3 * 4 - 1);
        // The paper's exact example: one single-channel window.
        let single = conv2d_cost(
            &Shape::new(vec![1, 1, 227, 227]),
            &Shape::new(vec![1, 1, 11, 11]),
            geom,
        )
        .unwrap();
        assert_eq!(single.ff_parallelism, 241);
        assert_eq!(cost.class, OffloadClass::FullyMulAdd);
    }

    #[test]
    fn backprop_filter_is_most_memory_intensive() {
        let input = Shape::new(vec![8, 64, 28, 28]);
        let filter = Shape::new(vec![128, 64, 3, 3]);
        let fwd = conv2d_cost(&input, &filter, geom_3x3()).unwrap();
        let bpf = conv2d_backprop_filter_cost(&input, &filter, geom_3x3()).unwrap();
        assert!(bpf.total_bytes() > fwd.total_bytes());
        assert!(matches!(bpf.class, OffloadClass::PartiallyMulAdd { .. }));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn forward_mul_count_matches_instrumented(
            n in 1usize..3, c in 1usize..3, f in 1usize..3,
            hw in 3usize..6, k in 1usize..3,
        ) {
            let geom = ConvGeometry::square(k, 1, 0);
            let input = Shape::new(vec![n, c, hw, hw]);
            let filter = Shape::new(vec![f, c, k, k]);
            let cost = conv2d_cost(&input, &filter, geom).unwrap();
            let (oh, ow) = geom.output_hw(hw, hw);
            // Without padding every window position multiplies k*k*c inputs.
            let expected = (n * f * oh * ow * c * k * k) as f64;
            prop_assert_eq!(cost.muls, expected);
            prop_assert!(cost.is_well_formed());
        }

        #[test]
        fn gradient_costs_are_well_formed(
            c in 1usize..4, f in 1usize..4, hw in 4usize..9,
        ) {
            let geom = geom_3x3();
            let input = Shape::new(vec![2, c, hw, hw]);
            let filter = Shape::new(vec![f, c, 3, 3]);
            let bpf = conv2d_backprop_filter_cost(&input, &filter, geom).unwrap();
            let bpi = conv2d_backprop_input_cost(&input, &filter, geom).unwrap();
            prop_assert!(bpf.is_well_formed());
            prop_assert!(bpi.is_well_formed());
            prop_assert!(bpf.class.ma_fraction() > 0.5);
            prop_assert!(bpi.class.ma_fraction() > 0.5);
        }
    }
}
