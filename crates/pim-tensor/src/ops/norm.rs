//! Normalization layers: batch normalization (ResNet-50, Inception-v3,
//! DCGAN) and AlexNet's local response normalization.

use crate::cost::{CostProfile, OffloadClass};
use crate::shape::Shape;
use crate::tensor::Tensor;
use pim_common::units::Bytes;
use pim_common::Result;

/// Forward batch normalization over the channel axis of an NCHW tensor,
/// returning the normalized tensor together with the per-channel batch mean
/// and variance (needed by the backward pass).
///
/// # Examples
///
/// ```
/// use pim_tensor::ops::norm::batch_norm;
/// use pim_tensor::{Shape, Tensor};
///
/// # fn main() -> pim_common::Result<()> {
/// let x = Tensor::from_fn(Shape::new(vec![2, 1, 2, 2]), |i| i as f32);
/// let (y, mean, var) = batch_norm(&x, 1e-5)?;
/// assert!((mean[0] - 3.5).abs() < 1e-5);
/// assert!(var[0] > 0.0);
/// assert!(y.sum().abs() < 1e-4); // normalized output is zero-mean
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`pim_common::PimError::ShapeMismatch`] for non-4-D input.
pub fn batch_norm(input: &Tensor, epsilon: f32) -> Result<(Tensor, Vec<f32>, Vec<f32>)> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let per_channel = (n * h * w) as f32;
    let mut mean = vec![0.0f32; c];
    let mut var = vec![0.0f32; c];
    for ci in 0..c {
        let mut acc = 0.0f32;
        for ni in 0..n {
            for hi in 0..h {
                for wi in 0..w {
                    acc += input.at4(ni, ci, hi, wi);
                }
            }
        }
        mean[ci] = acc / per_channel;
        let mut acc2 = 0.0f32;
        for ni in 0..n {
            for hi in 0..h {
                for wi in 0..w {
                    let d = input.at4(ni, ci, hi, wi) - mean[ci];
                    acc2 += d * d;
                }
            }
        }
        var[ci] = acc2 / per_channel;
    }
    let mut out = Tensor::zeros(input.shape().clone());
    for ni in 0..n {
        for ci in 0..c {
            let inv_std = 1.0 / (var[ci] + epsilon).sqrt();
            for hi in 0..h {
                for wi in 0..w {
                    out.set4(
                        ni,
                        ci,
                        hi,
                        wi,
                        (input.at4(ni, ci, hi, wi) - mean[ci]) * inv_std,
                    );
                }
            }
        }
    }
    Ok((out, mean, var))
}

/// Analytic cost of the forward batch normalization (`FusedBatchNorm`):
/// reduction + normalize sweeps; divide/sqrt make it partially multiply/add.
///
/// # Errors
///
/// Returns [`pim_common::PimError::ShapeMismatch`] for non-4-D input.
pub fn batch_norm_cost(input: &Shape) -> Result<CostProfile> {
    input.as_nchw()?;
    let n = input.numel() as f64;
    let muls = n * 2.0;
    let adds = n * 3.0;
    let other = n * 0.5; // per-channel sqrt/div amortized over elements
    Ok(CostProfile::compute(
        muls,
        adds,
        other,
        Bytes::new(n * 4.0 * 2.0),
        Bytes::new(n * 4.0),
        OffloadClass::PartiallyMulAdd {
            ma_fraction: (muls + adds) / (muls + adds + other),
        },
        128,
    ))
}

/// Analytic cost of the batch-normalization gradient
/// (`FusedBatchNormGrad`): roughly twice the forward sweeps.
///
/// # Errors
///
/// Returns [`pim_common::PimError::ShapeMismatch`] for non-4-D input.
pub fn batch_norm_grad_cost(input: &Shape) -> Result<CostProfile> {
    input.as_nchw()?;
    let n = input.numel() as f64;
    let muls = n * 4.0;
    let adds = n * 5.0;
    let other = n * 0.8;
    Ok(CostProfile::compute(
        muls,
        adds,
        other,
        Bytes::new(n * 4.0 * 3.0),
        Bytes::new(n * 4.0),
        OffloadClass::PartiallyMulAdd {
            ma_fraction: (muls + adds) / (muls + adds + other),
        },
        128,
    ))
}

/// Forward local response normalization across channels (AlexNet's `LRN`),
/// with the standard radius-2, alpha 1e-4, beta 0.75 parameters.
///
/// # Errors
///
/// Returns [`pim_common::PimError::ShapeMismatch`] for non-4-D input.
pub fn lrn(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let (radius, alpha, beta, bias) = (2isize, 1e-4f32, 0.75f32, 2.0f32);
    let mut out = Tensor::zeros(input.shape().clone());
    for ni in 0..n {
        for ci in 0..c as isize {
            for hi in 0..h {
                for wi in 0..w {
                    let mut acc = 0.0f32;
                    for cj in (ci - radius).max(0)..=(ci + radius).min(c as isize - 1) {
                        let v = input.at4(ni, cj as usize, hi, wi);
                        acc += v * v;
                    }
                    let denom = (bias + alpha * acc).powf(beta);
                    out.set4(
                        ni,
                        ci as usize,
                        hi,
                        wi,
                        input.at4(ni, ci as usize, hi, wi) / denom,
                    );
                }
            }
        }
    }
    Ok(out)
}

/// Analytic cost of `LRN`: a 5-wide squared window plus a power and divide
/// per element.
///
/// # Errors
///
/// Returns [`pim_common::PimError::ShapeMismatch`] for non-4-D input.
pub fn lrn_cost(input: &Shape) -> Result<CostProfile> {
    input.as_nchw()?;
    let n = input.numel() as f64;
    let muls = n * 5.0;
    let adds = n * 4.0;
    let other = n * 12.0; // powf + div per element dominate LRN kernels
    Ok(CostProfile::compute(
        muls,
        adds,
        other,
        Bytes::new(n * 4.0 * 1.5),
        Bytes::new(n * 4.0),
        OffloadClass::PartiallyMulAdd {
            ma_fraction: (muls + adds) / (muls + adds + other),
        },
        9,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn batch_norm_zero_means_unit_variance() {
        let x = Tensor::from_fn(Shape::new(vec![4, 2, 3, 3]), |i| ((i * 13) % 29) as f32);
        let (y, _, _) = batch_norm(&x, 1e-5).unwrap();
        let (n, c, h, w) = y.shape().as_nchw().unwrap();
        for ci in 0..c {
            let mut mean = 0.0f64;
            let mut var = 0.0f64;
            let count = (n * h * w) as f64;
            for ni in 0..n {
                for hi in 0..h {
                    for wi in 0..w {
                        mean += f64::from(y.at4(ni, ci, hi, wi));
                    }
                }
            }
            mean /= count;
            for ni in 0..n {
                for hi in 0..h {
                    for wi in 0..w {
                        var += (f64::from(y.at4(ni, ci, hi, wi)) - mean).powi(2);
                    }
                }
            }
            var /= count;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn constant_input_normalizes_to_zero() {
        let x = Tensor::full(Shape::new(vec![2, 1, 2, 2]), 7.0);
        let (y, mean, var) = batch_norm(&x, 1e-5).unwrap();
        assert_eq!(mean[0], 7.0);
        assert_eq!(var[0], 0.0);
        assert!(y.data().iter().all(|&v| v.abs() < 1e-2));
    }

    #[test]
    fn lrn_dampens_large_activations() {
        let x = Tensor::full(Shape::new(vec![1, 5, 1, 1]), 10.0);
        let y = lrn(&x).unwrap();
        // Every output is shrunk by the squared-sum denominator.
        for &v in y.data() {
            assert!(v < 10.0);
            assert!(v > 0.0);
        }
    }

    #[test]
    fn costs_are_partially_mul_add() {
        let shape = Shape::new(vec![8, 16, 14, 14]);
        for cost in [
            batch_norm_cost(&shape).unwrap(),
            batch_norm_grad_cost(&shape).unwrap(),
            lrn_cost(&shape).unwrap(),
        ] {
            assert!(matches!(cost.class, OffloadClass::PartiallyMulAdd { .. }));
            assert!(cost.is_well_formed());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn batch_norm_is_shift_invariant(shift in -5.0f32..5.0) {
            let x = Tensor::from_fn(Shape::new(vec![2, 1, 3, 3]), |i| ((i * 7) % 11) as f32);
            let shifted = Tensor::from_fn(x.shape().clone(), |i| x.data()[i] + shift);
            let (y1, _, _) = batch_norm(&x, 1e-5).unwrap();
            let (y2, _, _) = batch_norm(&shifted, 1e-5).unwrap();
            prop_assert!(y1.max_abs_diff(&y2).unwrap() < 1e-3);
        }
    }
}
