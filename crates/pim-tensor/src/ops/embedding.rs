//! Embedding lookup and its scatter gradient (Word2vec, LSTM input layer).
//!
//! These are gather/scatter operations: random-pattern data movement with a
//! trickle of arithmetic, evaluated in the paper's mixed-workload study
//! (§VI-F) where Word2vec and LSTM co-run with a CNN.

use crate::cost::{CostProfile, OffloadClass};
use crate::shape::Shape;
use crate::tensor::Tensor;
use pim_common::access::AccessPattern;
use pim_common::units::Bytes;
use pim_common::{PimError, Result};

/// Gathers rows of `table` (`[V, D]`) selected by `indices` into a
/// `[indices.len(), D]` matrix (`EmbeddingLookup` / `Gather`).
///
/// # Examples
///
/// ```
/// use pim_tensor::ops::embedding::embedding_lookup;
/// use pim_tensor::{Shape, Tensor};
///
/// # fn main() -> pim_common::Result<()> {
/// let table = Tensor::from_fn(Shape::new(vec![3, 2]), |i| i as f32);
/// let out = embedding_lookup(&table, &[2, 0])?;
/// assert_eq!(out.data(), &[4.0, 5.0, 0.0, 1.0]);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`PimError::InvalidArgument`] for out-of-range indices and
/// [`PimError::ShapeMismatch`] for non-matrix tables.
pub fn embedding_lookup(table: &Tensor, indices: &[usize]) -> Result<Tensor> {
    let (v, d) = table.shape().as_matrix()?;
    let mut out = Tensor::zeros(Shape::new(vec![indices.len(), d]));
    for (row, &idx) in indices.iter().enumerate() {
        if idx >= v {
            return Err(PimError::invalid(
                "embedding_lookup",
                format!("index {idx} out of range for vocabulary {v}"),
            ));
        }
        for j in 0..d {
            out.set2(row, j, table.at2(idx, j));
        }
    }
    Ok(out)
}

/// Scatters gradients back into a zeroed table-shaped tensor
/// (`EmbeddingGrad` / the sparse half of `ApplyAdam` for embeddings).
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when `grad_output` is not
/// `[indices.len(), D]`, and [`PimError::InvalidArgument`] for out-of-range
/// indices.
pub fn embedding_grad(
    table_shape: &Shape,
    grad_output: &Tensor,
    indices: &[usize],
) -> Result<Tensor> {
    let (v, d) = table_shape.as_matrix()?;
    let (rows, gd) = grad_output.shape().as_matrix()?;
    if rows != indices.len() || gd != d {
        return Err(PimError::ShapeMismatch {
            context: "embedding_grad",
            expected: vec![indices.len(), d],
            actual: vec![rows, gd],
        });
    }
    let mut grad_table = Tensor::zeros(table_shape.clone());
    for (row, &idx) in indices.iter().enumerate() {
        if idx >= v {
            return Err(PimError::invalid(
                "embedding_grad",
                format!("index {idx} out of range for vocabulary {v}"),
            ));
        }
        for j in 0..d {
            let cur = grad_table.at2(idx, j);
            grad_table.set2(idx, j, cur + grad_output.at2(row, j));
        }
    }
    Ok(grad_table)
}

/// Analytic cost of the lookup: random-pattern reads of the selected rows.
pub fn embedding_lookup_cost(dim: usize, batch: usize) -> CostProfile {
    let moved = (dim * batch) as f64 * 4.0;
    CostProfile::movement(Bytes::new(moved), Bytes::new(moved), AccessPattern::Random)
}

/// Analytic cost of the scatter gradient: random-pattern read-modify-write
/// plus one add per element.
pub fn embedding_grad_cost(dim: usize, batch: usize) -> CostProfile {
    let n = (dim * batch) as f64;
    CostProfile::compute(
        0.0,
        n,
        n, // index decode
        Bytes::new(n * 4.0 * 2.0),
        Bytes::new(n * 4.0),
        OffloadClass::NonMulAdd,
        0,
    )
    .with_pattern(AccessPattern::Random)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lookup_gathers_rows() {
        let table = Tensor::from_fn(Shape::new(vec![4, 3]), |i| i as f32);
        let out = embedding_lookup(&table, &[1, 1, 3]).unwrap();
        assert_eq!(out.shape().dims(), &[3, 3]);
        assert_eq!(out.at2(0, 0), 3.0);
        assert_eq!(out.at2(2, 2), 11.0);
    }

    #[test]
    fn lookup_rejects_out_of_range() {
        let table = Tensor::zeros(Shape::new(vec![2, 2]));
        assert!(embedding_lookup(&table, &[2]).is_err());
    }

    #[test]
    fn grad_accumulates_duplicate_indices() {
        let shape = Shape::new(vec![3, 2]);
        let g = Tensor::full(Shape::new(vec![2, 2]), 1.0);
        let grad = embedding_grad(&shape, &g, &[1, 1]).unwrap();
        assert_eq!(grad.at2(1, 0), 2.0);
        assert_eq!(grad.at2(0, 0), 0.0);
    }

    #[test]
    fn costs_use_random_pattern() {
        assert_eq!(
            embedding_lookup_cost(128, 64).pattern,
            AccessPattern::Random
        );
        assert_eq!(embedding_grad_cost(128, 64).pattern, AccessPattern::Random);
    }

    proptest! {
        #[test]
        fn lookup_then_grad_preserves_mass(
            v in 2usize..8, d in 1usize..6,
            idx_seed in proptest::collection::vec(0usize..1000, 1..10),
        ) {
            let table = Tensor::zeros(Shape::new(vec![v, d]));
            let indices: Vec<usize> = idx_seed.iter().map(|&i| i % v).collect();
            let looked = embedding_lookup(&table, &indices).unwrap();
            let g = Tensor::full(looked.shape().clone(), 1.0);
            let grad = embedding_grad(table.shape(), &g, &indices).unwrap();
            prop_assert!((grad.sum() - g.sum()).abs() < 1e-6);
        }
    }
}
