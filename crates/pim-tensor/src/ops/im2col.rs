//! The im2col + GEMM convolution path.
//!
//! Framework CPU kernels (the ones the paper profiles) lower `Conv2D` to an
//! im2col unfold followed by a matrix multiply. This module implements that
//! second, production-style path; its equivalence to the direct convolution
//! is property-tested, and its unfold is what justifies the input-stream
//! amplification factor in the conv cost model.

use crate::ops::matmul::{matmul, Transpose};
use crate::shape::{ConvGeometry, Shape};
use crate::tensor::Tensor;
use pim_common::Result;

/// Unfolds an NCHW input into the `[c*kh*kw, n*oh*ow]` im2col matrix.
///
/// Each column is one receptive-field window; zero padding materializes as
/// zero rows. The unfold *re-reads* every input element once per
/// overlapping window position — the traffic amplification the cost model
/// charges.
///
/// # Examples
///
/// ```
/// use pim_tensor::ops::im2col::im2col;
/// use pim_tensor::shape::{ConvGeometry, Shape};
/// use pim_tensor::Tensor;
///
/// # fn main() -> pim_common::Result<()> {
/// let x = Tensor::from_fn(Shape::new(vec![1, 1, 2, 2]), |i| i as f32);
/// let unfolded = im2col(&x, ConvGeometry::square(2, 1, 0))?;
/// assert_eq!(unfolded.shape().dims(), &[4, 1]);
/// assert_eq!(unfolded.data(), &[0.0, 1.0, 2.0, 3.0]);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns a shape error for non-4-D inputs.
pub fn im2col(input: &Tensor, geom: ConvGeometry) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let (oh, ow) = geom.output_hw(h, w);
    let rows = c * geom.kernel_h * geom.kernel_w;
    let cols = n * oh * ow;
    let mut out = Tensor::zeros(Shape::new(vec![rows, cols]));
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let col = (ni * oh + oy) * ow + ox;
                for ci in 0..c {
                    for ky in 0..geom.kernel_h {
                        for kx in 0..geom.kernel_w {
                            let row = (ci * geom.kernel_h + ky) * geom.kernel_w + kx;
                            let iy = (oy * geom.stride_h + ky) as isize - geom.pad_h as isize;
                            let ix = (ox * geom.stride_w + kx) as isize - geom.pad_w as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                out.set2(row, col, input.at4(ni, ci, iy as usize, ix as usize));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Forward convolution via im2col + GEMM — the lowering TensorFlow's CPU
/// kernels use. Numerically equivalent to [`crate::ops::conv::conv2d`].
///
/// # Errors
///
/// Returns a shape error when the operands are inconsistent.
pub fn conv2d_gemm(input: &Tensor, filter: &Tensor, geom: ConvGeometry) -> Result<Tensor> {
    let (n, _c, h, w) = input.shape().as_nchw()?;
    let (f, fc, kh, kw) = filter.shape().as_nchw()?;
    let (oh, ow) = geom.output_hw(h, w);
    let unfolded = im2col(input, geom)?;
    // Filters flatten to [f, c*kh*kw]; GEMM gives [f, n*oh*ow].
    let filter_mat = filter.clone().reshaped(Shape::new(vec![f, fc * kh * kw]))?;
    let gemm = matmul(&filter_mat, &unfolded, Transpose::NONE)?;
    // Rearrange [f, n*oh*ow] -> [n, f, oh, ow].
    let mut out = Tensor::zeros(Shape::new(vec![n, f, oh, ow]));
    for fi in 0..f {
        for ni in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let col = (ni * oh + oy) * ow + ox;
                    out.set4(ni, fi, oy, ox, gemm.at2(fi, col));
                }
            }
        }
    }
    Ok(out)
}

/// The unfold's read amplification: how many times the average input
/// element is re-read relative to a single sweep. This is the quantity the
/// conv cost model approximates with its `IM2COL_AMPLIFICATION` constant
/// (after cache reuse).
///
/// # Errors
///
/// Returns a shape error for non-4-D inputs.
pub fn unfold_amplification(input: &Shape, geom: ConvGeometry) -> Result<f64> {
    let (n, c, h, w) = input.as_nchw()?;
    let (oh, ow) = geom.output_hw(h, w);
    let unfolded_elems = (c * geom.window_len()) as f64 * (n * oh * ow) as f64;
    Ok(unfolded_elems / (n * c * h * w) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::conv::conv2d;
    use proptest::prelude::*;

    #[test]
    fn gemm_path_matches_direct_convolution() {
        let geom = ConvGeometry::square(3, 1, 1);
        let input = Tensor::from_fn(Shape::new(vec![2, 3, 6, 6]), |i| {
            ((i * 7) % 13) as f32 * 0.1
        });
        let filter = Tensor::from_fn(Shape::new(vec![4, 3, 3, 3]), |i| ((i * 5) % 9) as f32 * 0.2);
        let direct = conv2d(&input, &filter, geom).unwrap();
        let gemm = conv2d_gemm(&input, &filter, geom).unwrap();
        assert!(direct.max_abs_diff(&gemm).unwrap() < 1e-4);
    }

    #[test]
    fn amplification_matches_window_for_unit_stride() {
        // Stride-1 same-padded 3x3: every element read ~9 times.
        let geom = ConvGeometry::square(3, 1, 1);
        let amp = unfold_amplification(&Shape::new(vec![1, 8, 32, 32]), geom).unwrap();
        assert!((amp - 9.0).abs() < 0.01, "amp = {amp}");
    }

    #[test]
    fn strided_convs_amplify_less() {
        let dense = unfold_amplification(
            &Shape::new(vec![1, 3, 224, 224]),
            ConvGeometry::square(3, 1, 1),
        )
        .unwrap();
        let strided = unfold_amplification(
            &Shape::new(vec![1, 3, 227, 227]),
            ConvGeometry::square(11, 4, 0),
        )
        .unwrap();
        assert!(strided < dense);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn gemm_equals_direct_for_random_geometry(
            n in 1usize..3,
            c in 1usize..3,
            f in 1usize..3,
            hw in 3usize..7,
            k in 1usize..3,
            stride in 1usize..3,
        ) {
            prop_assume!(hw >= k);
            let geom = ConvGeometry::square(k, stride, 0);
            let input = Tensor::from_fn(
                Shape::new(vec![n, c, hw, hw]),
                |i| ((i * 11) % 23) as f32 * 0.1 - 1.0,
            );
            let filter = Tensor::from_fn(
                Shape::new(vec![f, c, k, k]),
                |i| ((i * 3) % 7) as f32 * 0.3 - 0.9,
            );
            let direct = conv2d(&input, &filter, geom).unwrap();
            let gemm = conv2d_gemm(&input, &filter, geom).unwrap();
            prop_assert!(direct.max_abs_diff(&gemm).unwrap() < 1e-3);
        }
    }
}
