//! Matrix multiplication (`MatMul`), the canonical fully multiply/add op.

use crate::cost::{CostProfile, OffloadClass};
use crate::shape::Shape;
use crate::tensor::Tensor;
use pim_common::units::Bytes;
use pim_common::{PimError, Result};

/// Whether an operand is used transposed.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Transpose {
    /// Transpose the left operand.
    pub a: bool,
    /// Transpose the right operand.
    pub b: bool,
}

impl Transpose {
    /// Neither operand transposed.
    pub const NONE: Transpose = Transpose { a: false, b: false };
}

fn operand_dims(shape: &Shape, transposed: bool, context: &'static str) -> Result<(usize, usize)> {
    let (r, c) = shape.as_matrix().map_err(|_| PimError::ShapeMismatch {
        context,
        expected: vec![2],
        actual: vec![shape.rank()],
    })?;
    Ok(if transposed { (c, r) } else { (r, c) })
}

/// Logical `(m, k, n)` dimensions of `a @ b` under the transpose flags.
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] for non-matrices or when the inner
/// dimensions disagree.
pub fn matmul_dims(a: &Shape, b: &Shape, t: Transpose) -> Result<(usize, usize, usize)> {
    let (m, ka) = operand_dims(a, t.a, "matmul lhs")?;
    let (kb, n) = operand_dims(b, t.b, "matmul rhs")?;
    if ka != kb {
        return Err(PimError::ShapeMismatch {
            context: "matmul inner dimension",
            expected: vec![ka],
            actual: vec![kb],
        });
    }
    Ok((m, ka, n))
}

/// Computes `a @ b` (with optional transposes) into a new `[m, n]` tensor.
///
/// # Examples
///
/// ```
/// use pim_tensor::ops::matmul::{matmul, Transpose};
/// use pim_tensor::{Shape, Tensor};
///
/// # fn main() -> pim_common::Result<()> {
/// let a = Tensor::from_vec(Shape::new(vec![2, 2]), vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::from_vec(Shape::new(vec![2, 2]), vec![5.0, 6.0, 7.0, 8.0])?;
/// let c = matmul(&a, &b, Transpose::NONE)?;
/// assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when the operands are not conformable
/// matrices.
pub fn matmul(a: &Tensor, b: &Tensor, t: Transpose) -> Result<Tensor> {
    let (m, k, n) = matmul_dims(a.shape(), b.shape(), t)?;
    let mut out = Tensor::zeros(Shape::new(vec![m, n]));
    let a_at = |i: usize, p: usize| if t.a { a.at2(p, i) } else { a.at2(i, p) };
    let b_at = |p: usize, j: usize| if t.b { b.at2(j, p) } else { b.at2(p, j) };
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a_at(i, p) * b_at(p, j);
            }
            out.set2(i, j, acc);
        }
    }
    Ok(out)
}

/// Analytic cost of `a @ b`: `m*n*k` multiplications, `m*n*(k-1)` additions,
/// streaming reads of both operands and a streaming write of the result.
///
/// The fixed-function parallelism is the dot-product unrolling the paper
/// describes for convolution windows: `k` multipliers plus `k - 1` adders.
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when the operands are not conformable.
pub fn matmul_cost(a: &Shape, b: &Shape, t: Transpose) -> Result<CostProfile> {
    let (m, k, n) = matmul_dims(a, b, t)?;
    let (m_f, k_f, n_f) = (m as f64, k as f64, n as f64);
    let muls = m_f * n_f * k_f;
    let adds = m_f * n_f * (k_f - 1.0).max(0.0);
    let bytes_read = Bytes::new((a.numel() + b.numel()) as f64 * 4.0);
    let bytes_written = Bytes::new(m_f * n_f * 4.0);
    Ok(CostProfile::compute(
        muls,
        adds,
        0.0,
        bytes_read,
        bytes_written,
        OffloadClass::FullyMulAdd,
        2 * k - 1,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_with_counts(a: &Tensor, b: &Tensor) -> (Tensor, u64, u64) {
        let (m, k) = a.shape().as_matrix().unwrap();
        let (_, n) = b.shape().as_matrix().unwrap();
        let mut out = Tensor::zeros(Shape::new(vec![m, n]));
        let (mut muls, mut adds) = (0u64, 0u64);
        for i in 0..m {
            for j in 0..n {
                let mut acc = a.at2(i, 0) * b.at2(0, j);
                muls += 1;
                for p in 1..k {
                    acc += a.at2(i, p) * b.at2(p, j);
                    muls += 1;
                    adds += 1;
                }
                out.set2(i, j, acc);
            }
        }
        (out, muls, adds)
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_fn(Shape::new(vec![3, 3]), |i| i as f32);
        let id = Tensor::from_fn(
            Shape::new(vec![3, 3]),
            |i| {
                if i % 4 == 0 {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let c = matmul(&a, &id, Transpose::NONE).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn transposes_agree_with_explicit_transposition() {
        let a = Tensor::from_fn(Shape::new(vec![2, 3]), |i| i as f32 + 1.0);
        let b = Tensor::from_fn(Shape::new(vec![2, 4]), |i| (i as f32).sin());
        // a^T (3x2) @ b (2x4) = 3x4
        let via_flag = matmul(&a, &b, Transpose { a: true, b: false }).unwrap();
        // Build explicit a^T.
        let mut at = Tensor::zeros(Shape::new(vec![3, 2]));
        for r in 0..2 {
            for c in 0..3 {
                at.set2(c, r, a.at2(r, c));
            }
        }
        let explicit = matmul(&at, &b, Transpose::NONE).unwrap();
        assert!(via_flag.max_abs_diff(&explicit).unwrap() < 1e-6);
    }

    #[test]
    fn mismatched_inner_dims_rejected() {
        let a = Tensor::zeros(Shape::new(vec![2, 3]));
        let b = Tensor::zeros(Shape::new(vec![4, 2]));
        assert!(matmul(&a, &b, Transpose::NONE).is_err());
    }

    #[test]
    fn cost_counts_match_instrumented_execution() {
        let a = Tensor::from_fn(Shape::new(vec![4, 6]), |i| i as f32);
        let b = Tensor::from_fn(Shape::new(vec![6, 5]), |i| i as f32 * 0.5);
        let (_, muls, adds) = naive_with_counts(&a, &b);
        let cost = matmul_cost(a.shape(), b.shape(), Transpose::NONE).unwrap();
        assert_eq!(cost.muls, muls as f64);
        assert_eq!(cost.adds, adds as f64);
        assert_eq!(cost.class, OffloadClass::FullyMulAdd);
    }

    #[test]
    fn ff_parallelism_matches_dot_product_width() {
        let cost = matmul_cost(
            &Shape::new(vec![8, 121]),
            &Shape::new(vec![121, 8]),
            Transpose::NONE,
        )
        .unwrap();
        // 121 muls + 120 adds, the paper's 11x11 example.
        assert_eq!(cost.ff_parallelism, 241);
    }

    proptest! {
        #[test]
        fn analytic_counts_match_for_random_shapes(
            m in 1usize..6, k in 1usize..6, n in 1usize..6,
        ) {
            let a = Tensor::from_fn(Shape::new(vec![m, k]), |i| i as f32);
            let b = Tensor::from_fn(Shape::new(vec![k, n]), |i| i as f32);
            let (expected, muls, adds) = naive_with_counts(&a, &b);
            let got = matmul(&a, &b, Transpose::NONE).unwrap();
            prop_assert!(got.max_abs_diff(&expected).unwrap() < 1e-4);
            let cost = matmul_cost(a.shape(), b.shape(), Transpose::NONE).unwrap();
            prop_assert_eq!(cost.muls, muls as f64);
            prop_assert_eq!(cost.adds, adds as f64);
            prop_assert!(cost.is_well_formed());
        }

        #[test]
        fn matmul_is_linear_in_first_argument(
            m in 1usize..4, k in 1usize..4, n in 1usize..4, scale in -4.0f32..4.0,
        ) {
            let a = Tensor::from_fn(Shape::new(vec![m, k]), |i| (i as f32).cos());
            let b = Tensor::from_fn(Shape::new(vec![k, n]), |i| (i as f32).sin());
            let scaled_a = Tensor::from_vec(
                a.shape().clone(),
                a.data().iter().map(|&x| x * scale).collect(),
            ).unwrap();
            let lhs = matmul(&scaled_a, &b, Transpose::NONE).unwrap();
            let base = matmul(&a, &b, Transpose::NONE).unwrap();
            let rhs = Tensor::from_vec(
                base.shape().clone(),
                base.data().iter().map(|&x| x * scale).collect(),
            ).unwrap();
            prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
        }
    }
}
