//! Elementwise arithmetic and tensor-reshuffling operations.
//!
//! `Mul` shows up in DCGAN's top-5 compute list (Table I); `Slice` in its
//! top-5 memory list — the paper's example of a small operation that the
//! operation pipeline keeps off the critical path.

use crate::cost::{CostProfile, OffloadClass};
use crate::shape::Shape;
use crate::tensor::Tensor;
use pim_common::access::AccessPattern;
use pim_common::units::Bytes;
use pim_common::{PimError, Result};
use serde::{Deserialize, Serialize};

/// Supported elementwise binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// Elementwise addition (`Add`).
    Add,
    /// Elementwise subtraction (`Sub`).
    Sub,
    /// Elementwise multiplication (`Mul`).
    Mul,
}

impl BinaryOp {
    fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
        }
    }
}

/// Applies `op` elementwise over two same-shaped tensors.
///
/// # Examples
///
/// ```
/// use pim_tensor::ops::elementwise::{binary, BinaryOp};
/// use pim_tensor::{Shape, Tensor};
///
/// # fn main() -> pim_common::Result<()> {
/// let a = Tensor::from_vec(Shape::new(vec![2]), vec![1.0, 2.0])?;
/// let b = Tensor::from_vec(Shape::new(vec![2]), vec![3.0, 4.0])?;
/// let c = binary(&a, &b, BinaryOp::Mul)?;
/// assert_eq!(c.data(), &[3.0, 8.0]);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when shapes disagree.
pub fn binary(a: &Tensor, b: &Tensor, op: BinaryOp) -> Result<Tensor> {
    if a.shape() != b.shape() {
        return Err(PimError::ShapeMismatch {
            context: "elementwise binary",
            expected: a.shape().dims().to_vec(),
            actual: b.shape().dims().to_vec(),
        });
    }
    Ok(Tensor::from_fn(a.shape().clone(), |i| {
        op.apply(a.data()[i], b.data()[i])
    }))
}

/// Multiplies a tensor by a scalar.
pub fn scale(a: &Tensor, factor: f32) -> Tensor {
    Tensor::from_fn(a.shape().clone(), |i| a.data()[i] * factor)
}

/// Copies `len` elements starting at flat offset `start` (`Slice`).
///
/// # Errors
///
/// Returns [`PimError::InvalidArgument`] when the range exceeds the input.
pub fn slice(input: &Tensor, start: usize, len: usize) -> Result<Tensor> {
    if start + len > input.numel() {
        return Err(PimError::invalid(
            "slice",
            format!(
                "range {start}..{} exceeds {} elements",
                start + len,
                input.numel()
            ),
        ));
    }
    Tensor::from_vec(
        Shape::new(vec![len]),
        input.data()[start..start + len].to_vec(),
    )
}

/// Concatenates flat tensors end to end (`Concat`).
pub fn concat(parts: &[&Tensor]) -> Tensor {
    let mut data = Vec::with_capacity(parts.iter().map(|t| t.numel()).sum());
    for p in parts {
        data.extend_from_slice(p.data());
    }
    let n = data.len();
    Tensor::from_vec(Shape::new(vec![n]), data).expect("length computed from parts")
}

/// Inverted-dropout forward pass with a pre-generated keep mask
/// (`Dropout`). The mask holds `1.0 / keep_prob` for kept elements and `0.0`
/// for dropped ones, so applying it is a plain elementwise multiply.
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when the mask shape disagrees.
pub fn dropout_apply(input: &Tensor, mask: &Tensor) -> Result<Tensor> {
    binary(input, mask, BinaryOp::Mul)
}

/// Analytic cost of an elementwise binary op: fully multiply/add, traffic of
/// three tensors.
pub fn binary_cost(shape: &Shape, op: BinaryOp) -> CostProfile {
    let n = shape.numel() as f64;
    let (muls, adds) = match op {
        BinaryOp::Add | BinaryOp::Sub => (0.0, n),
        BinaryOp::Mul => (n, 0.0),
    };
    CostProfile::compute(
        muls,
        adds,
        0.0,
        Bytes::new(n * 4.0 * 2.0),
        Bytes::new(n * 4.0),
        OffloadClass::FullyMulAdd,
        256,
    )
}

/// Analytic cost of `Slice`: pure data movement.
pub fn slice_cost(len: usize) -> CostProfile {
    CostProfile::movement(
        Bytes::new(len as f64 * 4.0),
        Bytes::new(len as f64 * 4.0),
        AccessPattern::Sequential,
    )
}

/// Analytic cost of `Concat` over the given part lengths.
pub fn concat_cost(part_lens: &[usize]) -> CostProfile {
    let total: usize = part_lens.iter().sum();
    CostProfile::movement(
        Bytes::new(total as f64 * 4.0),
        Bytes::new(total as f64 * 4.0),
        AccessPattern::Sequential,
    )
}

/// Analytic cost of `Dropout` (mask generation + apply): the RNG and compare
/// are non-multiply/add, the apply is a multiply.
pub fn dropout_cost(shape: &Shape) -> CostProfile {
    let n = shape.numel() as f64;
    let muls = n;
    let other = n * 3.0; // rng + compare + select
    CostProfile::compute(
        muls,
        0.0,
        other,
        Bytes::new(n * 4.0 * 2.0),
        Bytes::new(n * 4.0),
        OffloadClass::PartiallyMulAdd {
            ma_fraction: muls / (muls + other),
        },
        64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn binary_ops_compute() {
        let a = Tensor::from_vec(Shape::new(vec![2]), vec![4.0, 9.0]).unwrap();
        let b = Tensor::from_vec(Shape::new(vec![2]), vec![2.0, 3.0]).unwrap();
        assert_eq!(binary(&a, &b, BinaryOp::Add).unwrap().data(), &[6.0, 12.0]);
        assert_eq!(binary(&a, &b, BinaryOp::Sub).unwrap().data(), &[2.0, 6.0]);
        assert_eq!(binary(&a, &b, BinaryOp::Mul).unwrap().data(), &[8.0, 27.0]);
    }

    #[test]
    fn binary_validates_shapes() {
        let a = Tensor::zeros(Shape::new(vec![2]));
        let b = Tensor::zeros(Shape::new(vec![3]));
        assert!(binary(&a, &b, BinaryOp::Add).is_err());
    }

    #[test]
    fn slice_extracts_range() {
        let t = Tensor::from_fn(Shape::new(vec![10]), |i| i as f32);
        let s = slice(&t, 3, 4).unwrap();
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0]);
        assert!(slice(&t, 8, 4).is_err());
    }

    #[test]
    fn concat_joins_parts() {
        let a = Tensor::from_vec(Shape::new(vec![2]), vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(Shape::new(vec![1]), vec![3.0]).unwrap();
        let c = concat(&[&a, &b]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn slice_is_data_movement() {
        let cost = slice_cost(1024);
        assert_eq!(cost.class, OffloadClass::DataMovement);
        assert_eq!(cost.total_flops(), 0.0);
    }

    #[test]
    fn dropout_scales_kept_elements() {
        let x = Tensor::full(Shape::new(vec![4]), 1.0);
        let mask = Tensor::from_vec(Shape::new(vec![4]), vec![2.0, 0.0, 2.0, 0.0]).unwrap();
        let y = dropout_apply(&x, &mask).unwrap();
        assert_eq!(y.data(), &[2.0, 0.0, 2.0, 0.0]);
    }

    proptest! {
        #[test]
        fn slice_concat_roundtrip(
            data in proptest::collection::vec(-10.0f32..10.0, 2..32),
            cut_frac in 0.1f64..0.9,
        ) {
            let n = data.len();
            let cut = ((n as f64 * cut_frac) as usize).clamp(1, n - 1);
            let t = Tensor::from_vec(Shape::new(vec![n]), data.clone()).unwrap();
            let left = slice(&t, 0, cut).unwrap();
            let right = slice(&t, cut, n - cut).unwrap();
            let rejoined = concat(&[&left, &right]);
            prop_assert_eq!(rejoined.data(), &data[..]);
        }

        #[test]
        fn mul_commutes(vals in proptest::collection::vec(-5.0f32..5.0, 1..16)) {
            let n = vals.len();
            let a = Tensor::from_vec(Shape::new(vec![n]), vals.clone()).unwrap();
            let b = Tensor::from_fn(Shape::new(vec![n]), |i| (i as f32) - 2.0);
            let ab = binary(&a, &b, BinaryOp::Mul).unwrap();
            let ba = binary(&b, &a, BinaryOp::Mul).unwrap();
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn binary_cost_tracks_op_kind(n in 1usize..10_000) {
            let shape = Shape::new(vec![n]);
            prop_assert_eq!(binary_cost(&shape, BinaryOp::Mul).muls, n as f64);
            prop_assert_eq!(binary_cost(&shape, BinaryOp::Add).adds, n as f64);
            prop_assert!(binary_cost(&shape, BinaryOp::Sub).is_well_formed());
        }
    }
}
