//! Softmax and the fused softmax-cross-entropy loss with gradient.

use crate::cost::{CostProfile, OffloadClass};
use crate::shape::Shape;
use crate::tensor::Tensor;
use pim_common::units::Bytes;
use pim_common::{PimError, Result};

/// Row-wise numerically stable softmax of a `[N, C]` matrix.
///
/// # Examples
///
/// ```
/// use pim_tensor::ops::softmax::softmax;
/// use pim_tensor::{Shape, Tensor};
///
/// # fn main() -> pim_common::Result<()> {
/// let x = Tensor::from_vec(Shape::new(vec![1, 2]), vec![0.0, 0.0])?;
/// let y = softmax(&x)?;
/// assert!((y.data()[0] - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] for non-matrices.
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    let (n, c) = logits.shape().as_matrix()?;
    let mut out = Tensor::zeros(logits.shape().clone());
    for r in 0..n {
        let mut max = f32::NEG_INFINITY;
        for j in 0..c {
            max = max.max(logits.at2(r, j));
        }
        let mut denom = 0.0f32;
        for j in 0..c {
            denom += (logits.at2(r, j) - max).exp();
        }
        for j in 0..c {
            out.set2(r, j, (logits.at2(r, j) - max).exp() / denom);
        }
    }
    Ok(out)
}

/// Mean softmax-cross-entropy loss against one-hot labels, returning the
/// scalar loss and the gradient with respect to the logits.
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when `labels.len()` differs from the
/// batch size or a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    let (n, c) = logits.shape().as_matrix()?;
    if labels.len() != n {
        return Err(PimError::ShapeMismatch {
            context: "softmax_cross_entropy labels",
            expected: vec![n],
            actual: vec![labels.len()],
        });
    }
    let probs = softmax(logits)?;
    let mut grad = probs.clone();
    let mut loss = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        if label >= c {
            return Err(PimError::invalid(
                "softmax_cross_entropy",
                format!("label {label} out of range for {c} classes"),
            ));
        }
        loss -= f64::from(probs.at2(r, label).max(1e-12)).ln();
        let v = grad.at2(r, label) - 1.0;
        grad.set2(r, label, v);
    }
    // Mean over the batch.
    let scale = 1.0 / n as f32;
    for v in grad.data_mut() {
        *v *= scale;
    }
    Ok(((loss / n as f64) as f32, grad))
}

/// Analytic cost of the fused softmax-cross-entropy (forward + gradient):
/// exp/log/div dominated, hence [`OffloadClass::NonMulAdd`].
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] for non-matrices.
pub fn softmax_xent_cost(logits: &Shape) -> Result<CostProfile> {
    let (n, c) = logits.as_matrix()?;
    let elems = (n * c) as f64;
    Ok(CostProfile::compute(
        elems,       // probability scaling
        elems * 2.0, // max/denominator accumulations
        elems * 5.0, // exp + div + log
        Bytes::new(elems * 4.0 * 2.0),
        Bytes::new(elems * 4.0),
        OffloadClass::NonMulAdd,
        0,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rows_sum_to_one() {
        let x = Tensor::from_fn(Shape::new(vec![3, 5]), |i| (i as f32).sin() * 3.0);
        let y = softmax(&x).unwrap();
        for r in 0..3 {
            let s: f32 = (0..5).map(|j| y.at2(r, j)).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn stable_under_large_logits() {
        let x = Tensor::from_vec(Shape::new(vec![1, 2]), vec![1000.0, 1000.0]).unwrap();
        let y = softmax(&x).unwrap();
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn loss_is_log_c_for_uniform_logits() {
        let c = 8usize;
        let x = Tensor::zeros(Shape::new(vec![4, c]));
        let (loss, _) = softmax_cross_entropy(&x, &[0, 1, 2, 3]).unwrap();
        assert!((loss - (c as f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn rejects_bad_labels() {
        let x = Tensor::zeros(Shape::new(vec![2, 3]));
        assert!(softmax_cross_entropy(&x, &[0]).is_err());
        assert!(softmax_cross_entropy(&x, &[0, 9]).is_err());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let x = Tensor::from_fn(Shape::new(vec![2, 3]), |i| ((i * 5) % 7) as f32 * 0.3);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&x, &labels).unwrap();
        let eps = 1e-2f32;
        for idx in 0..x.numel() {
            let mut plus = x.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = x.clone();
            minus.data_mut()[idx] -= eps;
            let (lp, _) = softmax_cross_entropy(&plus, &labels).unwrap();
            let (lm, _) = softmax_cross_entropy(&minus, &labels).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[idx]).abs() < 1e-3,
                "grad[{idx}]: numeric {numeric} analytic {}",
                grad.data()[idx]
            );
        }
    }

    proptest! {
        #[test]
        fn gradient_rows_sum_to_zero(
            n in 1usize..5, c in 2usize..6, seed in 0u32..1000,
        ) {
            let x = Tensor::from_fn(
                Shape::new(vec![n, c]),
                |i| (((i as u32).wrapping_add(seed).wrapping_mul(2_654_435_761)) % 1000) as f32 / 500.0 - 1.0,
            );
            let labels: Vec<usize> = (0..n).map(|i| i % c).collect();
            let (_, grad) = softmax_cross_entropy(&x, &labels).unwrap();
            for r in 0..n {
                let s: f32 = (0..c).map(|j| grad.at2(r, j)).sum();
                prop_assert!(s.abs() < 1e-5, "row {r} sums to {s}");
            }
        }

        #[test]
        fn cost_is_well_formed(n in 1usize..64, c in 1usize..1024) {
            let cost = softmax_xent_cost(&Shape::new(vec![n, c])).unwrap();
            prop_assert!(cost.is_well_formed());
            prop_assert_eq!(cost.class, OffloadClass::NonMulAdd);
        }
    }
}
