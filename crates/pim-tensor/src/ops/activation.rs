//! Activation functions and their gradients.
//!
//! `Relu` is the paper's example of "an activation function that
//! incorporates conditional statement" — a [`OffloadClass::NonMulAdd`]
//! operation despite being arithmetically trivial. Sigmoid/tanh (LSTM,
//! DCGAN) add transcendentals on top.

use crate::cost::{CostProfile, OffloadClass};
use crate::shape::Shape;
use crate::tensor::Tensor;
use pim_common::units::Bytes;
use pim_common::{PimError, Result};
use serde::{Deserialize, Serialize};

/// The supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// `max(alpha*x, x)` with `alpha = 0.2` (DCGAN discriminator).
    LeakyRelu,
    /// `1 / (1 + e^-x)` (LSTM gates).
    Sigmoid,
    /// Hyperbolic tangent (LSTM cell, DCGAN generator output).
    Tanh,
}

impl Activation {
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.2 * x
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the *output* value `y = f(x)` for
    /// sigmoid/tanh, and of the input sign for the relu family.
    fn derivative(self, x: f32, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.2
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }

    /// Non-multiply/add operations per element (compares for the relu
    /// family; exp/div for the transcendental pair).
    fn other_flops_per_elem(self) -> f64 {
        match self {
            Activation::Relu | Activation::LeakyRelu => 1.0,
            Activation::Sigmoid => 4.0,
            Activation::Tanh => 6.0,
        }
    }
}

/// Applies the activation elementwise.
///
/// # Examples
///
/// ```
/// use pim_tensor::ops::activation::{activate, Activation};
/// use pim_tensor::{Shape, Tensor};
///
/// # fn main() -> pim_common::Result<()> {
/// let x = Tensor::from_vec(Shape::new(vec![3]), vec![-1.0, 0.0, 2.0])?;
/// let y = activate(&x, Activation::Relu)?;
/// assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Currently infallible for finite inputs; returns `Err` only to keep the
/// signature uniform with the other ops.
pub fn activate(input: &Tensor, kind: Activation) -> Result<Tensor> {
    Ok(Tensor::from_fn(input.shape().clone(), |i| {
        kind.apply(input.data()[i])
    }))
}

/// Gradient of an activation given the upstream gradient, the original
/// input, and the forward output.
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when the three tensors disagree in
/// shape.
pub fn activate_grad(
    grad_output: &Tensor,
    input: &Tensor,
    output: &Tensor,
    kind: Activation,
) -> Result<Tensor> {
    if grad_output.shape() != input.shape() || input.shape() != output.shape() {
        return Err(PimError::ShapeMismatch {
            context: "activate_grad",
            expected: input.shape().dims().to_vec(),
            actual: grad_output.shape().dims().to_vec(),
        });
    }
    Ok(Tensor::from_fn(input.shape().clone(), |i| {
        grad_output.data()[i] * kind.derivative(input.data()[i], output.data()[i])
    }))
}

/// Analytic cost of the forward activation.
pub fn activation_cost(input: &Shape, kind: Activation) -> CostProfile {
    let n = input.numel() as f64;
    CostProfile::compute(
        0.0,
        0.0,
        n * kind.other_flops_per_elem(),
        Bytes::new(n * 4.0),
        Bytes::new(n * 4.0),
        OffloadClass::NonMulAdd,
        0,
    )
}

/// Analytic cost of the activation gradient (one extra multiply per element
/// for the chain rule, still dominated by the conditional/transcendental).
pub fn activation_grad_cost(input: &Shape, kind: Activation) -> CostProfile {
    let n = input.numel() as f64;
    let muls = n;
    let other = n * kind.other_flops_per_elem();
    CostProfile::compute(
        muls,
        0.0,
        other,
        Bytes::new(n * 4.0 * 3.0),
        Bytes::new(n * 4.0),
        OffloadClass::PartiallyMulAdd {
            ma_fraction: muls / (muls + other),
        },
        1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(Shape::new(vec![4]), vec![-2.0, -0.5, 0.5, 2.0]).unwrap();
        let y = activate(&x, Activation::Relu).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn leaky_relu_leaks() {
        let x = Tensor::from_vec(Shape::new(vec![2]), vec![-1.0, 1.0]).unwrap();
        let y = activate(&x, Activation::LeakyRelu).unwrap();
        assert_eq!(y.data(), &[-0.2, 1.0]);
    }

    #[test]
    fn sigmoid_is_bounded_and_centered() {
        let x = Tensor::from_vec(Shape::new(vec![3]), vec![-10.0, 0.0, 10.0]).unwrap();
        let y = activate(&x, Activation::Sigmoid).unwrap();
        assert!(y.data()[0] < 0.001);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 0.999);
    }

    #[test]
    fn grad_checks_shapes() {
        let a = Tensor::zeros(Shape::new(vec![2]));
        let b = Tensor::zeros(Shape::new(vec![3]));
        assert!(activate_grad(&a, &b, &b, Activation::Relu).is_err());
    }

    #[test]
    fn relu_is_non_mul_add_class() {
        let cost = activation_cost(&Shape::new(vec![1024]), Activation::Relu);
        assert_eq!(cost.class, OffloadClass::NonMulAdd);
    }

    proptest! {
        #[test]
        fn gradients_match_finite_differences(
            x in -3.0f32..3.0,
            kind_idx in 0usize..4,
        ) {
            let kind = [
                Activation::Relu,
                Activation::LeakyRelu,
                Activation::Sigmoid,
                Activation::Tanh,
            ][kind_idx];
            // Avoid the relu kink where the derivative is discontinuous.
            prop_assume!(x.abs() > 1e-2);
            let eps = 1e-3f32;
            let numeric = (kind.apply(x + eps) - kind.apply(x - eps)) / (2.0 * eps);
            let analytic = kind.derivative(x, kind.apply(x));
            prop_assert!(
                (numeric - analytic).abs() < 1e-2,
                "{kind:?} at {x}: numeric {numeric} analytic {analytic}"
            );
        }

        #[test]
        fn costs_scale_with_elements(n in 1usize..10_000) {
            let cost = activation_cost(&Shape::new(vec![n]), Activation::Tanh);
            prop_assert_eq!(cost.other_flops, n as f64 * 6.0);
            prop_assert!(cost.is_well_formed());
        }
    }
}
