//! NN training operations: numeric kernels and analytic cost models.
//!
//! Every operation the paper profiles (Table I) has two faces here:
//!
//! * an **execute** function that performs the real `f32` math (used by the
//!   eager executor in `pim-graph` for functional training), and
//! * a **cost** function that derives a [`crate::cost::CostProfile`] purely
//!   from shapes (used by the device models and the trace generator).
//!
//! Property tests in each module cross-check the analytic counts against
//! instrumented naive executions on small shapes.

pub mod activation;
pub mod bias;
pub mod conv;
pub mod elementwise;
pub mod embedding;
pub mod im2col;
pub mod matmul;
pub mod norm;
pub mod optimizer;
pub mod pool;
pub mod softmax;
