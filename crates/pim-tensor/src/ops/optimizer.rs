//! Parameter-update operations: `ApplyAdam` and `ApplyGradientDescent`.
//!
//! `ApplyAdam` is the paper's example of "a first-order gradient-based
//! optimization of stochastic objective functions" — a multiply/add core
//! (moment updates) wrapped in square roots and divisions, making it
//! [`OffloadClass::PartiallyMulAdd`] and a recursive-kernel client.

use crate::cost::{CostProfile, OffloadClass};
use crate::shape::Shape;
use crate::tensor::Tensor;
use pim_common::units::Bytes;
use pim_common::{PimError, Result};
use serde::{Deserialize, Serialize};

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamParams {
    /// Step size.
    pub learning_rate: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub epsilon: f32,
}

impl Default for AdamParams {
    fn default() -> Self {
        AdamParams {
            learning_rate: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }
}

/// Mutable optimizer state for one parameter tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamState {
    /// First-moment estimate.
    pub m: Tensor,
    /// Second-moment estimate.
    pub v: Tensor,
    /// Number of updates applied so far.
    pub t: u32,
}

impl AdamState {
    /// Fresh (zeroed) state for a parameter of the given shape.
    pub fn new(shape: Shape) -> Self {
        AdamState {
            m: Tensor::zeros(shape.clone()),
            v: Tensor::zeros(shape),
            t: 0,
        }
    }
}

/// Applies one Adam step in place (`ApplyAdam`).
///
/// # Examples
///
/// ```
/// use pim_tensor::ops::optimizer::{apply_adam, AdamParams, AdamState};
/// use pim_tensor::{Shape, Tensor};
///
/// # fn main() -> pim_common::Result<()> {
/// let mut w = Tensor::full(Shape::new(vec![2]), 1.0);
/// let mut state = AdamState::new(w.shape().clone());
/// let grad = Tensor::full(Shape::new(vec![2]), 1.0);
/// apply_adam(&mut w, &grad, &mut state, AdamParams::default())?;
/// assert!(w.data()[0] < 1.0); // moved against the gradient
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when the gradient or state shape
/// disagrees with the parameter.
pub fn apply_adam(
    param: &mut Tensor,
    grad: &Tensor,
    state: &mut AdamState,
    hp: AdamParams,
) -> Result<()> {
    if grad.shape() != param.shape() || state.m.shape() != param.shape() {
        return Err(PimError::ShapeMismatch {
            context: "apply_adam",
            expected: param.shape().dims().to_vec(),
            actual: grad.shape().dims().to_vec(),
        });
    }
    state.t += 1;
    let t = state.t as f32;
    let bias1 = 1.0 - hp.beta1.powf(t);
    let bias2 = 1.0 - hp.beta2.powf(t);
    for i in 0..param.numel() {
        let g = grad.data()[i];
        let m = hp.beta1 * state.m.data()[i] + (1.0 - hp.beta1) * g;
        let v = hp.beta2 * state.v.data()[i] + (1.0 - hp.beta2) * g * g;
        state.m.data_mut()[i] = m;
        state.v.data_mut()[i] = v;
        let m_hat = m / bias1;
        let v_hat = v / bias2;
        param.data_mut()[i] -= hp.learning_rate * m_hat / (v_hat.sqrt() + hp.epsilon);
    }
    Ok(())
}

/// Applies one plain SGD step in place (`ApplyGradientDescent`).
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when shapes disagree.
pub fn apply_sgd(param: &mut Tensor, grad: &Tensor, learning_rate: f32) -> Result<()> {
    if grad.shape() != param.shape() {
        return Err(PimError::ShapeMismatch {
            context: "apply_sgd",
            expected: param.shape().dims().to_vec(),
            actual: grad.shape().dims().to_vec(),
        });
    }
    for i in 0..param.numel() {
        param.data_mut()[i] -= learning_rate * grad.data()[i];
    }
    Ok(())
}

/// Analytic cost of `ApplyAdam`: per element, 7 multiplies + 4 adds of
/// multiply/add work and 3 other ops (sqrt + 2 divides). Reads parameter,
/// gradient, and both moments; writes parameter and both moments.
pub fn apply_adam_cost(param: &Shape) -> CostProfile {
    let n = param.numel() as f64;
    let muls = n * 7.0;
    let adds = n * 4.0;
    let other = n * 3.0;
    CostProfile::compute(
        muls,
        adds,
        other,
        Bytes::new(n * 4.0 * 4.0),
        Bytes::new(n * 4.0 * 3.0),
        OffloadClass::PartiallyMulAdd {
            ma_fraction: (muls + adds) / (muls + adds + other),
        },
        512,
    )
}

/// Analytic cost of `ApplyGradientDescent`: one multiply + one add per
/// element; fully multiply/add.
pub fn apply_sgd_cost(param: &Shape) -> CostProfile {
    let n = param.numel() as f64;
    CostProfile::compute(
        n,
        n,
        0.0,
        Bytes::new(n * 4.0 * 2.0),
        Bytes::new(n * 4.0),
        OffloadClass::FullyMulAdd,
        512,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut w = Tensor::from_vec(Shape::new(vec![2]), vec![1.0, -1.0]).unwrap();
        let g = Tensor::from_vec(Shape::new(vec![2]), vec![0.5, -0.5]).unwrap();
        apply_sgd(&mut w, &g, 0.1).unwrap();
        assert!((w.data()[0] - 0.95).abs() < 1e-6);
        assert!((w.data()[1] + 0.95).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(w) = w^2 starting from w = 5.
        let mut w = Tensor::full(Shape::new(vec![1]), 5.0);
        let mut state = AdamState::new(w.shape().clone());
        let hp = AdamParams {
            learning_rate: 0.1,
            ..AdamParams::default()
        };
        for _ in 0..500 {
            let grad = Tensor::from_vec(w.shape().clone(), vec![2.0 * w.data()[0]]).unwrap();
            apply_adam(&mut w, &grad, &mut state, hp).unwrap();
        }
        assert!(w.data()[0].abs() < 0.05, "w = {}", w.data()[0]);
    }

    #[test]
    fn adam_first_step_has_unit_scale() {
        // Bias correction makes the very first step ~learning_rate.
        let mut w = Tensor::full(Shape::new(vec![1]), 0.0);
        let mut state = AdamState::new(w.shape().clone());
        let grad = Tensor::full(w.shape().clone(), 3.0);
        apply_adam(&mut w, &grad, &mut state, AdamParams::default()).unwrap();
        assert!((w.data()[0] + 1e-3).abs() < 1e-4);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut w = Tensor::zeros(Shape::new(vec![2]));
        let g = Tensor::zeros(Shape::new(vec![3]));
        assert!(apply_sgd(&mut w, &g, 0.1).is_err());
        let mut state = AdamState::new(Shape::new(vec![2]));
        assert!(apply_adam(&mut w, &g, &mut state, AdamParams::default()).is_err());
    }

    #[test]
    fn adam_is_partially_mul_add() {
        let cost = apply_adam_cost(&Shape::new(vec![1000]));
        match cost.class {
            OffloadClass::PartiallyMulAdd { ma_fraction } => {
                assert!((0.5..1.0).contains(&ma_fraction));
            }
            other => panic!("expected PartiallyMulAdd, got {other:?}"),
        }
    }

    #[test]
    fn sgd_is_fully_mul_add() {
        let cost = apply_sgd_cost(&Shape::new(vec![1000]));
        assert_eq!(cost.class, OffloadClass::FullyMulAdd);
    }

    proptest! {
        #[test]
        fn sgd_is_exact_axpy(w0 in -10.0f32..10.0, g in -10.0f32..10.0, lr in 0.0f32..1.0) {
            let mut w = Tensor::full(Shape::new(vec![1]), w0);
            let grad = Tensor::full(Shape::new(vec![1]), g);
            apply_sgd(&mut w, &grad, lr).unwrap();
            prop_assert!((w.data()[0] - (w0 - lr * g)).abs() < 1e-5);
        }

        #[test]
        fn adam_state_counter_increments(steps in 1u32..20) {
            let mut w = Tensor::zeros(Shape::new(vec![4]));
            let mut state = AdamState::new(w.shape().clone());
            let grad = Tensor::full(w.shape().clone(), 0.1);
            for _ in 0..steps {
                apply_adam(&mut w, &grad, &mut state, AdamParams::default()).unwrap();
            }
            prop_assert_eq!(state.t, steps);
        }
    }
}
