//! Bias addition and its gradient.
//!
//! `BiasAddGrad` is a pure reduction: almost no arithmetic per byte moved,
//! which is why it ranks near the top of Table I's memory-intensity column
//! for every model while contributing little execution time.

use crate::cost::{CostProfile, OffloadClass};
use crate::shape::Shape;
use crate::tensor::Tensor;
use pim_common::units::Bytes;
use pim_common::{PimError, Result};

/// Number of channel positions and the per-channel extent for a tensor:
/// channels are axis 1 for NCHW, the last axis for matrices.
fn channel_layout(shape: &Shape) -> Result<(usize, usize, bool)> {
    match *shape.dims() {
        [_, c, _, _] => Ok((c, shape.numel() / c, true)),
        [_, c] => Ok((c, shape.numel() / c, false)),
        _ => Err(PimError::ShapeMismatch {
            context: "bias channel layout",
            expected: vec![2, 4],
            actual: vec![shape.rank()],
        }),
    }
}

/// Adds a per-channel bias to a 2-D (`[N, C]`) or 4-D (`[N, C, H, W]`)
/// tensor.
///
/// # Examples
///
/// ```
/// use pim_tensor::ops::bias::bias_add;
/// use pim_tensor::{Shape, Tensor};
///
/// # fn main() -> pim_common::Result<()> {
/// let x = Tensor::zeros(Shape::new(vec![2, 3]));
/// let b = Tensor::from_vec(Shape::new(vec![3]), vec![1.0, 2.0, 3.0])?;
/// let y = bias_add(&x, &b)?;
/// assert_eq!(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when the bias length disagrees with
/// the channel count.
pub fn bias_add(input: &Tensor, bias: &Tensor) -> Result<Tensor> {
    let (c, _, is_nchw) = channel_layout(input.shape())?;
    if bias.numel() != c {
        return Err(PimError::ShapeMismatch {
            context: "bias_add",
            expected: vec![c],
            actual: vec![bias.numel()],
        });
    }
    let dims = input.shape().dims().to_vec();
    let mut out = input.clone();
    if is_nchw {
        let (n, _, h, w) = input.shape().as_nchw()?;
        for ni in 0..n {
            for ci in 0..c {
                let b = bias.data()[ci];
                for hi in 0..h {
                    for wi in 0..w {
                        out.add4(ni, ci, hi, wi, b);
                    }
                }
            }
        }
    } else {
        let rows = dims[0];
        for r in 0..rows {
            for ci in 0..c {
                let v = out.at2(r, ci) + bias.data()[ci];
                out.set2(r, ci, v);
            }
        }
    }
    Ok(out)
}

/// Gradient of the bias: sums the upstream gradient over every non-channel
/// axis (`BiasAddGrad`).
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] for tensors that are not 2-D or 4-D.
pub fn bias_add_grad(grad_output: &Tensor) -> Result<Tensor> {
    let (c, _, is_nchw) = channel_layout(grad_output.shape())?;
    let mut grad_bias = Tensor::zeros(Shape::new(vec![c]));
    if is_nchw {
        let (n, _, h, w) = grad_output.shape().as_nchw()?;
        for ni in 0..n {
            for ci in 0..c {
                let mut acc = 0.0f32;
                for hi in 0..h {
                    for wi in 0..w {
                        acc += grad_output.at4(ni, ci, hi, wi);
                    }
                }
                grad_bias.data_mut()[ci] += acc;
            }
        }
    } else {
        let rows = grad_output.shape().dims()[0];
        for r in 0..rows {
            for ci in 0..c {
                grad_bias.data_mut()[ci] += grad_output.at2(r, ci);
            }
        }
    }
    Ok(grad_bias)
}

/// Analytic cost of `BiasAdd`: one addition per element, read + write of the
/// whole tensor. Fully multiply/add.
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] for unsupported ranks.
pub fn bias_add_cost(input: &Shape) -> Result<CostProfile> {
    let (_, per_channel, _) = channel_layout(input)?;
    let n = input.numel() as f64;
    Ok(CostProfile::compute(
        0.0,
        n,
        0.0,
        Bytes::new(n * 4.0),
        Bytes::new(n * 4.0),
        OffloadClass::FullyMulAdd,
        per_channel.min(512),
    ))
}

/// Analytic cost of `BiasAddGrad`: one addition per element but the output
/// is only `C` wide — extreme memory intensity, minimal time.
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] for unsupported ranks.
pub fn bias_add_grad_cost(grad_output: &Shape) -> Result<CostProfile> {
    let (c, per_channel, _) = channel_layout(grad_output)?;
    let n = grad_output.numel() as f64;
    Ok(CostProfile::compute(
        0.0,
        n,
        0.0,
        // The reduction sweep is cache-hostile across the batch axis: each
        // element is a fresh main-memory line in the profiled TF kernels.
        Bytes::new(n * 4.0 * 2.2),
        Bytes::new(c as f64 * 4.0),
        OffloadClass::FullyMulAdd,
        per_channel.min(512),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bias_add_4d_broadcasts_over_channel() {
        let x = Tensor::zeros(Shape::new(vec![1, 2, 2, 2]));
        let b = Tensor::from_vec(Shape::new(vec![2]), vec![1.0, -1.0]).unwrap();
        let y = bias_add(&x, &b).unwrap();
        assert_eq!(y.at4(0, 0, 1, 1), 1.0);
        assert_eq!(y.at4(0, 1, 0, 0), -1.0);
    }

    #[test]
    fn bias_length_is_validated() {
        let x = Tensor::zeros(Shape::new(vec![2, 3]));
        let b = Tensor::zeros(Shape::new(vec![4]));
        assert!(bias_add(&x, &b).is_err());
    }

    #[test]
    fn rank3_is_rejected() {
        let x = Shape::new(vec![2, 3, 4]);
        assert!(bias_add_cost(&x).is_err());
    }

    #[test]
    fn grad_sums_over_batch() {
        let g = Tensor::from_vec(Shape::new(vec![2, 2]), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let gb = bias_add_grad(&g).unwrap();
        assert_eq!(gb.data(), &[4.0, 6.0]);
    }

    #[test]
    fn grad_is_memory_intensive() {
        let shape = Shape::new(vec![32, 64, 56, 56]);
        let cost = bias_add_grad_cost(&shape).unwrap();
        // Very low arithmetic intensity is the signature of this op.
        assert!(cost.arithmetic_intensity() < 0.25);
        assert_eq!(cost.class, OffloadClass::FullyMulAdd);
    }

    proptest! {
        #[test]
        fn grad_then_add_is_linear(rows in 1usize..6, cols in 1usize..6) {
            // bias_add_grad(ones) should count rows for every channel.
            let g = Tensor::full(Shape::new(vec![rows, cols]), 1.0);
            let gb = bias_add_grad(&g).unwrap();
            for &v in gb.data() {
                prop_assert_eq!(v, rows as f32);
            }
        }

        #[test]
        fn add_count_equals_numel(n in 1usize..8, c in 1usize..8) {
            let cost = bias_add_cost(&Shape::new(vec![n, c])).unwrap();
            prop_assert_eq!(cost.adds, (n * c) as f64);
            prop_assert!(cost.is_well_formed());
        }
    }
}
