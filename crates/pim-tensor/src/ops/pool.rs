//! Max and average pooling with gradients.
//!
//! `MaxPool` is the paper's example of a "sample-based discretization
//! process" that fixed-function multiply/add units cannot express; it is
//! classified [`OffloadClass::NonMulAdd`] and targets the programmable PIM.

use crate::cost::{CostProfile, OffloadClass};
use crate::shape::{ConvGeometry, Shape};
use crate::tensor::Tensor;
use pim_common::units::Bytes;
use pim_common::{PimError, Result};

/// Forward max pooling. Returns the pooled tensor and the flat argmax index
/// of each window (needed by the gradient).
///
/// # Examples
///
/// ```
/// use pim_tensor::ops::pool::max_pool;
/// use pim_tensor::shape::{ConvGeometry, Shape};
/// use pim_tensor::Tensor;
///
/// # fn main() -> pim_common::Result<()> {
/// let input = Tensor::from_fn(Shape::new(vec![1, 1, 2, 2]), |i| i as f32);
/// let (out, _) = max_pool(&input, ConvGeometry::square(2, 2, 0))?;
/// assert_eq!(out.data(), &[3.0]);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] for non-4-D inputs.
pub fn max_pool(input: &Tensor, geom: ConvGeometry) -> Result<(Tensor, Vec<usize>)> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let (oh, ow) = geom.output_hw(h, w);
    let mut out = Tensor::zeros(Shape::new(vec![n, c, oh, ow]));
    let mut argmax = vec![0usize; n * c * oh * ow];
    let mut cursor = 0;
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..geom.kernel_h {
                        for kx in 0..geom.kernel_w {
                            let iy = (oy * geom.stride_h + ky) as isize - geom.pad_h as isize;
                            let ix = (ox * geom.stride_w + kx) as isize - geom.pad_w as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                let v = input.at4(ni, ci, iy as usize, ix as usize);
                                if v > best {
                                    best = v;
                                    best_idx = input.offset4(ni, ci, iy as usize, ix as usize);
                                }
                            }
                        }
                    }
                    out.set4(ni, ci, oy, ox, best);
                    argmax[cursor] = best_idx;
                    cursor += 1;
                }
            }
        }
    }
    Ok((out, argmax))
}

/// Gradient of max pooling (`MaxPoolGrad`): routes each output gradient to
/// the input element that won its window.
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] when `argmax` disagrees with
/// `grad_output`.
pub fn max_pool_grad(
    input_shape: &Shape,
    grad_output: &Tensor,
    argmax: &[usize],
) -> Result<Tensor> {
    if grad_output.numel() != argmax.len() {
        return Err(PimError::ShapeMismatch {
            context: "max_pool_grad argmax",
            expected: vec![grad_output.numel()],
            actual: vec![argmax.len()],
        });
    }
    let mut grad_input = Tensor::zeros(input_shape.clone());
    for (g, &idx) in grad_output.data().iter().zip(argmax) {
        if idx >= grad_input.numel() {
            return Err(PimError::invalid(
                "max_pool_grad",
                format!("argmax index {idx} out of range"),
            ));
        }
        grad_input.data_mut()[idx] += g;
    }
    Ok(grad_input)
}

/// Forward average pooling (ResNet / Inception global pooling).
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] for non-4-D inputs.
pub fn avg_pool(input: &Tensor, geom: ConvGeometry) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let (oh, ow) = geom.output_hw(h, w);
    let mut out = Tensor::zeros(Shape::new(vec![n, c, oh, ow]));
    let window = geom.window_len() as f32;
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ky in 0..geom.kernel_h {
                        for kx in 0..geom.kernel_w {
                            let iy = (oy * geom.stride_h + ky) as isize - geom.pad_h as isize;
                            let ix = (ox * geom.stride_w + kx) as isize - geom.pad_w as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                acc += input.at4(ni, ci, iy as usize, ix as usize);
                            }
                        }
                    }
                    out.set4(ni, ci, oy, ox, acc / window);
                }
            }
        }
    }
    Ok(out)
}

fn pool_output_elems(input: &Shape, geom: ConvGeometry) -> Result<(f64, f64)> {
    let (n, c, h, w) = input.as_nchw()?;
    let (oh, ow) = geom.output_hw(h, w);
    Ok((
        n as f64 * c as f64 * oh as f64 * ow as f64,
        geom.window_len() as f64,
    ))
}

/// Analytic cost of `MaxPool`: one comparison per window element.
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] for non-4-D inputs.
pub fn max_pool_cost(input: &Shape, geom: ConvGeometry) -> Result<CostProfile> {
    let (out_elems, window) = pool_output_elems(input, geom)?;
    Ok(CostProfile::compute(
        0.0,
        0.0,
        out_elems * window, // compares/selects
        Bytes::new(input.numel() as f64 * 4.0),
        Bytes::new(out_elems * 4.0 * 2.0), // values + argmax
        OffloadClass::NonMulAdd,
        0,
    ))
}

/// Analytic cost of `MaxPoolGrad`: an indexed scatter of the gradients.
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] for non-4-D inputs.
pub fn max_pool_grad_cost(input: &Shape, geom: ConvGeometry) -> Result<CostProfile> {
    let (out_elems, _) = pool_output_elems(input, geom)?;
    Ok(CostProfile::compute(
        0.0,
        out_elems, // scatter accumulation
        out_elems, // index decode
        Bytes::new(out_elems * 4.0 * 2.0),
        Bytes::new(input.numel() as f64 * 4.0),
        OffloadClass::NonMulAdd,
        0,
    )
    .with_pattern(pim_common::access::AccessPattern::Strided))
}

/// Analytic cost of `AvgPool`: adds plus one divide per output.
///
/// # Errors
///
/// Returns [`PimError::ShapeMismatch`] for non-4-D inputs.
pub fn avg_pool_cost(input: &Shape, geom: ConvGeometry) -> Result<CostProfile> {
    let (out_elems, window) = pool_output_elems(input, geom)?;
    let adds = out_elems * (window - 1.0).max(0.0);
    let other = out_elems; // the divide
    Ok(CostProfile::compute(
        0.0,
        adds,
        other,
        Bytes::new(input.numel() as f64 * 4.0),
        Bytes::new(out_elems * 4.0),
        OffloadClass::PartiallyMulAdd {
            ma_fraction: adds / (adds + other),
        },
        geom.window_len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn max_pool_picks_window_maximum() {
        let input = Tensor::from_vec(
            Shape::new(vec![1, 1, 4, 4]),
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let (out, argmax) = max_pool(&input, ConvGeometry::square(2, 2, 0)).unwrap();
        assert_eq!(out.data(), &[4.0, 8.0, 12.0, 16.0]);
        assert_eq!(argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn grad_routes_to_argmax() {
        let input = Tensor::from_fn(Shape::new(vec![1, 1, 2, 2]), |i| i as f32);
        let (_, argmax) = max_pool(&input, ConvGeometry::square(2, 2, 0)).unwrap();
        let grad_out = Tensor::full(Shape::new(vec![1, 1, 1, 1]), 2.5);
        let grad_in = max_pool_grad(input.shape(), &grad_out, &argmax).unwrap();
        assert_eq!(grad_in.data(), &[0.0, 0.0, 0.0, 2.5]);
    }

    #[test]
    fn grad_rejects_bad_argmax_len() {
        let grad_out = Tensor::zeros(Shape::new(vec![1, 1, 1, 1]));
        assert!(max_pool_grad(&Shape::new(vec![1, 1, 2, 2]), &grad_out, &[]).is_err());
    }

    #[test]
    fn grad_rejects_out_of_range_index() {
        let grad_out = Tensor::zeros(Shape::new(vec![1, 1, 1, 1]));
        assert!(max_pool_grad(&Shape::new(vec![1, 1, 2, 2]), &grad_out, &[99]).is_err());
    }

    #[test]
    fn avg_pool_averages() {
        let input =
            Tensor::from_vec(Shape::new(vec![1, 1, 2, 2]), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = avg_pool(&input, ConvGeometry::square(2, 2, 0)).unwrap();
        assert_eq!(out.data(), &[2.5]);
    }

    #[test]
    fn pooling_is_non_mul_add() {
        let shape = Shape::new(vec![32, 64, 56, 56]);
        let cost = max_pool_cost(&shape, ConvGeometry::square(2, 2, 0)).unwrap();
        assert_eq!(cost.class, OffloadClass::NonMulAdd);
        assert_eq!(cost.muls, 0.0);
        assert!(cost.other_flops > 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn max_pool_grad_conserves_gradient_mass(
            hw in 2usize..8, c in 1usize..3,
        ) {
            let geom = ConvGeometry::square(2, 2, 0);
            let input = Tensor::from_fn(
                Shape::new(vec![1, c, hw - hw % 2, hw - hw % 2]),
                |i| ((i * 31) % 17) as f32,
            );
            let (out, argmax) = max_pool(&input, geom).unwrap();
            let grad_out = Tensor::full(out.shape().clone(), 1.0);
            let grad_in = max_pool_grad(input.shape(), &grad_out, &argmax).unwrap();
            // Every unit of output gradient lands somewhere in the input.
            prop_assert!((grad_in.sum() - grad_out.sum()).abs() < 1e-6);
        }

        #[test]
        fn costs_are_well_formed(hw in 4usize..32, c in 1usize..8) {
            let shape = Shape::new(vec![2, c, hw, hw]);
            let geom = ConvGeometry::square(2, 2, 0);
            prop_assert!(max_pool_cost(&shape, geom).unwrap().is_well_formed());
            prop_assert!(max_pool_grad_cost(&shape, geom).unwrap().is_well_formed());
            prop_assert!(avg_pool_cost(&shape, geom).unwrap().is_well_formed());
        }
    }
}
