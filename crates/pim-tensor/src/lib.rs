//! Tensor library with NN training operations and analytic cost models.
//!
//! This crate is the numerical substrate of the hetero-pim reproduction. It
//! provides:
//!
//! * [`tensor::Tensor`] — a dense `f32` tensor (NCHW for images),
//! * [`ops`] — every training operation the paper profiles, each with a real
//!   numeric kernel *and* an analytic [`cost::CostProfile`] derived from
//!   shapes,
//! * [`cost`] — the cost vocabulary consumed by the device models,
//! * [`init`] — reproducible weight initialization.
//!
//! # Examples
//!
//! ```
//! use pim_tensor::ops::conv::{conv2d, conv2d_cost};
//! use pim_tensor::shape::{ConvGeometry, Shape};
//! use pim_tensor::Tensor;
//!
//! # fn main() -> pim_common::Result<()> {
//! let geom = ConvGeometry::square(3, 1, 1);
//! let input = Tensor::full(Shape::new(vec![1, 3, 8, 8]), 1.0);
//! let filter = Tensor::full(Shape::new(vec![4, 3, 3, 3]), 0.1);
//!
//! // Real math:
//! let out = conv2d(&input, &filter, geom)?;
//! assert_eq!(out.shape().dims(), &[1, 4, 8, 8]);
//!
//! // Analytic characterization (what the runtime scheduler consumes):
//! let cost = conv2d_cost(input.shape(), filter.shape(), geom)?;
//! assert!(cost.ma_flops() > 0.0);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

pub mod cost;
pub mod init;
pub mod ops;
pub mod shape;
pub mod tensor;

pub use cost::{CostProfile, OffloadClass};
pub use shape::{ConvGeometry, Shape};
pub use tensor::Tensor;
