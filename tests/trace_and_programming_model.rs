//! Integration tests of the trace-driven path (§V-A) and the extended
//! OpenCL programming model (Tables II/III) against real model graphs.

use hetero_pim::models::{Model, ModelKind};
use hetero_pim::opencl::api::{ComputePlacement, LowLevelApi, OpPlacement};
use hetero_pim::opencl::binary::BinarySet;
use hetero_pim::opencl::kir::KernelSource;
use hetero_pim::opencl::memory::SharedGlobalMemory;
use hetero_pim::opencl::platform::{DeviceKind, Platform};
use hetero_pim::sim::trace::Trace;
use hetero_pim::sim::tracegen::generate_trace;
use pim_common::ids::{BankId, OpId};
use pim_graph::cost::op_cost;
use pim_hw::fixed::FixedPoolConfig;
use pim_mem::stack::StackConfig;
use pim_tensor::cost::OffloadClass;

/// The trace roundtrips through its binary encoding and reproduces every
/// op's cost counters exactly, for every workload in the zoo.
#[test]
fn traces_roundtrip_for_every_model() {
    for kind in ModelKind::ALL {
        let model = Model::build_with_batch(kind, 4).unwrap();
        let trace = generate_trace(model.graph()).unwrap();
        assert_eq!(trace.records.len(), model.graph().op_count(), "{kind}");
        let decoded = Trace::decode(trace.encode()).unwrap();
        assert_eq!(decoded, trace, "{kind}");
        for rec in &decoded.records {
            let node = model.graph().op(OpId::new(rec.op_index as usize)).unwrap();
            let direct = op_cost(model.graph(), node).unwrap();
            let replayed = rec.to_cost();
            assert_eq!(replayed.memory_accesses(), direct.memory_accesses());
            assert_eq!(replayed.ma_flops(), direct.ma_flops());
        }
    }
}

/// Binary generation (Fig. 4) produces the right binary complement for
/// every op of VGG-19: all four for pure mul/add kernels, recursive-kernel
/// support exactly for ops with a fixed-function part.
#[test]
fn binary_generation_matches_op_classes() {
    let model = Model::build_with_batch(ModelKind::Vgg19, 4).unwrap();
    for node in model.graph().ops() {
        let cost = op_cost(model.graph(), node).unwrap();
        let set = BinarySet::generate(KernelSource::from_cost(node.kind.tf_name(), &cost)).unwrap();
        assert_eq!(
            set.runs_whole_on_fixed(),
            cost.class == OffloadClass::FullyMulAdd && cost.total_flops() > 0.0,
            "{}",
            node.kind.tf_name()
        );
        assert_eq!(
            set.supports_recursive_kernel(),
            cost.class.has_fixed_function_part(),
            "{}",
            node.kind.tf_name()
        );
        if set.supports_recursive_kernel() {
            assert!((set.extracted_flops() - cost.ma_flops()).abs() < 1e-6);
        }
    }
}

/// The platform model exposes the paper's device mapping, and the low-level
/// API tracks offloads against it for a whole training step.
#[test]
fn platform_and_api_track_a_training_step() {
    let stack = StackConfig::hmc2();
    let pool = FixedPoolConfig::paper_default(&stack);
    let platform = Platform::hetero_pim(8, &pool, 4);
    let fixed = platform.device_of_kind(DeviceKind::FixedFunction).unwrap();
    assert_eq!(fixed.compute_units, 32);
    assert_eq!(fixed.total_pes(), 444);

    let model = Model::build_with_batch(ModelKind::AlexNet, 4).unwrap();
    let mut api = LowLevelApi::new(stack.banks());
    let mut memory = SharedGlobalMemory::new(stack.banks(), 4096);
    for info in model.graph().tensors() {
        if info.shape.size_bytes() > 0 {
            memory.allocate(info.id, info.shape.size_bytes()).unwrap();
        }
    }
    // Offload every op to the bank holding its first input, then complete.
    for node in model.graph().ops() {
        let bank = node
            .inputs
            .first()
            .and_then(|t| memory.home_bank(*t).ok())
            .unwrap_or(BankId::new(0));
        api.pim_offload(
            node.id,
            OpPlacement {
                compute: ComputePlacement::FixedFunction {
                    banks: vec![bank],
                    units: 8,
                },
                data_banks: vec![bank],
            },
        )
        .unwrap();
        assert!(api.pim_is_busy(bank).unwrap());
        assert!(!api.pim_query_completion(node.id));
        api.pim_complete(node.id).unwrap();
        assert!(api.pim_query_completion(node.id));
    }
    assert!(api.registers().all_banks_idle());
}

/// Bank-aware allocation spreads a real model's tensors across all banks.
#[test]
fn shared_memory_balances_model_tensors_across_banks() {
    let model = Model::build_with_batch(ModelKind::Dcgan, 8).unwrap();
    let mut memory = SharedGlobalMemory::new(32, 4096);
    for info in model.graph().tensors() {
        if info.shape.size_bytes() > 0 {
            memory.allocate(info.id, info.shape.size_bytes()).unwrap();
        }
    }
    let loads = memory.bank_load();
    let max = *loads.iter().max().unwrap() as f64;
    let min = *loads.iter().min().unwrap() as f64;
    assert!(min > 0.0, "every bank holds data");
    assert!(max / min < 1.5, "bank loads balanced: {loads:?}");
}
