//! End-to-end reproduction of the paper's headline claims, at the paper's
//! batch sizes, across the full crate stack.

use hetero_pim::models::{Model, ModelKind};
use hetero_pim::sim::baselines::simulate_neurocube;
use hetero_pim::sim::configs::{simulate, SystemConfig};

const STEPS: usize = 3;

fn step_seconds(kind: ModelKind, config: &SystemConfig) -> f64 {
    let model = Model::build(kind).unwrap();
    simulate(&model, config, STEPS)
        .unwrap()
        .per_step_time()
        .seconds()
}

/// §VI-A: "PIM-based designs perform much better than CPU, with 19%-28x
/// performance improvement."
#[test]
fn pim_designs_beat_cpu() {
    for kind in ModelKind::CNNS {
        let cpu = step_seconds(kind, &SystemConfig::Cpu);
        for config in [
            SystemConfig::ProgrPim,
            SystemConfig::FixedPim,
            SystemConfig::hetero_pim(),
        ] {
            let pim = step_seconds(kind, &config);
            let speedup = cpu / pim;
            assert!(
                speedup > 1.19,
                "{kind} on {}: speedup {speedup:.2} below the paper's floor",
                config.name()
            );
            assert!(
                speedup < 35.0,
                "{kind} on {}: speedup {speedup:.1} far above the paper's 28x ceiling",
                config.name()
            );
        }
    }
}

/// §VI-A: Hetero PIM improves over Progr PIM by 2.5x-23x and over
/// Fixed PIM by 1.4x-5.7x.
#[test]
fn hetero_beats_the_homogeneous_pims_in_the_reported_ranges() {
    for kind in ModelKind::CNNS {
        let hetero = step_seconds(kind, &SystemConfig::hetero_pim());
        let progr = step_seconds(kind, &SystemConfig::ProgrPim);
        let fixed = step_seconds(kind, &SystemConfig::FixedPim);
        let vs_progr = progr / hetero;
        let vs_fixed = fixed / hetero;
        assert!(
            (2.5..=23.0).contains(&vs_progr),
            "{kind}: vs Progr {vs_progr:.1} outside 2.5-23x"
        );
        assert!(
            (1.4..=5.7).contains(&vs_fixed),
            "{kind}: vs Fixed {vs_fixed:.1} outside 1.4-5.7x"
        );
    }
}

/// §VI-A: the GPU crossover — DCGAN favors the GPU, ResNet-50 favors
/// Hetero PIM (its working set spills out of 11 GB of device memory).
#[test]
fn gpu_crossover_matches_the_paper() {
    let dcgan_gpu = step_seconds(ModelKind::Dcgan, &SystemConfig::Gpu);
    let dcgan_het = step_seconds(ModelKind::Dcgan, &SystemConfig::hetero_pim());
    assert!(
        dcgan_het > dcgan_gpu,
        "DCGAN: hetero ({dcgan_het:.4}s) must lose to the GPU ({dcgan_gpu:.4}s)"
    );

    let resnet_gpu = step_seconds(ModelKind::ResNet50, &SystemConfig::Gpu);
    let resnet_het = step_seconds(ModelKind::ResNet50, &SystemConfig::hetero_pim());
    assert!(
        resnet_het < resnet_gpu,
        "ResNet-50: hetero ({resnet_het:.4}s) must beat the GPU ({resnet_gpu:.4}s)"
    );

    // VGG-19 lands close to the GPU (the paper says within 10%; we land
    // within 20% — see EXPERIMENTS.md).
    let vgg_gpu = step_seconds(ModelKind::Vgg19, &SystemConfig::Gpu);
    let vgg_het = step_seconds(ModelKind::Vgg19, &SystemConfig::hetero_pim());
    let ratio = vgg_het / vgg_gpu;
    assert!((0.8..=1.25).contains(&ratio), "VGG ratio {ratio:.2}");
}

/// §VI-B: Hetero PIM consumes 3x-24x less energy than CPU and 1.3x-5x less
/// than GPU; Progr PIM has the highest dynamic energy.
#[test]
fn energy_ratios_match_figure_9() {
    for kind in ModelKind::CNNS {
        let model = Model::build(kind).unwrap();
        let hetero = simulate(&model, &SystemConfig::hetero_pim(), STEPS).unwrap();
        let cpu = simulate(&model, &SystemConfig::Cpu, STEPS).unwrap();
        let gpu = simulate(&model, &SystemConfig::Gpu, STEPS).unwrap();
        let progr = simulate(&model, &SystemConfig::ProgrPim, STEPS).unwrap();

        let vs_cpu = cpu.dynamic_energy / hetero.dynamic_energy;
        assert!((3.0..=28.0).contains(&vs_cpu), "{kind}: vs CPU {vs_cpu:.1}");
        let vs_gpu = gpu.dynamic_energy / hetero.dynamic_energy;
        assert!((1.2..=5.0).contains(&vs_gpu), "{kind}: vs GPU {vs_gpu:.1}");
        assert!(
            progr.dynamic_energy > cpu.dynamic_energy,
            "{kind}: Progr PIM must be the hungriest configuration"
        );
    }
}

/// §VI-C: at least 3x better than Neurocube in performance and energy on
/// every model.
#[test]
fn neurocube_comparison_matches_figure_10() {
    for kind in ModelKind::CNNS {
        let model = Model::build(kind).unwrap();
        let nc = simulate_neurocube(&model, STEPS).unwrap();
        let hetero = simulate(&model, &SystemConfig::hetero_pim(), STEPS).unwrap();
        assert!(nc.makespan / hetero.makespan >= 3.0, "{kind} time");
        // Energy: >=3x everywhere except ResNet-50, whose huge batch keeps
        // Neurocube's memory-side energy competitive in our model (2.2x;
        // recorded in EXPERIMENTS.md).
        let floor = if kind == ModelKind::ResNet50 {
            2.0
        } else {
            3.0
        };
        assert!(
            nc.dynamic_energy / hetero.dynamic_energy >= floor,
            "{kind} energy"
        );
    }
}

/// §VI-D: higher PIM frequency means faster training; Hetero PIM at 2x/4x
/// beats the GPU on VGG-19 and AlexNet.
#[test]
fn frequency_scaling_matches_figure_11() {
    for kind in [ModelKind::Vgg19, ModelKind::AlexNet] {
        let gpu = step_seconds(kind, &SystemConfig::Gpu);
        let base = step_seconds(kind, &SystemConfig::hetero_pim());
        let x2 = step_seconds(kind, &SystemConfig::hetero_pim_at_frequency(2.0).unwrap());
        let x4 = step_seconds(kind, &SystemConfig::hetero_pim_at_frequency(4.0).unwrap());
        assert!(
            x2 < base && x4 < x2,
            "{kind}: scaling must monotonically help"
        );
        assert!(x2 < gpu, "{kind}: 2x must beat the GPU");
        assert!(x4 < gpu, "{kind}: 4x must beat the GPU");
    }
}

/// §VI-G: the 4x frequency point is the most energy-efficient (lowest EDP),
/// and the GPU draws 1.5x-2.6x more power than Hetero PIM at 4x.
#[test]
fn edp_and_power_match_figure_17() {
    for kind in [ModelKind::Vgg19, ModelKind::AlexNet, ModelKind::InceptionV3] {
        let model = Model::build(kind).unwrap();
        let mut edps = Vec::new();
        let mut power_4x = 0.0;
        for mult in [1.0, 2.0, 4.0] {
            let cfg = SystemConfig::hetero_pim_at_frequency(mult).unwrap();
            let r = simulate(&model, &cfg, STEPS).unwrap();
            edps.push(r.edp_per_step());
            power_4x = r.average_power().watts();
        }
        assert!(
            edps[2] < edps[1] && edps[1] < edps[0],
            "{kind}: EDP must fall with frequency: {edps:?}"
        );
        let gpu = simulate(&model, &SystemConfig::Gpu, STEPS).unwrap();
        let ratio = gpu.average_power().watts() / power_4x;
        assert!(
            (1.3..=3.2).contains(&ratio),
            "{kind}: GPU/hetero power ratio {ratio:.2}"
        );
    }
}
