//! Integration tests of the runtime's mechanisms across crates: candidate
//! selection feeding the engine, RC/OP ablation ordering, utilization, and
//! the training session facade.

use hetero_pim::models::{Model, ModelKind};
use hetero_pim::runtime::engine::{Engine, EngineConfig, SystemPreset, WorkloadSpec};
use hetero_pim::runtime::TrainingSession;

fn workload(model: &Model, steps: usize) -> WorkloadSpec<'_> {
    WorkloadSpec {
        graph: model.graph(),
        steps,
        cpu_progr_only: false,
    }
}

/// Fig. 13: across every CNN, the ablation ordering holds:
/// full <= +RC <= bare, and bare beats the Fixed PIM baseline on the
/// three larger CNNs (the paper's 7%-30% hardware-only gain).
#[test]
fn ablation_ordering_holds_for_every_cnn() {
    for kind in ModelKind::CNNS {
        let model = Model::build(kind).unwrap();
        let run = |cfg: EngineConfig| Engine::new(cfg).run(&[workload(&model, 2)]).unwrap();
        let bare = run(EngineConfig::preset(SystemPreset::HeteroBare));
        let rc = run(EngineConfig::preset(SystemPreset::HeteroRc));
        let full = run(EngineConfig::preset(SystemPreset::Hetero));
        assert!(rc.makespan < bare.makespan, "{kind}: RC must help");
        assert!(
            full.makespan.seconds() <= rc.makespan.seconds() * 1.02,
            "{kind}: OP must not hurt"
        );
    }
    for kind in [ModelKind::Vgg19, ModelKind::AlexNet, ModelKind::InceptionV3] {
        let model = Model::build(kind).unwrap();
        let bare = Engine::new(EngineConfig::preset(SystemPreset::HeteroBare))
            .run(&[workload(&model, 2)])
            .unwrap();
        let fixed = Engine::new(EngineConfig::preset(SystemPreset::FixedHost))
            .run(&[workload(&model, 2)])
            .unwrap();
        let gain = fixed.makespan / bare.makespan - 1.0;
        assert!(
            gain > 0.05,
            "{kind}: hetero hardware must beat Fixed PIM by >5% (got {:.1}%)",
            gain * 100.0
        );
    }
}

/// Fig. 15: fixed-function utilization rises monotonically through the
/// ablation and approaches saturation with both techniques on VGG-19.
#[test]
fn utilization_rises_with_rc_and_op() {
    let model = Model::build(ModelKind::Vgg19).unwrap();
    let run = |cfg: EngineConfig, steps| Engine::new(cfg).run(&[workload(&model, steps)]).unwrap();
    let bare = run(EngineConfig::preset(SystemPreset::HeteroBare), 2);
    let rc = run(EngineConfig::preset(SystemPreset::HeteroRc), 2);
    let full = run(EngineConfig::preset(SystemPreset::Hetero), 4);
    assert!(bare.ff_utilization < rc.ff_utilization);
    assert!(rc.ff_utilization < full.ff_utilization);
    assert!(
        full.ff_utilization > 0.8,
        "RC+OP should approach saturation, got {:.2}",
        full.ff_utilization
    );
}

/// The training session profiles once, selects candidates covering >= 90%
/// of step time, and schedules the remaining steps.
#[test]
fn training_session_end_to_end() {
    for kind in ModelKind::ALL {
        let model = Model::build_with_batch(kind, kind.paper_batch_size().min(16)).unwrap();
        let session =
            TrainingSession::new(model.graph(), EngineConfig::preset(SystemPreset::Hetero))
                .unwrap();
        assert!(
            session.candidates().time_coverage >= 0.90,
            "{kind}: coverage {:.2}",
            session.candidates().time_coverage
        );
        let report = session.train(2).unwrap();
        assert!(report.is_well_formed(), "{kind}");
    }
}

/// Every configuration produces internally consistent reports across all
/// seven workloads (breakdown sums to makespan, utilization bounded).
#[test]
fn reports_are_well_formed_for_all_models_and_configs() {
    for kind in ModelKind::ALL {
        let model = Model::build_with_batch(kind, 8).unwrap();
        for cfg in [
            EngineConfig::preset(SystemPreset::CpuOnly),
            EngineConfig::preset(SystemPreset::ProgrOnly),
            EngineConfig::preset(SystemPreset::FixedHost),
            EngineConfig::preset(SystemPreset::HeteroBare),
            EngineConfig::preset(SystemPreset::HeteroRc),
            EngineConfig::preset(SystemPreset::Hetero),
        ] {
            let name = cfg.name.clone();
            let r = Engine::new(cfg).run(&[workload(&model, 2)]).unwrap();
            assert!(r.is_well_formed(), "{kind} under {name}");
        }
    }
}

/// The operation pipeline respects dependencies: more steps always take
/// more time, but less than proportionally (overlap exists).
#[test]
fn pipeline_amortizes_without_violating_order() {
    let model = Model::build(ModelKind::AlexNet).unwrap();
    let run = |steps| {
        Engine::new(EngineConfig::preset(SystemPreset::Hetero))
            .run(&[workload(&model, steps)])
            .unwrap()
            .makespan
    };
    let one = run(1);
    let four = run(4);
    assert!(four > one);
    assert!(four.seconds() < 4.0 * one.seconds());
}
