//! Functional training across the stack: builder -> executor -> real loss
//! reduction, and agreement between execution and characterization.

use hetero_pim::graph::builder::{NetBuilder, OptimizerKind};
use hetero_pim::graph::executor::{Executor, Value};
use hetero_pim::graph::TensorRole;
use hetero_pim::models::dataset::image_batch;
use hetero_pim::tensor::ops::optimizer::AdamParams;
use pim_graph::cost::graph_costs;
use std::collections::HashMap;

fn feeds_for(
    graph: &hetero_pim::graph::Graph,
    input: pim_common::ids::TensorId,
    batch: usize,
    classes: usize,
    seed: u64,
) -> HashMap<pim_common::ids::TensorId, Value> {
    let labels_id = graph
        .tensors()
        .iter()
        .find(|t| t.role == TensorRole::Labels)
        .unwrap()
        .id;
    let data = image_batch(batch, 1, 12, 12, classes, seed);
    let mut feeds = HashMap::new();
    feeds.insert(input, Value::Tensor(data.images));
    feeds.insert(labels_id, Value::Indices(data.labels));
    feeds
}

/// A residual CNN (the ResNet pattern at toy scale) trains end to end:
/// branch-merging backward passes are numerically exercised, not just
/// cost-modeled.
#[test]
fn residual_cnn_trains_to_lower_loss() {
    let batch = 8;
    let mut net = NetBuilder::new("res_toy");
    let input = net.input(batch, 1, 12, 12);
    let trunk = net.conv2d(input, 6, 3, 1, 1).unwrap();
    let trunk = net.relu(trunk).unwrap();
    let branch = net.conv2d(trunk, 6, 3, 1, 1).unwrap();
    let branch = net.relu(branch).unwrap();
    let merged = net.add(trunk, branch).unwrap();
    let pooled = net.max_pool(merged, 2, 2, 0).unwrap();
    let flat = net.flatten(pooled).unwrap();
    let logits = net.dense(flat, 3).unwrap();
    let graph = net.finish_classifier(logits, OptimizerKind::Adam).unwrap();

    let mut exec = Executor::new(&graph, 11);
    exec.set_adam(AdamParams {
        learning_rate: 1e-2,
        ..AdamParams::default()
    });
    let mut first = None;
    let mut last = f32::MAX;
    for step in 0..50 {
        let feeds = feeds_for(&graph, input, batch, 3, 500 + step);
        let result = exec.run_step(&graph, feeds).unwrap();
        let loss = result.loss(&graph).unwrap();
        assert!(loss.is_finite());
        first.get_or_insert(loss);
        last = loss;
    }
    let first = first.unwrap();
    assert!(
        last < first * 0.6,
        "residual training stalled: {first} -> {last}"
    );
}

/// SGD also trains (the ApplyGradientDescent path).
#[test]
fn sgd_classifier_trains() {
    let batch = 8;
    let mut net = NetBuilder::new("sgd_toy");
    let input = net.input(batch, 1, 12, 12);
    let x = net.conv2d(input, 4, 3, 1, 1).unwrap();
    let x = net.relu(x).unwrap();
    let x = net.flatten(x).unwrap();
    let logits = net.dense(x, 2).unwrap();
    let graph = net.finish_classifier(logits, OptimizerKind::Sgd).unwrap();

    let mut exec = Executor::new(&graph, 3);
    exec.set_sgd_learning_rate(0.05);
    let mut first = None;
    let mut last = f32::MAX;
    for step in 0..60 {
        let feeds = feeds_for(&graph, input, batch, 2, 900 + step);
        let result = exec.run_step(&graph, feeds).unwrap();
        last = result.loss(&graph).unwrap();
        first.get_or_insert(last);
    }
    assert!(last < first.unwrap() * 0.7, "SGD stalled at {last}");
}

/// The executed graph and the characterized graph are the same object: the
/// cost model covers every op the executor runs, with finite well-formed
/// profiles.
#[test]
fn execution_and_characterization_agree_on_coverage() {
    let mut net = NetBuilder::new("cover");
    let input = net.input(4, 1, 12, 12);
    let x = net.conv2d(input, 4, 3, 1, 1).unwrap();
    let x = net.bias(x).unwrap();
    let x = net.relu(x).unwrap();
    let x = net.avg_pool(x, 2, 2, 0).unwrap();
    let x = net.batch_norm(x).unwrap();
    let x = net.flatten(x).unwrap();
    let x = net.dropout(x).unwrap();
    let logits = net.dense(x, 2).unwrap();
    let graph = net.finish_classifier(logits, OptimizerKind::Adam).unwrap();

    let costs = graph_costs(&graph).unwrap();
    assert_eq!(costs.len(), graph.op_count());
    assert!(costs
        .iter()
        .all(hetero_pim::tensor::CostProfile::is_well_formed));

    // And the same graph executes numerically (dropout mask fed as ones).
    let mut exec = Executor::new(&graph, 5);
    let mask_info = graph
        .tensors()
        .iter()
        .find(|t| t.name.contains("dropout") && t.name.ends_with("/mask"))
        .unwrap()
        .clone();
    let mut feeds = feeds_for(&graph, input, 4, 2, 1);
    feeds.insert(
        mask_info.id,
        Value::Tensor(hetero_pim::tensor::Tensor::full(mask_info.shape, 1.0)),
    );
    let result = exec.run_step(&graph, feeds).unwrap();
    assert!(result.loss(&graph).unwrap().is_finite());
}
