//! Functional training: the eager executor really trains a small CNN on a
//! synthetic MNIST-shaped problem, then the same graph is simulated on the
//! heterogeneous PIM. The simulator schedules exactly the graph that just
//! learned.
//!
//! Run with: `cargo run --release --example train_mnist_cnn`

use hetero_pim::graph::builder::{NetBuilder, OptimizerKind};
use hetero_pim::graph::executor::{Executor, Value};
use hetero_pim::graph::TensorRole;
use hetero_pim::models::dataset::image_batch;
use hetero_pim::sim::configs::{simulate_graph_hetero, SystemConfig};
use hetero_pim::tensor::ops::optimizer::AdamParams;
use std::collections::HashMap;

fn main() -> pim_common::Result<()> {
    // A LeNet-flavored classifier on 16x16 grayscale images, 4 classes.
    let batch = 16;
    let mut net = NetBuilder::new("mnist_cnn");
    let input_id = net.input(batch, 1, 16, 16);
    let mut x = net.conv2d(input_id, 8, 3, 1, 1)?;
    x = net.bias(x)?;
    x = net.relu(x)?;
    x = net.max_pool(x, 2, 2, 0)?;
    x = net.conv2d(x, 16, 3, 1, 1)?;
    x = net.bias(x)?;
    x = net.relu(x)?;
    x = net.max_pool(x, 2, 2, 0)?;
    x = net.flatten(x)?;
    x = net.dense(x, 32)?;
    x = net.relu(x)?;
    let logits = net.dense(x, 4)?;
    let graph = net.finish_classifier(logits, OptimizerKind::Adam)?;

    let labels_id = graph
        .tensors()
        .iter()
        .find(|t| t.role == TensorRole::Labels)
        .expect("classifier has labels")
        .id;

    let mut exec = Executor::new(&graph, 42);
    exec.set_adam(AdamParams {
        learning_rate: 5e-3,
        ..AdamParams::default()
    });

    println!(
        "training a {}-op graph with the eager executor:",
        graph.op_count()
    );
    let mut first = None;
    let mut last = 0.0;
    for step in 0..60 {
        let data = image_batch(batch, 1, 16, 16, 4, 1000 + step as u64);
        let mut feeds = HashMap::new();
        feeds.insert(input_id, Value::Tensor(data.images));
        feeds.insert(labels_id, Value::Indices(data.labels));
        let result = exec.run_step(&graph, feeds)?;
        let loss = result.loss(&graph).expect("loss produced");
        if step % 10 == 0 {
            println!("  step {step:>3}: loss = {loss:.4}");
        }
        first.get_or_insert(loss);
        last = loss;
    }
    let first = first.unwrap();
    println!(
        "loss {first:.4} -> {last:.4} ({:.0}% reduction)\n",
        100.0 * (1.0 - last / first)
    );
    assert!(last < first * 0.5, "training must reduce the loss");

    // Now hand the very same training-step graph to the PIM simulator.
    let report = simulate_graph_hetero(&graph, 3)?;
    println!(
        "the same step scheduled on Hetero PIM: {:.3} ms/step at {:.0}% fixed-function utilization",
        report.per_step_time().seconds() * 1e3,
        report.ff_utilization * 100.0
    );
    let _ = SystemConfig::hetero_pim(); // see quickstart for the full sweep
    Ok(())
}
