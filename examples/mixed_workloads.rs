//! Mixed workloads: a CNN and a non-CNN model co-running on the same
//! heterogeneous PIM system (the paper's §VI-F study).
//!
//! Run with: `cargo run --release --example mixed_workloads`

use hetero_pim::sim::mixed::{corun, fig16_cases};

fn main() -> pim_common::Result<()> {
    println!("CNN + non-CNN co-running vs sequential execution (Fig. 16):\n");
    println!(
        "{:<14} {:<10} {:>12} {:>12} {:>12}",
        "CNN", "co-runner", "seq (s)", "co-run (s)", "improvement"
    );
    for (cnn, other) in fig16_cases() {
        let r = corun(cnn, other, 2)?;
        println!(
            "{:<14} {:<10} {:>12.4} {:>12.4} {:>11.1}%",
            r.cnn.name(),
            r.other.name(),
            r.sequential_seconds,
            r.corun_seconds,
            100.0 * r.improvement()
        );
    }
    println!(
        "\nCo-running wins because operations across different models have \
         no dependencies: the non-CNN model soaks up CPU and programmable-PIM \
         idle time that dependency stalls would otherwise waste."
    );
    Ok(())
}
