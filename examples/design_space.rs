//! Design-space exploration: the hardware-side studies of the paper —
//! logic-die area (the 444-unit result), thermal-aware placement, the
//! 1P/4P/16P trade-off, and frequency scaling.
//!
//! Run with: `cargo run --release --example design_space`

use hetero_pim::hw::placement::{thermal_aware_placement, uniform_placement};
use hetero_pim::hw::power::{progr_scaling_points, LogicDieBudget};
use hetero_pim::hw::thermal::{evaluate_placements, peak_temperature, THERMAL_LIMIT_C};
use hetero_pim::mem::stack::StackConfig;
use hetero_pim::models::{Model, ModelKind};
use hetero_pim::runtime::engine::{Engine, EngineConfig, SystemPreset, WorkloadSpec};

fn main() -> pim_common::Result<()> {
    // 1. Area: how many fixed-function units fit beside the ARM cores?
    let budget = LogicDieBudget::paper_baseline();
    println!(
        "logic-die design space ({} mm2 for compute):",
        budget.compute_area_mm2
    );
    for cores in [1usize, 4, 16] {
        let units = budget.max_ff_units(cores)?;
        println!(
            "  {cores:>2} ARM cores -> {units} fixed-function units ({:.1} W)",
            budget.config_power(cores, units).watts()
        );
    }

    // 2. Thermal: edge/corner-heavy placement vs uniform.
    let report = evaluate_placements(444, 32, 0.027);
    println!(
        "\nthermal check (limit {THERMAL_LIMIT_C} C): thermal-aware peak {:.1} C vs uniform {:.1} C",
        report.thermal_aware_peak_c, report.uniform_peak_c
    );
    assert!(report.within_limit);
    let aware = peak_temperature(&thermal_aware_placement(444, 32), 0.027);
    let uniform = peak_temperature(&uniform_placement(444, 32), 0.027);
    assert!(aware < uniform, "the placement policy must pay off");

    // 3. Performance across the 1P/4P/16P points and frequencies, VGG-19.
    let model = Model::build_with_batch(ModelKind::Vgg19, 16)?;
    let workload = WorkloadSpec {
        graph: model.graph(),
        steps: 2,
        cpu_progr_only: false,
    };
    println!("\nVGG-19 across the design points:");
    for p in progr_scaling_points(&budget)? {
        let cfg =
            EngineConfig::preset(SystemPreset::Hetero).with_pim_complement(p.arm_cores, p.ff_units);
        let r = Engine::new(cfg).run(&[workload])?;
        println!(
            "  {}P / {} FF units: {:.4} s/step",
            p.arm_cores,
            p.ff_units,
            r.per_step_time().seconds()
        );
    }
    println!("\nVGG-19 across stack frequencies:");
    for mult in [1.0, 2.0, 4.0] {
        let stack = StackConfig::hmc2().with_frequency_multiplier(mult)?;
        let r = Engine::new(EngineConfig::preset(SystemPreset::Hetero).with_stack(stack))
            .run(&[workload])?;
        println!(
            "  {mult}x: {:.4} s/step, {:.1} J/step",
            r.per_step_time().seconds(),
            r.dynamic_energy.joules() / r.steps as f64
        );
    }
    Ok(())
}
