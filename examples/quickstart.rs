//! Quickstart: build a workload, simulate it on the five system
//! configurations of the paper, and print the comparison.
//!
//! Run with: `cargo run --release --example quickstart`

use hetero_pim::models::{Model, ModelKind};
use hetero_pim::sim::configs::{simulate, SystemConfig};

fn main() -> pim_common::Result<()> {
    // AlexNet at the paper's batch size (32); 3 training steps.
    let model = Model::build(ModelKind::AlexNet)?;
    println!(
        "AlexNet: {} ops per training step, {:.1} M parameters\n",
        model.graph().op_count(),
        model.graph().parameter_bytes() as f64 / 4e6,
    );

    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "system", "s/step", "J/step", "FF util"
    );
    let mut hetero_step = None;
    for config in SystemConfig::evaluation_set() {
        let report = simulate(&model, &config, 3)?;
        println!(
            "{:<12} {:>12.4} {:>12.2} {:>10.2}",
            config.name(),
            report.per_step_time().seconds(),
            report.dynamic_energy.joules() / report.steps as f64,
            report.ff_utilization,
        );
        if config.name() == "Hetero PIM" {
            hetero_step = Some(report.per_step_time());
        }
    }

    if let Some(step) = hetero_step {
        println!(
            "\nHetero PIM trains one AlexNet minibatch in {:.1} ms — the \
             heterogeneous pool plus the runtime's recursive kernels and \
             operation pipeline at work.",
            step.seconds() * 1e3
        );
    }
    Ok(())
}
