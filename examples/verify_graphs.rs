//! Static verification: run the checker passes over a shipped model,
//! then corrupt a small graph and watch each pass catch its invariant.
//!
//! Run with: `cargo run --release --example verify_graphs`

use hetero_pim::graph::node::{OpKind, TensorRole};
use hetero_pim::graph::Graph;
use hetero_pim::models::{Model, ModelKind};
use hetero_pim::opencl::kir::{KernelSource, Region};
use hetero_pim::tensor::ops::activation::Activation;
use hetero_pim::tensor::Shape;
use hetero_pim::verify::{verify_graph, verify_kernel_source};

fn main() -> pim_common::Result<()> {
    // 1. A shipped model is clean: zero error diagnostics.
    let model = Model::build_with_batch(ModelKind::AlexNet, 4)?;
    let diags = verify_graph("AlexNet", model.graph());
    println!(
        "AlexNet graph pass: {} finding(s), {} error(s)",
        diags.items().len(),
        diags.error_count()
    );
    assert!(diags.is_clean());

    // 2. Seed a cycle: two activations that feed each other.
    let mut cyclic = Graph::new();
    let a = cyclic.add_tensor(Shape::new(vec![8]), TensorRole::Activation, "a");
    let b = cyclic.add_tensor(Shape::new(vec![8]), TensorRole::Activation, "b");
    cyclic.add_op(OpKind::Activation(Activation::Relu), vec![a], vec![b])?;
    cyclic.add_op(OpKind::Activation(Activation::Relu), vec![b], vec![a])?;
    println!("\ncyclic graph:");
    print!("{}", verify_graph("cyclic", &cyclic).render_text());

    // 3. Seed a dangling fixed-function call site: the KIR pass reports
    //    the refused binary generation.
    let corrupt = KernelSource {
        name: "corrupt".into(),
        body: vec![
            Region::Control { ops: 16.0 },
            Region::CallFixed { kernel_index: 7 },
        ],
    };
    println!("\ncorrupt kernel:");
    print!(
        "{}",
        verify_kernel_source("corrupt", &corrupt).render_text()
    );
    Ok(())
}
