#!/usr/bin/env bash
# Local CI gate: formatting, lints, docs, tests, static verification, and
# a determinism check on the paper-reproduction sweep.
# Run from the repository root before pushing.
set -euo pipefail

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings

# Pedantic clippy with a curated allowlist. Every `-A` below is a
# deliberate, whole-workspace decision — anything not listed is a hard
# error, so new pedantic findings fail CI until fixed or justified here.
#   must_use_candidate / return_self_not_must_use: builder-style APIs
#     everywhere; annotating every getter adds noise, not safety.
#   cast_*: the simulator converts between tick counts, indices, and
#     f64 cost metrics by design; casts are reviewed at call sites.
#   float_cmp: determinism tests compare exact bit-identical floats on
#     purpose (same inputs, same order, same result).
#   doc_markdown: paper terms (AlexNet, HashMap, PIM) trip the
#     backtick heuristic constantly.
#   many_single_char_names / similar_names: math-heavy kernel code
#     follows the paper's notation (n, c, h, w, oh, ow).
#   missing_panics_doc / missing_errors_doc: the workspace documents
#     fallible APIs where the failure is interesting; blanket sections
#     on internal helpers are boilerplate.
#   too_many_lines / items_after_statements / single_match_else /
#     match_same_arms / module_name_repetitions: style calls where the
#     local idiom is already consistent.
#   struct_excessive_bools: EngineConfig mirrors the paper's ablation
#     switches (RC on/off, OP on/off, ...).
#   iter_not_returning_iterator: `Graph::ops()` returns a slice by
#     API contract.
#   inline_always: the hot-path annotations are benchmarked, not
#     speculative.
CLIPPY_PEDANTIC_ALLOW=(
    -A clippy::must_use_candidate
    -A clippy::return_self_not_must_use
    -A clippy::cast_precision_loss
    -A clippy::cast_sign_loss
    -A clippy::cast_possible_truncation
    -A clippy::cast_possible_wrap
    -A clippy::float_cmp
    -A clippy::doc_markdown
    -A clippy::many_single_char_names
    -A clippy::similar_names
    -A clippy::missing_panics_doc
    -A clippy::missing_errors_doc
    -A clippy::too_many_lines
    -A clippy::items_after_statements
    -A clippy::single_match_else
    -A clippy::match_same_arms
    -A clippy::struct_excessive_bools
    -A clippy::iter_not_returning_iterator
    -A clippy::inline_always
    -A clippy::module_name_repetitions
)
cargo clippy --workspace --all-targets -- \
    -D warnings -W clippy::pedantic "${CLIPPY_PEDANTIC_ALLOW[@]}"

RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
cargo test -q
cargo test --workspace -q

# Workspace builds unify features (pim-sim default-enables pim-runtime's
# `trace`); make sure the feature-off hot path still compiles on its own.
cargo check -q -p pim-runtime

# The differential suite (50 seeded random graphs x 6 presets, optimized
# vs reference engine paths) runs under the workspace tests with the
# `parallel` feature on; re-run it with `parallel` off so both sweep
# drivers stay behaviour-identical.
cargo test -q -p pim-sim --no-default-features --features trace --test differential

# Seeded fault suite with `parallel` off (the workspace run above covers
# `parallel` on): engine recovery, the none-plan differential guard, and
# the fault-aware legality checker must not depend on the sweep driver.
cargo test -q -p pim-runtime --no-default-features fault
cargo test -q -p pim-sim --no-default-features --features trace --test fault_differential

# Static checker: every model graph, binary set, schedule, and report must
# come back with zero error-severity diagnostics (exit code gates).
cargo run --release -q -p pim-verify -- --all-models --format json > /dev/null

# Determinism: the full reproduction sweep must be byte-identical across
# runs (the simulator owns all its randomness).
repro_a=$(mktemp) repro_b=$(mktemp) trace_a=$(mktemp) trace_b=$(mktemp)
trap 'rm -f "$repro_a" "$repro_b" "$trace_a" "$trace_b" "${bench_json:-}"' EXIT
cargo run --release -q -p pim-sim --bin repro -- all > "$repro_a"
cargo run --release -q -p pim-sim --bin repro -- all > "$repro_b"
diff "$repro_a" "$repro_b"

# Thread matrix: worker count must be unobservable in every output.
# The differential suite and the full reproduction sweep are re-run with
# the partitioned sweep pinned to 1, 2, and 4 workers (PIM_RUN_THREADS,
# see engine DESIGN.md §4.9); the sweep output must stay byte-identical
# to the unpinned runs above.
for threads in 1 2 4; do
    PIM_RUN_THREADS=$threads cargo test -q -p pim-sim --test differential
    threads_out=$(mktemp)
    trap 'rm -f "$repro_a" "$repro_b" "$trace_a" "$trace_b" "${threads_out:-}" "${bench_json:-}"' EXIT
    PIM_RUN_THREADS=$threads cargo run --release -q -p pim-sim --bin repro -- all > "$threads_out"
    diff "$repro_a" "$threads_out"
    rm -f "$threads_out"
done

# Bench harness smoke: two models across all six presets, one iteration;
# `repro bench` validates the emitted document against the
# hetero-pim-bench-v1 schema before writing it, so a zero exit means the
# schema check passed too.
bench_json=$(mktemp)
cargo run --release -q -p pim-sim --bin repro -- \
    bench --json "$bench_json" --models alex,vgg --iters 1 2> /dev/null
test -s "$bench_json"

# Fault smoke: the seeded degradation sweep must run clean, print a
# deterministic table, and every faulted schedule must satisfy the
# fault-aware legality checker (attempt chains, backoff, quarantine
# capacity) on top of the fault-free rules.
faults_a=$(mktemp) faults_b=$(mktemp)
trap 'rm -f "$repro_a" "$repro_b" "$trace_a" "$trace_b" "$faults_a" "$faults_b" "${bench_json:-}"' EXIT
cargo run --release -q -p pim-sim --bin repro -- \
    faults --seed 1 --rate 0.05 --models alex,lstm > "$faults_a"
cargo run --release -q -p pim-sim --bin repro -- \
    faults --seed 1 --rate 0.05 --models alex,lstm > "$faults_b"
diff "$faults_a" "$faults_b"
cargo run --release -q -p pim-verify -- \
    --model alexnet --model lstm --steps 2 --faults 1,0.05 --format json > /dev/null

# Order-invariance fuzz smoke (pass 5): 2 models x 8 seeded orders x
# 2 presets through the differential driver, with the sweep-level
# `parallel` feature on and off — the tie-break audit must not depend
# on the sweep driver. `repro fuzz` exits 1 on any divergence.
cargo run --release -q -p pim-sim --bin repro -- \
    fuzz --models alex,lstm --seeds 8 --presets hetero,progr > /dev/null
cargo run --release -q -p pim-sim --bin repro \
    --no-default-features --features trace -- \
    fuzz --models alex,lstm --seeds 8 --presets hetero,progr > /dev/null

# Static order-invariance gate: pass 5 over every model with 4 permuted
# orders (seed 1), on top of the graph/KIR/schedule/report passes.
cargo run --release -q -p pim-verify -- \
    --all-models --orders 4,1 --format json > /dev/null

# ISA ground-truth smoke (pass 6): every model's kernels lowered to the
# pim-isa micro-ISA, validated, interpreted, and tally-matched against
# the Fig. 4 extraction exactly; then the analytic-vs-interpreted delta
# table byte-diffed across runs, with the sweep-level `parallel` feature
# on and off — the interpreted backend must not depend on the driver.
isa_a=$(mktemp) isa_b=$(mktemp)
trap 'rm -f "$repro_a" "$repro_b" "$trace_a" "$trace_b" "$faults_a" "$faults_b" "$isa_a" "$isa_b" "${bench_json:-}"' EXIT
cargo run --release -q -p pim-verify -- \
    --all-models --isa --format json > /dev/null
cargo run --release -q -p pim-sim --bin repro -- isa > "$isa_a"
cargo run --release -q -p pim-sim --bin repro \
    --no-default-features --features trace -- isa > "$isa_b"
diff "$isa_a" "$isa_b"

# Serve smoke: boot the daemon on stdin, replay a seeded load trace
# twice, and byte-diff the full response streams — submission-order
# drain barriers make the stream a pure function of the input, so any
# worker-timing leak shows up as a diff. The stats lines must also show
# result sharing actually crossing tenants.
serve_trace=$(mktemp) serve_a=$(mktemp) serve_b=$(mktemp)
trap 'rm -f "$repro_a" "$repro_b" "$trace_a" "$trace_b" "$faults_a" "$faults_b" "$isa_a" "$isa_b" "$serve_trace" "$serve_a" "$serve_b" "${bench_json:-}"' EXIT
cargo run --release -q -p pim-sim --bin repro -- \
    serve --emit-trace 200 --seed 7 --tenants 3 > "$serve_trace"
cargo run --release -q -p pim-sim --bin repro -- \
    serve < "$serve_trace" > "$serve_a" 2> /dev/null
cargo run --release -q -p pim-sim --bin repro -- \
    serve < "$serve_trace" > "$serve_b" 2> /dev/null
diff "$serve_a" "$serve_b"
grep -q '"cross_tenant_hits":[1-9]' "$serve_a"

# Closed-loop load run: zero failed or rejected jobs, with sampled
# responses byte-verified against direct Engine::execute runs (exit 1
# on any divergence).
cargo run --release -q -p pim-sim --bin repro -- \
    serve --load 300 --seed 1 --sample 20 > /dev/null

# Chaos smoke: the seeded resilience harness (adversarial schedule,
# exactly-once + breaker-conformance + worker-matrix + kill-restart
# recovery + disconnect invariants, DESIGN.md §4.13) must pass and its
# summary must be byte-identical across runs and pinned worker counts.
chaos_a=$(mktemp) chaos_b=$(mktemp)
trap 'rm -f "$repro_a" "$repro_b" "$trace_a" "$trace_b" "$faults_a" "$faults_b" "$isa_a" "$isa_b" "$serve_trace" "$serve_a" "$serve_b" "$chaos_a" "$chaos_b" "${bench_json:-}"' EXIT
PIM_RUN_THREADS=1 cargo run --release -q -p pim-sim --bin repro -- \
    chaos --seed 1 --ops 500 > "$chaos_a"
PIM_RUN_THREADS=4 cargo run --release -q -p pim-sim --bin repro -- \
    chaos --seed 1 --ops 500 > "$chaos_b"
diff "$chaos_a" "$chaos_b"

# Observability: the Chrome-trace export must be byte-identical across
# runs and structurally valid (parses, ph/ts/pid/tid present, per-track
# timestamps monotone — `repro tracecheck` gates all of it).
cargo run --release -q -p pim-sim --bin repro -- --trace "$trace_a" 2> /dev/null
cargo run --release -q -p pim-sim --bin repro -- --trace "$trace_b" 2> /dev/null
diff "$trace_a" "$trace_b"
cargo run --release -q -p pim-sim --bin repro -- tracecheck "$trace_a" > /dev/null

echo "ci: all checks passed"
