#!/usr/bin/env bash
# Local CI gate: formatting, lints, docs, tests, static verification, and
# a determinism check on the paper-reproduction sweep.
# Run from the repository root before pushing.
set -euo pipefail

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
cargo test -q
cargo test --workspace -q

# Static checker: every model graph, binary set, schedule, and report must
# come back with zero error-severity diagnostics (exit code gates).
cargo run --release -q -p pim-verify -- --all-models --format json > /dev/null

# Determinism: the full reproduction sweep must be byte-identical across
# runs (the simulator owns all its randomness).
repro_a=$(mktemp) repro_b=$(mktemp)
trap 'rm -f "$repro_a" "$repro_b"' EXIT
cargo run --release -q -p pim-sim --bin repro -- all > "$repro_a"
cargo run --release -q -p pim-sim --bin repro -- all > "$repro_b"
diff "$repro_a" "$repro_b"

echo "ci: all checks passed"
