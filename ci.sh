#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the test suite.
# Run from the repository root before pushing.
set -euo pipefail

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q
cargo test --workspace -q
