//! # hetero-pim
//!
//! A full-system Rust reproduction of *Processing-in-Memory for
//! Energy-efficient Neural Network Training: A Heterogeneous Approach*
//! (MICRO 2018).
//!
//! This facade crate re-exports the workspace crates under one roof so that
//! examples and downstream users can depend on a single package:
//!
//! * [`common`] — identifiers, units, errors,
//! * [`mem`] — 3D die-stacked (HMC 2.0) and planar DRAM models,
//! * [`tensor`] — tensors, NN training ops, analytic cost characterization,
//! * [`graph`] — dataflow graphs with dependency tracking and eager execution,
//! * [`models`] — the seven evaluated training workloads,
//! * [`hw`] — CPU/GPU/fixed-function-PIM/programmable-PIM device models,
//! * [`opencl`] — the extended OpenCL programming model,
//! * [`runtime`] — the profiling-based scheduler and discrete-event engine,
//! * [`sim`] — system configurations and the paper-experiment harness,
//! * [`verify`] — multi-pass static checker for graphs, binaries,
//!   schedules, and reports.
//!
//! # Quickstart
//!
//! ```
//! use hetero_pim::models::{Model, ModelKind};
//! use hetero_pim::sim::{simulate, SystemConfig};
//!
//! # fn main() -> pim_common::Result<()> {
//! let model = Model::build_with_batch(ModelKind::AlexNet, 8)?;
//! let report = simulate(&model, &SystemConfig::hetero_pim(), 2)?;
//! assert!(report.makespan.seconds() > 0.0);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]

pub use pim_common as common;
pub use pim_graph as graph;
pub use pim_hw as hw;
pub use pim_mem as mem;
pub use pim_models as models;
pub use pim_opencl as opencl;
pub use pim_runtime as runtime;
pub use pim_sim as sim;
pub use pim_tensor as tensor;
pub use pim_verify as verify;
